//! Minimal, dependency-free stand-in for `criterion`.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset its benches use: `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, measurement_time,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Instead of criterion's statistical machinery it runs a fixed
//! number of timed samples and prints mean wall-clock time per
//! iteration — enough to compare hot paths from `cargo bench` output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            mean_ns: 0.0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let ns = b.mean_ns;
    if ns >= 1e9 {
        println!("{name:<50} time: {:.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<50} time: {:.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<50} time: {:.3} µs/iter", ns / 1e3);
    } else {
        println!("{name:<50} time: {ns:.0} ns/iter");
    }
}

/// Benchmark identifier: a function name plus a parameter label.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            full: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(None, &id.to_string(), &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub's cost model is just
    /// `sample_size` iterations, so the time budget is ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(Some(&self.name), &id.to_string(), &b);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), &b);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_applies_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("chembl", "30t").to_string(), "chembl/30t");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
