//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! stand-in. The workspace derives these traits for API completeness but
//! never serialises through them (persistence uses a hand-rolled binary
//! format), so the derives emit nothing; blanket impls in the `serde`
//! stub satisfy any trait bounds. `attributes(serde)` keeps field
//! annotations like `#[serde(skip)]` accepted.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
