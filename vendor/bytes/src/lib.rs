//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! just the surface it uses: `Bytes`, `BytesMut`, and the little-endian
//! halves of the `Buf`/`BufMut` traits. Semantics match the real crate
//! for this subset (including panics on short reads).

use std::ops::Deref;

/// An immutable byte buffer (here: a plain owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            inner: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side primitives (little-endian subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side primitives (little-endian subset). Panics on short reads,
/// like the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(0.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 0.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_moves_window() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 1);
    }
}
