//! Minimal, dependency-free stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset it uses: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::
//! seed_from_u64`, `rngs::StdRng`, and `seq::SliceRandom::{choose,
//! choose_multiple, shuffle}`. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic per seed, which is all the workspace
//! relies on (every call site seeds explicitly).

use std::ops::{Range, RangeInclusive};

const F64_UNIT: f64 = 1.0 / (1u64 << 53) as f64;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * F64_UNIT < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * F64_UNIT
    }
}

impl StandardSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`. Mirrors rand 0.8's structure —
/// blanket impls over [`SampleUniform`] so integer-literal ranges infer
/// their type from the call site.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open / inclusive ranges.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * F64_UNIT;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random-selection helpers on slices.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    /// Iterator over a random sample drawn without replacement.
    pub struct SliceChooseIter<'a, T> {
        items: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.items.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.items.size_hint()
        }
    }

    impl<'a, T> ExactSizeIterator for SliceChooseIter<'a, T> {}

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: only the first `amount` slots are needed.
            for i in 0..amount {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let picked: Vec<&T> = idx[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                items: picked.into_iter(),
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3..8);
            assert!((-3..8).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_without_replacement() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = pool.choose_multiple(&mut rng, 8).cloned().collect();
        assert_eq!(picked.len(), 8);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "sample must not repeat items");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
