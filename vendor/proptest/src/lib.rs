//! Minimal, dependency-free stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset its property tests use: the `proptest!` macro with
//! `#![proptest_config(..)]`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, integer/float range strategies,
//! 2/3-tuples of strategies, `prop::collection::vec`, and `prop_map`.
//!
//! Differences from the real crate: generation is deterministic (seeded
//! from the test name, so failures reproduce trivially), there is no
//! shrinking, and `prop_assert*` panic immediately like `assert*`.

pub mod test_runner {
    /// Subset of proptest's config: number of cases per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Accepted for API parity; the stub never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// SplitMix64, seeded deterministically from the property name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values for property tests.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_unit_f64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`]: `[min, max)`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` facade (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                let mut prop_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for prop_case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    let case_result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = case_result {
                        eprintln!(
                            "proptest: property {} failed at case {}/{} (deterministic seed from test name)",
                            stringify!($name), prop_case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3i64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.0f64..2.5), &mut rng);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("vec");
        let s = crate::collection::vec(0u32..5, 1..14);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..14).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_and_just_cover_all_arms() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let s = crate::collection::vec((0i64..100, any::<bool>()), 0..20);
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_iterates(
            x in 0usize..50,
            flag in any::<bool>(),
            xs in prop::collection::vec(0i64..10, 0..8),
        ) {
            prop_assert!(x < 50);
            prop_assert_ne!(u8::from(flag), 2);
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(xs.iter().filter(|&&v| v >= 10).count(), 0);
        }
    }
}
