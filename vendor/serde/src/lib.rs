//! Minimal, dependency-free stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` for API completeness
//! but never serialises through serde (the index uses a hand-rolled
//! binary format in `ver-index::persist`). The traits are blanket-
//! implemented so bounds always hold, and the derives (re-exported from
//! the no-op `serde_derive` stub) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
