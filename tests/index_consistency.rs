//! Property-based integration tests for the discovery index: estimation
//! quality, LSH recall, hypergraph symmetry, persistence.

use proptest::prelude::*;
use ver_common::ids::ColumnId;
use ver_common::value::Value;
use ver_index::minhash::{
    estimated_containment, estimated_jaccard, exact_containment, exact_jaccard, MinHasher,
};
use ver_index::persist::{hypergraph_from_bytes, hypergraph_to_bytes};
use ver_index::{build_index, IndexConfig};
use ver_store::catalog::TableCatalog;
use ver_store::column::Column;
use ver_store::table::TableBuilder;

fn int_column(start: i64, len: usize) -> Column {
    (start..start + len as i64).map(Value::Int).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn minhash_jaccard_estimate_tracks_truth(
        a_start in 0i64..100,
        a_len in 50usize..200,
        b_start in 0i64..100,
        b_len in 50usize..200,
        seed in 0u64..1000,
    ) {
        let a = int_column(a_start, a_len);
        let b = int_column(b_start, b_len);
        let h = MinHasher::new(256, seed);
        let sa = h.signature_of_column(&a);
        let sb = h.signature_of_column(&b);
        let est = estimated_jaccard(&sa, &sb);
        let truth = exact_jaccard(&a, &b);
        // k = 256 → std error ≈ sqrt(J(1-J)/256) ≤ 0.032; allow 5 sigma.
        prop_assert!((est - truth).abs() < 0.17, "est {est} truth {truth}");
    }

    #[test]
    fn containment_estimate_is_directional(
        len in 40usize..150,
        seed in 0u64..1000,
    ) {
        // a ⊂ b strictly.
        let a = int_column(0, len);
        let b = int_column(0, len * 3);
        let h = MinHasher::new(256, seed);
        let sa = h.signature_of_column(&a);
        let sb = h.signature_of_column(&b);
        let fwd = estimated_containment(&sa, &sb);
        let rev = estimated_containment(&sb, &sa);
        prop_assert!(fwd > rev, "C(A⊆B)={fwd} must exceed C(B⊆A)={rev}");
        prop_assert!((exact_containment(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hypergraph_edges_are_symmetric_and_thresholded(
        n_cols in 2usize..5,
        overlap in 10usize..40,
        seed in 0u64..50,
    ) {
        let mut cat = TableCatalog::new();
        for t in 0..n_cols {
            let mut b = TableBuilder::new(format!("t{t}"), &["v"]);
            // All tables share `overlap` values starting at 0, then diverge.
            for i in 0..(overlap + t * 5) {
                b.push_row(vec![Value::Int(i as i64)]).unwrap();
            }
            cat.add_table(b.build()).unwrap();
        }
        let idx = build_index(&cat, IndexConfig {
            threads: 1,
            verify_exact: true,
            seed,
            ..Default::default()
        }).unwrap();
        let g = idx.hypergraph();
        for c in 0..n_cols {
            for (n, score) in g.neighbors(ColumnId(c as u32), 0.0) {
                // symmetry
                let back = g.neighbors(n, 0.0);
                prop_assert!(back.iter().any(|&(m, s)| m == ColumnId(c as u32) && s == score));
                // threshold respected at build time
                prop_assert!(score as f64 >= idx.config().containment_threshold - 1e-9);
            }
        }
    }

    #[test]
    fn hypergraph_persistence_roundtrips(
        n_tables in 2usize..6,
        rows in 20usize..60,
        seed in 0u64..50,
    ) {
        let mut cat = TableCatalog::new();
        for t in 0..n_tables {
            let mut b = TableBuilder::new(format!("t{t}"), &["k", "v"]);
            for i in 0..rows {
                b.push_row(vec![
                    Value::Int(i as i64),
                    Value::Int((i * t) as i64),
                ]).unwrap();
            }
            cat.add_table(b.build()).unwrap();
        }
        let idx = build_index(&cat, IndexConfig {
            threads: 1,
            verify_exact: true,
            seed,
            ..Default::default()
        }).unwrap();
        let g = idx.hypergraph();
        let restored = hypergraph_from_bytes(&hypergraph_to_bytes(g)).unwrap();
        prop_assert_eq!(restored.column_count(), g.column_count());
        prop_assert_eq!(restored.joinable_pairs(), g.joinable_pairs());
        for c in 0..g.column_count() {
            let cid = ColumnId(c as u32);
            prop_assert_eq!(restored.neighbors(cid, 0.0), g.neighbors(cid, 0.0));
        }
    }

    #[test]
    fn keyword_search_finds_planted_values(
        needle_row in 0usize..30,
        rows in 31usize..80,
        seed in 0u64..50,
    ) {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("t", &["v"]);
        for i in 0..rows {
            b.push_row(vec![Value::text(format!("val_{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let idx = build_index(&cat, IndexConfig {
            threads: 1, seed, ..Default::default()
        }).unwrap();
        let hits = idx.search_keyword(
            &format!("val_{needle_row}"),
            ver_index::SearchTarget::Values,
            ver_index::Fuzziness::Exact,
        );
        prop_assert_eq!(hits, vec![ColumnId(0)]);
    }
}
