//! Property-based integration tests: invariants of the pipeline under
//! arbitrary (seeded) noise, query shapes and corpus sizes.

use proptest::prelude::*;
use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::workload::chembl_ground_truths;
use ver_distill::strategy::distill_counts;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;

fn small_ver(seed: u64) -> Ver {
    let cat = generate_chembl(&ChemblConfig {
        n_compounds: 60,
        n_tables: 12,
        seed,
    })
    .unwrap();
    Ver::build(cat, VerConfig::fast()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full pipeline; keep the budget sane
        .. ProptestConfig::default()
    })]

    #[test]
    fn pipeline_never_panics_and_funnel_is_monotone(
        corpus_seed in 0u64..3,
        gt_idx in 0usize..5,
        noise in prop_oneof![
            Just(NoiseLevel::Zero),
            Just(NoiseLevel::Medium),
            Just(NoiseLevel::High)
        ],
        query_seed in 0u64..1000,
        rows in 2usize..6,
    ) {
        let ver = small_ver(corpus_seed);
        let gts = chembl_ground_truths(ver.catalog()).unwrap();
        let query = generate_noisy_query(
            ver.catalog(), &gts[gt_idx], noise, rows, query_seed,
        ).unwrap();
        let result = ver.run(&ViewSpec::Qbe(query)).unwrap();

        // Funnel monotonicity (Fig. 1): views ≥ C1 ≥ C2 ≥ C3.
        let counts = distill_counts(&result.views, &result.distill);
        prop_assert!(counts.c1 <= counts.original);
        prop_assert!(counts.c2 <= counts.c1);
        prop_assert!(counts.c3_worst <= counts.c2);
        prop_assert!(counts.c3_best <= counts.c3_worst);

        // Ranking covers exactly the survivors.
        prop_assert_eq!(result.ranked.len(), result.distill.survivors_c2.len());

        // Views are deduplicated row sets.
        for v in &result.views {
            prop_assert_eq!(v.hash_set().len(), v.row_count());
        }

        // Search stats consistency.
        prop_assert!(result.search_stats.join_graphs >= result.search_stats.joinable_groups
            || result.search_stats.joinable_groups == 0);
    }

    #[test]
    fn query_generation_respects_noise_fractions(
        gt_idx in 0usize..5,
        query_seed in 0u64..500,
    ) {
        let ver = small_ver(1);
        let gts = chembl_ground_truths(ver.catalog()).unwrap();
        for level in NoiseLevel::all() {
            let q = generate_noisy_query(
                ver.catalog(), &gts[gt_idx], level, 3, query_seed,
            ).unwrap();
            prop_assert_eq!(q.arity(), 2);
            prop_assert_eq!(q.rows(), 3);
        }
    }

    #[test]
    fn distillation_is_idempotent_on_survivors(
        corpus_seed in 0u64..3,
        query_seed in 0u64..100,
    ) {
        let ver = small_ver(corpus_seed);
        let gts = chembl_ground_truths(ver.catalog()).unwrap();
        let query = generate_noisy_query(
            ver.catalog(), &gts[0], NoiseLevel::Zero, 3, query_seed,
        ).unwrap();
        let result = ver.run(&ViewSpec::Qbe(query)).unwrap();

        // Re-distilling only the survivors changes nothing: they are
        // pairwise non-compatible and non-contained.
        let survivors: Vec<ver_engine::view::View> = result
            .views
            .iter()
            .filter(|v| result.distill.survivors_c2.contains(&v.id))
            .cloned()
            .collect();
        let again = ver_distill::distill(&survivors, &ver_distill::DistillConfig::default());
        prop_assert_eq!(again.survivors_c2.len(), survivors.len());
        prop_assert!(again.compatible_groups.is_empty());
    }
}
