//! Determinism contract of the parallel runtime, offline AND online.
//!
//! Offline: the discovery index must be bit-identical for every thread
//! count — signatures, hypergraph edge set + scores, keyword postings,
//! profiles (with stored hash vectors). Online: `Ver::run` must produce
//! the identical `QueryResult` — same views (ids, rows, provenance), same
//! search statistics, same distillation labels and survivors, same final
//! ranking — whether search scoring/materialization and the 4C pass run
//! on 1, 2, or auto worker threads, and whether the top-k candidates
//! materialise over the shared sub-join DAG (default) or independently
//! per candidate (invariant 9). Runs over a generated WDC-style corpus so
//! the skewed column sizes actually exercise work stealing.

use ver_core::{QueryResult, Ver, VerConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::wdc_ground_truths;
use ver_index::{build_index, DiscoveryIndex, IndexConfig};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;
use ver_store::catalog::TableCatalog;

fn corpus() -> TableCatalog {
    generate_wdc(&WdcConfig {
        n_tables: 60,
        ..Default::default()
    })
    .expect("wdc generation")
}

fn build(cat: &TableCatalog, threads: usize, verify_exact: bool) -> DiscoveryIndex {
    build_index(
        cat,
        IndexConfig {
            threads,
            verify_exact,
            ..Default::default()
        },
    )
    .expect("index build")
}

#[test]
fn one_thread_and_eight_threads_build_identical_indexes() {
    let cat = corpus();
    for verify_exact in [false, true] {
        let seq = build(&cat, 1, verify_exact);
        let par = build(&cat, 8, verify_exact);

        // Signatures: bit-identical per column.
        assert_eq!(
            seq.profiles().len(),
            par.profiles().len(),
            "profile count (verify_exact={verify_exact})"
        );
        for (cid, _) in cat.all_columns() {
            assert_eq!(
                seq.signature(cid),
                par.signature(cid),
                "signature of {cid} (verify_exact={verify_exact})"
            );
            assert_eq!(seq.profile(cid).hashes, par.profile(cid).hashes);
        }

        // Hypergraph: same edge set with the same scores, in the same order.
        let seq_edges: Vec<_> = seq.hypergraph().edges().collect();
        let par_edges: Vec<_> = par.hypergraph().edges().collect();
        assert_eq!(
            seq_edges, par_edges,
            "hypergraph edges (verify_exact={verify_exact})"
        );

        // Keyword postings: identical maps, including posting-list order.
        assert_eq!(
            seq.keyword_index(),
            par.keyword_index(),
            "keyword index (verify_exact={verify_exact})"
        );

        // And the one-shot blanket check used by unit tests.
        assert!(seq.same_contents(&par));
    }
}

#[test]
fn auto_threads_matches_sequential() {
    let cat = corpus();
    let seq = build(&cat, 1, false);
    let auto = build(&cat, 0, false);
    assert!(
        seq.same_contents(&auto),
        "threads: 0 (auto) must reproduce the sequential index"
    );
}

/// Assert two pipeline runs are bit-identical in everything the user (or a
/// downstream stage) can observe.
fn assert_same_result(a: &QueryResult, b: &QueryResult, label: &str) {
    assert_eq!(a.search_stats, b.search_stats, "{label}: search stats");
    assert_eq!(a.views.len(), b.views.len(), "{label}: view count");
    for (va, vb) in a.views.iter().zip(&b.views) {
        assert!(
            va.same_contents(vb),
            "{label}: view {} differs (id/schema/provenance/rows)",
            va.id
        );
    }
    assert_eq!(
        a.distill.survivors_c1, b.distill.survivors_c1,
        "{label}: C1 survivors"
    );
    assert_eq!(
        a.distill.survivors_c2, b.distill.survivors_c2,
        "{label}: C2 survivors"
    );
    assert_eq!(
        a.distill.compatible_groups, b.distill.compatible_groups,
        "{label}: compatible groups"
    );
    assert_eq!(
        a.distill.contradictions, b.distill.contradictions,
        "{label}: contradictions"
    );
    assert_eq!(
        a.distill.complementary_pairs, b.distill.complementary_pairs,
        "{label}: complementary pairs"
    );
    assert_eq!(a.ranked, b.ranked, "{label}: final ranking");
}

#[test]
fn online_path_is_identical_across_thread_counts() {
    let cat = corpus();
    let gts = wdc_ground_truths(&cat).expect("wdc ground truths");

    // One Ver per thread count; the offline builds are already proven
    // identical above, so any divergence below is the online path's.
    let build = |threads: usize| {
        Ver::build(cat.clone(), VerConfig::default().with_threads(threads)).expect("build")
    };
    let seq = build(1);
    let two = build(2);
    let auto = build(0);

    let mut compared = 0;
    for (qi, gt) in gts.iter().enumerate() {
        let Ok(query) = generate_noisy_query(&cat, gt, NoiseLevel::Zero, 3, 7 + qi as u64) else {
            continue;
        };
        let spec = ViewSpec::Qbe(query);
        let r1 = seq.run(&spec).expect("run threads=1");
        let r2 = two.run(&spec).expect("run threads=2");
        let ra = auto.run(&spec).expect("run threads=auto");
        assert_same_result(&r2, &r1, &format!("{} threads=2 vs 1", gt.name));
        assert_same_result(&ra, &r1, &format!("{} threads=auto vs 1", gt.name));
        if !r1.views.is_empty() {
            compared += 1;
        }
    }
    assert!(
        compared >= 2,
        "determinism check needs non-trivial queries, got {compared}"
    );
}

#[test]
fn sharded_scatter_is_identical_across_shard_and_thread_counts() {
    // Invariant 11: scattering a query over N logical shards and merging
    // through the content-based rank order reproduces the single-engine
    // result bit-for-bit — for every shard count, at every thread count,
    // and through the shard-index partition/merge roundtrip.
    let cat = corpus();
    let gts = wdc_ground_truths(&cat).expect("wdc ground truths");
    let build = |threads: usize| {
        Ver::build(cat.clone(), VerConfig::default().with_threads(threads)).expect("build")
    };
    let seq = build(1);
    let auto = build(0);

    // The index partition itself roundtrips on this corpus too.
    for count in [2usize, 4] {
        let shards = ver_index::partition_index(seq.index(), count);
        let merged = ver_index::merge_shards(&shards).expect("merge");
        assert!(
            merged.same_contents(seq.index()),
            "index partition/merge diverged at {count} shards"
        );
    }

    let budget = ver_common::budget::QueryBudget::none();
    let mut compared = 0;
    for (qi, gt) in gts.iter().enumerate().take(4) {
        let Ok(query) = generate_noisy_query(&cat, gt, NoiseLevel::Zero, 3, 7 + qi as u64) else {
            continue;
        };
        let spec = ViewSpec::Qbe(query);
        let single = seq.run(&spec).expect("single-engine run");
        for count in [1usize, 2, 4] {
            let sharded = seq
                .run_sharded(&spec, None, &budget, count)
                .expect("sharded run");
            assert!(!sharded.partial, "{}: shards={count} partial", gt.name);
            assert_same_result(
                &sharded,
                &single,
                &format!("{} shards={count} vs single", gt.name),
            );
            let sharded_auto = auto
                .run_sharded(&spec, None, &budget, count)
                .expect("sharded run, auto threads");
            assert_same_result(
                &sharded_auto,
                &single,
                &format!("{} shards={count} threads=auto vs single", gt.name),
            );
        }
        if !single.views.is_empty() {
            compared += 1;
        }
    }
    assert!(
        compared >= 2,
        "shard determinism check needs non-trivial queries, got {compared}"
    );
}

#[test]
fn shard_leg_outputs_survive_the_wire_codec_bit_identically() {
    // Invariant 13, codec half: run each scatter leg in-process, push its
    // raw `ShardSearchOutput` through the full VERNET response codec
    // (encode → frame bytes → decode → rebuild), and merge the decoded
    // copies. The result must be bit-identical to the single-engine run —
    // the wire is allowed to drop per-process diagnostics (timers, DAG
    // counters), never anything that feeds the merge.
    use ver_serve::net::{Response, WireShardOutput};

    let cat = corpus();
    let gts = wdc_ground_truths(&cat).expect("wdc ground truths");
    let ver = Ver::build(cat.clone(), VerConfig::default()).expect("build");
    let budget = ver_common::budget::QueryBudget::none();

    let mut compared = 0;
    for (qi, gt) in gts.iter().enumerate().take(4) {
        let Ok(query) = generate_noisy_query(&cat, gt, NoiseLevel::Zero, 3, 7 + qi as u64) else {
            continue;
        };
        let spec = ViewSpec::Qbe(query);
        let single = ver.run(&spec).expect("single-engine run");
        for count in [1usize, 2, 4] {
            let outputs: Vec<_> = (0..count)
                .map(|shard| {
                    let out = ver
                        .run_shard_leg(&spec, None, &budget, shard, count)
                        .expect("leg run");
                    assert!(!out.partial, "{}: leg {shard}/{count} partial", gt.name);
                    let bytes = Response::ShardOutput(WireShardOutput::from_output(&out)).encode();
                    match Response::decode(&bytes).expect("decode leg output") {
                        Response::ShardOutput(wire) => {
                            wire.into_output().expect("rebuild leg output")
                        }
                        other => panic!("expected ShardOutput, got {other:?}"),
                    }
                })
                .collect();
            let merged = ver
                .gather_shard_outputs(&spec, &budget, outputs, true)
                .expect("gather");
            assert_same_result(
                &merged,
                &single,
                &format!("{} wire-roundtripped shards={count} vs single", gt.name),
            );
        }
        if !single.views.is_empty() {
            compared += 1;
        }
    }
    assert!(
        compared >= 2,
        "wire-codec determinism check needs non-trivial queries, got {compared}"
    );
}

#[test]
fn dag_materialization_is_identical_to_independent_execution() {
    // Invariant 9: the shared sub-join DAG executor (the default) and the
    // independent per-candidate executor produce bit-identical results —
    // for every thread count, over a corpus large enough that candidates
    // actually share join prefixes.
    let cat = corpus();
    let gts = wdc_ground_truths(&cat).expect("wdc ground truths");

    let build = |threads: usize, dag: bool| {
        let mut config = VerConfig::default().with_threads(threads);
        config.search.dag_materialize = dag;
        Ver::build(cat.clone(), config).expect("build")
    };
    let dag_seq = build(1, true);
    let ind_seq = build(1, false);
    let dag_auto = build(0, true);

    let mut compared = 0;
    for (qi, gt) in gts.iter().enumerate().take(4) {
        let Ok(query) = generate_noisy_query(&cat, gt, NoiseLevel::Zero, 3, 7 + qi as u64) else {
            continue;
        };
        let spec = ViewSpec::Qbe(query);
        let rd = dag_seq.run(&spec).expect("run dag threads=1");
        let ri = ind_seq.run(&spec).expect("run independent threads=1");
        let ra = dag_auto.run(&spec).expect("run dag threads=auto");
        assert_same_result(&rd, &ri, &format!("{} dag vs independent", gt.name));
        assert_same_result(&ra, &ri, &format!("{} dag-auto vs independent", gt.name));
        if !ri.views.is_empty() {
            compared += 1;
        }
    }
    assert!(
        compared >= 2,
        "equivalence check needs non-trivial queries, got {compared}"
    );
}

#[test]
fn thread_count_does_not_change_search_results() {
    let cat = corpus();
    let seq = build(&cat, 1, false);
    let par = build(&cat, 8, false);
    // Spot-check the online API on top of both indexes.
    for (cid, _) in cat.all_columns().take(40) {
        assert_eq!(seq.neighbors(cid, 0.8), par.neighbors(cid, 0.8));
    }
    let tables: Vec<_> = cat.tables().iter().take(4).map(|t| t.id).collect();
    let a = seq.generate_join_graphs(&tables, 2);
    let b = par.generate_join_graphs(&tables, 2);
    assert_eq!(a.len(), b.len());
    for (ga, gb) in a.iter().zip(&b) {
        assert_eq!(ga.hops(), gb.hops());
    }
}
