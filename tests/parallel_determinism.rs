//! Determinism contract of the parallel offline build: the discovery index
//! must be bit-identical for every thread count — signatures, hypergraph
//! edge set + scores, keyword postings, profiles (with stored hash
//! vectors). Runs over a generated WDC-style corpus so the skewed column
//! sizes actually exercise work stealing.

use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_index::{build_index, DiscoveryIndex, IndexConfig};
use ver_store::catalog::TableCatalog;

fn corpus() -> TableCatalog {
    generate_wdc(&WdcConfig {
        n_tables: 60,
        ..Default::default()
    })
    .expect("wdc generation")
}

fn build(cat: &TableCatalog, threads: usize, verify_exact: bool) -> DiscoveryIndex {
    build_index(
        cat,
        IndexConfig {
            threads,
            verify_exact,
            ..Default::default()
        },
    )
    .expect("index build")
}

#[test]
fn one_thread_and_eight_threads_build_identical_indexes() {
    let cat = corpus();
    for verify_exact in [false, true] {
        let seq = build(&cat, 1, verify_exact);
        let par = build(&cat, 8, verify_exact);

        // Signatures: bit-identical per column.
        assert_eq!(
            seq.profiles().len(),
            par.profiles().len(),
            "profile count (verify_exact={verify_exact})"
        );
        for (cid, _) in cat.all_columns() {
            assert_eq!(
                seq.signature(cid),
                par.signature(cid),
                "signature of {cid} (verify_exact={verify_exact})"
            );
            assert_eq!(seq.profile(cid).hashes, par.profile(cid).hashes);
        }

        // Hypergraph: same edge set with the same scores, in the same order.
        let seq_edges: Vec<_> = seq.hypergraph().edges().collect();
        let par_edges: Vec<_> = par.hypergraph().edges().collect();
        assert_eq!(
            seq_edges, par_edges,
            "hypergraph edges (verify_exact={verify_exact})"
        );

        // Keyword postings: identical maps, including posting-list order.
        assert_eq!(
            seq.keyword_index(),
            par.keyword_index(),
            "keyword index (verify_exact={verify_exact})"
        );

        // And the one-shot blanket check used by unit tests.
        assert!(seq.same_contents(&par));
    }
}

#[test]
fn auto_threads_matches_sequential() {
    let cat = corpus();
    let seq = build(&cat, 1, false);
    let auto = build(&cat, 0, false);
    assert!(
        seq.same_contents(&auto),
        "threads: 0 (auto) must reproduce the sequential index"
    );
}

#[test]
fn thread_count_does_not_change_search_results() {
    let cat = corpus();
    let seq = build(&cat, 1, false);
    let par = build(&cat, 8, false);
    // Spot-check the online API on top of both indexes.
    for (cid, _) in cat.all_columns().take(40) {
        assert_eq!(seq.neighbors(cid, 0.8), par.neighbors(cid, 0.8));
    }
    let tables: Vec<_> = cat.tables().iter().take(4).map(|t| t.id).collect();
    let a = seq.generate_join_graphs(&tables, 2);
    let b = par.generate_join_graphs(&tables, 2);
    assert_eq!(a.len(), b.len());
    for (ga, gb) in a.iter().zip(&b) {
        assert_eq!(ga.hops(), gb.hops());
    }
}
