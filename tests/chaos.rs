//! Chaos suite: drives the serving stack through the `ver_common::fault`
//! injection harness and checks the failure model end to end.
//!
//! The contract under test (see ARCHITECTURE.md, "Failure model & graceful
//! degradation"):
//!
//! * a worker panic is isolated to its item — the query degrades to a
//!   `partial: true` result or a typed error, the engine survives, and the
//!   very next query answers completely;
//! * injected I/O errors surface as typed `VerError::Io`, untranslated;
//! * persistence faults never leave temp files behind and never let a
//!   corrupt artifact load (`VerError::Serde` instead);
//! * a slow stage under a deadline budget degrades rather than hangs;
//! * with **no** faults armed, output through the compiled-in harness is
//!   bit-identical to the golden snapshot (determinism invariant 10).
//!
//! Fault state is process-global, so every test here serialises on one
//! mutex and resets the registry on entry and exit.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use ver_bench::golden::{
    golden_catalog, golden_queries, render_query, snapshot_with, SNAPSHOT_PATH,
};
use ver_common::budget::QueryBudget;
use ver_common::error::VerError;
use ver_common::fault::{self, points, FaultKind};
use ver_common::sync::lock_unpoisoned;
use ver_index::persist::{load_index, save_index};
use ver_index::{build_index, DiscoveryIndex, IndexConfig};
use ver_qbe::ViewSpec;
use ver_serve::{ServeConfig, ServeEngine};
use ver_store::catalog::TableCatalog;

/// Fault state is global to the test binary; chaos scenarios must not
/// interleave. Poisoning is irrelevant — a panicking scenario still resets.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    lock_unpoisoned(&LOCK)
}

fn catalog() -> Arc<TableCatalog> {
    static CAT: OnceLock<Arc<TableCatalog>> = OnceLock::new();
    Arc::clone(CAT.get_or_init(|| Arc::new(golden_catalog())))
}

fn index() -> Arc<DiscoveryIndex> {
    static IDX: OnceLock<Arc<DiscoveryIndex>> = OnceLock::new();
    Arc::clone(IDX.get_or_init(|| {
        Arc::new(build_index(&catalog(), IndexConfig::default()).expect("index build"))
    }))
}

/// Fresh engine over the shared index: chaos scenarios must not share
/// caches (a result-cache hit would bypass the very fault under test).
fn engine() -> ServeEngine {
    ServeEngine::warm_start(catalog(), index(), ServeConfig::default()).expect("warm start")
}

fn workload() -> Vec<(String, ViewSpec)> {
    golden_queries(&catalog())
}

/// Canonical rendering of one query result, for byte-level comparisons.
fn render(name: &str, result: &ver_core::QueryResult) -> String {
    let mut out = String::new();
    render_query(&mut out, name, result);
    out
}

#[test]
fn scoring_panic_degrades_to_partial_and_engine_recovers() {
    let _g = guard();
    fault::reset();
    let engine = engine();
    let (name, spec) = &workload()[0];

    // Baseline on a clean engine (also proves the spec answers at all).
    let clean = engine.query(spec).expect("clean query");
    assert!(!clean.partial);
    let expected = render(name, &clean);

    // A second engine so the result LRU cannot mask the fault.
    let engine = self::engine();
    fault::arm_times(points::SEARCH_SCORE, FaultKind::Panic, 1);
    let degraded = engine
        .query(spec)
        .expect("one worker panic must not fail the query");
    assert!(
        degraded.partial,
        "a panicked candidate must flag the result partial"
    );
    assert_eq!(engine.stats().partial_results, 1);
    fault::reset();

    // Partial results are never cached: the retry recomputes, completely.
    let retry = engine.query(spec).expect("retry");
    assert!(!retry.partial, "fault cleared, retry must be complete");
    assert_eq!(
        render(name, &retry),
        expected,
        "post-recovery output must match the clean run byte-for-byte"
    );
    assert_eq!(
        engine.stats().result_cache.hits,
        0,
        "partial was not cached"
    );
}

#[test]
fn dag_and_distill_panics_degrade_across_the_whole_workload() {
    let _g = guard();
    fault::reset();
    let engine = engine();
    let queries = workload();

    // Every DAG join step and every distill unit panics. Queries with
    // join candidates lose those views (partial); single-table answers
    // still lose distillation (partial via the undistilled fallback).
    fault::arm(points::DAG_STEP, FaultKind::Panic);
    fault::arm(points::DISTILL_VIEW, FaultKind::Panic);
    let mut partials = 0usize;
    for (name, spec) in &queries {
        let result = engine
            .query(spec)
            .unwrap_or_else(|e| panic!("{name}: panics must degrade, got {e:?}"));
        if result.partial {
            partials += 1;
        }
    }
    assert!(
        partials > 0,
        "workload under blanket panics produced no partial results"
    );
    fault::reset();

    // Engine survives: the same workload now reproduces the golden
    // snapshot exactly (nothing partial was cached along the way).
    let expected = std::fs::read_to_string(SNAPSHOT_PATH).expect("golden snapshot");
    let rendered = snapshot_with(&queries, |spec| engine.query(spec));
    assert_eq!(
        rendered, expected,
        "post-chaos workload diverged from the golden snapshot"
    );
}

#[test]
fn injected_io_error_is_typed_and_transient() {
    let _g = guard();
    fault::reset();
    let engine = engine();
    let (_, spec) = &workload()[0];

    fault::arm_times(points::SERVE_QUERY, FaultKind::IoError, 1);
    match engine.query(spec) {
        Err(VerError::Io(m)) => assert!(m.contains(points::SERVE_QUERY), "{m}"),
        other => panic!("expected typed Io error, got {other:?}"),
    }
    // One-shot fault consumed; the engine is healthy again.
    let result = engine.query(spec).expect("engine must recover");
    assert!(!result.partial);

    // An I/O error inside scoring is NOT degradation material — it must
    // propagate, typed and untranslated (only deadline/panic degrade).
    fault::arm_times(points::SEARCH_SCORE, FaultKind::IoError, 1);
    let engine = self::engine();
    match engine.query(spec) {
        Err(VerError::Io(m)) => assert!(m.contains(points::SEARCH_SCORE), "{m}"),
        other => panic!("expected typed Io error from scoring, got {other:?}"),
    }
    fault::reset();
}

#[test]
fn persistence_faults_never_leave_debris_or_load_garbage() {
    let _g = guard();
    fault::reset();
    let dir = std::env::temp_dir().join(format!("ver_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("chaos_index.bin");
    let idx = index();

    // Injected save failure: no artifact, no temp-file debris.
    fault::arm_times(points::PERSIST_SAVE, FaultKind::IoError, 1);
    match save_index(&idx, &path) {
        Err(VerError::Io(m)) => assert!(m.contains(points::PERSIST_SAVE), "{m}"),
        other => panic!("expected injected save failure, got {other:?}"),
    }
    assert!(!path.exists(), "failed save must not create the artifact");
    let debris: Vec<_> = std::fs::read_dir(&dir)
        .expect("read temp dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(
        debris.is_empty(),
        "temp-file debris after failed save: {debris:?}"
    );

    // Torn write: the bytes are corrupted on their way to disk. The save
    // "succeeds" (the fault models silent media corruption, not an I/O
    // error) but the checksummed format refuses to load the result.
    fault::arm_times(points::PERSIST_BYTES, FaultKind::CorruptByte, 1);
    save_index(&idx, &path).expect("corrupting save still writes");
    match load_index(&path) {
        Err(VerError::Serde(_)) => {}
        other => panic!("corrupt artifact must fail with Serde, got {other:?}"),
    }

    // Injected load failure on a *good* artifact: typed, transient.
    save_index(&idx, &path).expect("clean save");
    fault::arm_times(points::PERSIST_LOAD, FaultKind::IoError, 1);
    match load_index(&path) {
        Err(VerError::Io(m)) => assert!(m.contains(points::PERSIST_LOAD), "{m}"),
        other => panic!("expected injected load failure, got {other:?}"),
    }
    let loaded = load_index(&path).expect("fault consumed, load must succeed");
    assert!(loaded.same_contents(&idx));

    std::fs::remove_dir_all(&dir).ok();
    fault::reset();
}

#[test]
fn slow_stage_under_deadline_degrades_instead_of_hanging() {
    let _g = guard();
    fault::reset();
    let engine = engine();
    let (_, spec) = &workload()[0];

    // Every candidate score stalls 25ms; the budget allows 5ms total.
    // The first stall burns the deadline, after which every stage
    // boundary trips `DeadlineExceeded` and is skipped — the query
    // returns (degraded), it does not hang for candidates x 25ms.
    fault::arm(points::SEARCH_SCORE, FaultKind::Slow(25));
    let budget = QueryBudget::none().with_timeout(Duration::from_millis(5));
    let result = engine
        .query_with_budget(spec, &budget)
        .expect("deadline exhaustion must degrade, not error");
    assert!(result.partial, "deadline-starved query must be partial");
    fault::reset();

    // Unbudgeted retry on the same engine: complete, and only now cached.
    let retry = engine.query(spec).expect("retry");
    assert!(!retry.partial);
    let stats = engine.stats();
    assert_eq!(stats.partial_results, 1);
    assert_eq!(stats.result_cache.hits, 0, "partial result was not cached");
}

#[test]
fn shard_panic_degrades_the_gather_to_partial_never_an_error() {
    let _g = guard();
    fault::reset();
    let (name, spec) = &workload()[0];

    // Baseline: the sharded engine answers this spec completely, and
    // bit-identically to the single-engine run (invariant 11).
    let single = engine().query(spec).expect("single-engine baseline");
    let sharded =
        ver_serve::ShardedEngine::warm_start(catalog(), index(), ServeConfig::default(), 2)
            .expect("sharded warm start");
    let clean = sharded.query(spec).expect("clean sharded query");
    assert!(!clean.partial);
    let expected = render(name, &clean);
    assert_eq!(expected, render(name, &single), "sharded != single engine");

    // One whole scatter leg panics (the fault point sits before the
    // per-candidate isolation). The gather drops that shard and returns
    // the healthy shards' views, flagged partial — never an error.
    let sharded =
        ver_serve::ShardedEngine::warm_start(catalog(), index(), ServeConfig::default(), 2)
            .expect("sharded warm start");
    fault::arm_times(points::SEARCH_SHARD, FaultKind::Panic, 1);
    let degraded = sharded
        .query(spec)
        .expect("a panicked shard must not fail the query");
    assert!(
        degraded.partial,
        "dropped shard must flag the merge partial"
    );
    assert!(
        degraded.views.len() <= clean.views.len(),
        "a dropped shard cannot add views"
    );
    assert_eq!(sharded.stats().partial_results, 1);
    let failed_legs: u64 = sharded.shard_stats().iter().map(|s| s.failed).sum();
    assert_eq!(failed_legs, 1, "exactly one leg was dropped");
    fault::reset();

    // Partial results are never cached: the retry recomputes completely
    // and matches the clean run byte-for-byte.
    let retry = sharded.query(spec).expect("retry");
    assert!(!retry.partial, "fault cleared, retry must be complete");
    assert_eq!(render(name, &retry), expected);
    assert_eq!(sharded.stats().result_cache.hits, 0, "partial not cached");
}

#[test]
fn shard_deadline_trips_degrade_the_gather_to_partial() {
    let _g = guard();
    fault::reset();
    let (_, spec) = &workload()[0];
    let sharded =
        ver_serve::ShardedEngine::warm_start(catalog(), index(), ServeConfig::default(), 2)
            .expect("sharded warm start");

    // Every candidate score stalls 25ms against a 5ms budget. Both legs
    // race the same absolute deadline, trip it, and degrade inside their
    // shards; the merge is partial, the query never hangs or errors.
    fault::arm(points::SEARCH_SCORE, FaultKind::Slow(25));
    let budget = QueryBudget::none().with_timeout(Duration::from_millis(5));
    let result = sharded
        .query_with_budget(spec, &budget)
        .expect("deadline exhaustion must degrade, not error");
    assert!(result.partial, "deadline-starved scatter must be partial");
    fault::reset();

    // Unbudgeted retry: complete, and only now cached.
    let retry = sharded.query(spec).expect("retry");
    assert!(!retry.partial);
    let stats = sharded.stats();
    assert_eq!(stats.partial_results, 1);
    assert_eq!(stats.result_cache.hits, 0, "partial result was not cached");
}

// ---------------------------------------------------------------------------
// Socket-level chaos: the `verd` network front end. The blast radius of
// any single connection's failure — peer death mid-frame, a slow-loris
// reader, an injected fault at `net.accept` / `net.read` / `net.write`,
// a panicking handler — is that connection alone: the accept loop and
// every other client keep going, and `NetStats` counts the casualty.
// ---------------------------------------------------------------------------

use std::io::Write as _;
use ver_serve::net::{frame, Backend, Client, NetConfig, NetStats, Request, Server, ServerHandle};

/// Spawn a server over a fresh engine on an ephemeral port.
fn spawn_net(mut config: NetConfig) -> ServerHandle {
    config.addr = "127.0.0.1:0".parse().expect("addr");
    Server::bind(Backend::Single(Arc::new(engine())), config)
        .expect("bind")
        .spawn()
}

/// Poll live counters until `pred` holds — the server accounts for a
/// dying connection asynchronously, after its thread unwinds.
fn wait_for(handle: &ServerHandle, what: &str, pred: impl Fn(&NetStats) -> bool) -> NetStats {
    for _ in 0..500 {
        let stats = handle.net_stats();
        if pred(&stats) {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}: {:?}", handle.net_stats());
}

#[test]
fn peer_death_mid_frame_drops_only_that_connection() {
    let _g = guard();
    fault::reset();
    let handle = spawn_net(NetConfig::default());

    // A frame header promising 64 payload bytes, then death after 3:
    // the server sees EOF mid-frame, which is a protocol error (the
    // stream can never be frame-aligned again), not a crash.
    {
        let mut dying = std::net::TcpStream::connect(handle.addr()).expect("connect");
        let mut partial = Vec::new();
        partial.extend_from_slice(frame::MAGIC);
        partial.extend_from_slice(&64u32.to_le_bytes());
        partial.extend_from_slice(&[1, 2, 3]);
        dying.write_all(&partial).expect("partial frame");
        let _ = dying.flush();
    }

    let stats = wait_for(&handle, "mid-frame death accounted", |s| {
        s.protocol_errors >= 1
    });
    assert_eq!(stats.protocol_errors, 1, "{stats:?}");
    assert_eq!(stats.dropped_conns, 1, "{stats:?}");
    assert_eq!(stats.handler_panics, 0, "{stats:?}");

    // Blast radius check: the next client gets clean golden bytes.
    let (name, spec) = &workload()[0];
    let mut client = Client::connect(handle.addr()).expect("connect");
    let result = client.query(spec, 0, 0).expect("query after peer death");
    let mut rendered = String::new();
    result.render(&mut rendered, name);
    let expected = std::fs::read_to_string(SNAPSHOT_PATH).expect("golden snapshot");
    assert!(
        expected.contains(&rendered),
        "post-death result diverged from the golden snapshot:\n{rendered}"
    );
}

#[test]
fn slow_loris_reader_trips_the_write_timeout_not_the_server() {
    let _g = guard();
    fault::reset();
    let handle = spawn_net(NetConfig {
        write_timeout: Duration::from_millis(200),
        ..NetConfig::default()
    });
    let (_, spec) = &workload()[0];
    let request = Request::Query {
        spec: spec.clone(),
        page_size: 0,
        timeout_ms: 0,
    }
    .encode();

    let loris = std::net::TcpStream::connect(handle.addr()).expect("connect");
    loris
        .set_write_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    // One measured exchange to learn the response size, then queue
    // enough unread responses to overrun both socket buffers many times
    // over — and never read again. The server's blocked write must trip
    // its 200ms write timeout, not stall the process.
    frame::write_frame(&mut &loris, &request).expect("request");
    let resp_len = match frame::read_frame(&mut &loris).expect("response") {
        frame::ReadOutcome::Frame(p) => p.len() + frame::MAGIC.len() + 12,
        eof => panic!("expected a response frame, got {eof:?}"),
    };
    let needed = ((8 << 20) / resp_len + 64).min(50_000);
    for _ in 0..needed {
        if frame::write_frame(&mut &loris, &request).is_err() {
            break; // buffers already full of our own requests — enough
        }
    }

    let stats = wait_for(&handle, "write timeout tripped", |s| s.dropped_conns >= 1);
    assert_eq!(stats.dropped_conns, 1, "{stats:?}");
    assert_eq!(stats.handler_panics, 0, "{stats:?}");
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");

    // The accept loop never blocked behind the stalled writer.
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.health().expect("server must still serve");
    drop(loris);
}

#[test]
fn injected_handler_panic_costs_one_connection_and_is_counted() {
    let _g = guard();
    fault::reset();
    let handle = spawn_net(NetConfig::default());
    let (name, spec) = &workload()[0];

    // The query handler panics mid-request; the connection thread's
    // catch_unwind eats it. The doomed client sees its exchange die —
    // never a hang, never a torn frame.
    fault::arm_times(points::SERVE_QUERY, FaultKind::Panic, 1);
    let mut doomed = Client::connect(handle.addr()).expect("connect");
    assert!(
        doomed.query(spec, 0, 0).is_err(),
        "a panicked handler must kill the exchange"
    );
    drop(doomed);
    fault::reset();

    let stats = wait_for(&handle, "handler panic accounted", |s| {
        s.handler_panics >= 1
    });
    assert_eq!(stats.handler_panics, 1, "{stats:?}");
    assert_eq!(stats.dropped_conns, 1, "{stats:?}");

    // The next connection gets a complete, golden-identical answer, and
    // the casualty is visible in the wire-level stats.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let result = client.query(spec, 0, 0).expect("query after handler panic");
    let mut rendered = String::new();
    result.render(&mut rendered, name);
    let expected = std::fs::read_to_string(SNAPSHOT_PATH).expect("golden snapshot");
    assert!(
        expected.contains(&rendered),
        "post-panic result diverged from the golden snapshot:\n{rendered}"
    );
    let wire_stats = client.stats().expect("stats");
    assert_eq!(wire_stats.net.handler_panics, 1);
}

#[test]
fn injected_net_faults_each_cost_exactly_one_connection() {
    let _g = guard();
    fault::reset();
    let handle = spawn_net(NetConfig::default());

    // net.accept: the connection dies at birth, before any frame moves.
    fault::arm_times(points::NET_ACCEPT, FaultKind::IoError, 1);
    let mut c1 = Client::connect(handle.addr()).expect("connect");
    assert!(c1.health().is_err());
    let stats = wait_for(&handle, "accept fault accounted", |s| s.dropped_conns >= 1);
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    fault::reset();

    // net.read: dies before reading the next frame.
    fault::arm_times(points::NET_READ, FaultKind::IoError, 1);
    let mut c2 = Client::connect(handle.addr()).expect("connect");
    assert!(c2.health().is_err());
    let stats = wait_for(&handle, "read fault accounted", |s| s.dropped_conns >= 2);
    assert_eq!(stats.handler_panics, 0, "{stats:?}");
    fault::reset();

    // net.write: the request is read and handled; dies before the reply.
    fault::arm_times(points::NET_WRITE, FaultKind::IoError, 1);
    let mut c3 = Client::connect(handle.addr()).expect("connect");
    assert!(c3.health().is_err());
    let stats = wait_for(&handle, "write fault accounted", |s| s.dropped_conns >= 3);
    assert_eq!(stats.dropped_conns, 3, "{stats:?}");
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    fault::reset();

    // Three dead connections later, the server itself never flinched.
    let mut c4 = Client::connect(handle.addr()).expect("connect");
    c4.health().expect("server must still serve");
}

// ---------------------------------------------------------------------------
// Process-level chaos: remote shard legs as real `verd` child processes.
// The router's failure domain is a whole OS process — `kill -9` included.
// Invariant 13: with every leg healthy, a router fanning the scatter out
// to remote `verd` processes answers byte-identically to the in-process
// sharded engine and the single engine; with a leg dead, the merge
// degrades to `partial: true` (never an error, never cached) and returns
// to byte-identical answers the moment the leg is back.
// ---------------------------------------------------------------------------

use std::io::BufRead as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use ver_serve::net::RetryPolicy;
use ver_serve::RouterEngine;

/// The `verd` binary in the same target directory as this test
/// executable. Root-package integration tests don't get
/// `CARGO_BIN_EXE_verd` (the binary belongs to `ver-serve`), but a
/// workspace `cargo test` or `cargo build` puts it right next to us.
fn verd_path() -> PathBuf {
    let exe = std::env::current_exe().expect("test exe path");
    let target = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("target directory");
    let verd = target.join(format!("verd{}", std::env::consts::EXE_SUFFIX));
    assert!(
        verd.exists(),
        "verd binary not found at {} — build it first (`cargo build -p ver-serve --bin verd`; \
         a workspace `cargo test` builds it as a side effect)",
        verd.display()
    );
    verd
}

/// Everything the multi-process scenarios share: the golden corpus as a
/// CSV directory + persisted index on disk (what `verd` consumes), and
/// the same catalog/index reloaded in-process through the **same** code
/// path `verd` uses. CSV filenames sort differently than the in-memory
/// golden catalog's insertion order, so `TableId`s — and therefore
/// rendered bytes — only match between parties that loaded from this
/// directory; the reference snapshot comes from an in-process single
/// engine over the reloaded corpus, not from the golden snapshot file.
struct ProcFixture {
    data_dir: PathBuf,
    index_path: PathBuf,
    catalog: Arc<TableCatalog>,
    index: Arc<DiscoveryIndex>,
    queries: Vec<(String, ViewSpec)>,
    /// Full-workload snapshot from a single in-process engine.
    expected: String,
}

/// Mirror of `verd`'s `--data` loader: every `*.csv`, sorted by
/// filename, stem as table name.
fn load_csv_dir(dir: &Path) -> TableCatalog {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read data dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    let mut catalog = TableCatalog::new();
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("csv name")
            .to_string();
        let file = std::fs::File::open(&path).expect("open csv");
        let table =
            ver_store::csv::read_csv(&name, std::io::BufReader::new(file), true).expect("csv");
        catalog.add_table(table).expect("add table");
    }
    catalog
}

fn proc_fixture() -> &'static ProcFixture {
    static FIX: OnceLock<ProcFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("ver_chaos_proc_{}", std::process::id()));
        let data_dir = dir.join("data");
        std::fs::create_dir_all(&data_dir).expect("fixture dir");
        for table in catalog().tables() {
            let csv = ver_store::csv::to_csv_string(table);
            std::fs::write(data_dir.join(format!("{}.csv", table.name())), csv).expect("write csv");
        }
        let reloaded = Arc::new(load_csv_dir(&data_dir));
        let index = Arc::new(
            build_index(&reloaded, IndexConfig::default()).expect("index over reloaded corpus"),
        );
        let index_path = dir.join("index.bin");
        save_index(&index, &index_path).expect("persist index");

        let queries = golden_queries(&reloaded);
        let single = ServeEngine::warm_start(
            Arc::clone(&reloaded),
            Arc::clone(&index),
            ServeConfig::default(),
        )
        .expect("reference engine");
        let expected = snapshot_with(&queries, |spec| single.query(spec));
        ProcFixture {
            data_dir,
            index_path,
            catalog: reloaded,
            index,
            queries,
            expected,
        }
    })
}

/// One live `verd` shard-leg process. Killed on drop so a panicking
/// scenario never leaks children.
struct LegProcess {
    child: Child,
    addr: SocketAddr,
}

impl Drop for LegProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl LegProcess {
    /// SIGKILL — no drain, no goodbye frame, sockets reset mid-stream.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9 leg");
        self.child.wait().expect("reap leg");
    }
}

/// Spawn a `verd --shard-leg` over the fixture corpus. `addr` is an
/// explicit bind address or `127.0.0.1:0`; the actual address is parsed
/// from the `verd listening on …` banner. Returns `None` if the process
/// exited before printing it (e.g. the port is still in TIME_WAIT after
/// a kill — callers retry).
fn try_spawn_leg(addr: &str, envs: &[(&str, &str)]) -> Option<LegProcess> {
    let fix = proc_fixture();
    let mut cmd = Command::new(verd_path());
    cmd.arg("--data")
        .arg(&fix.data_dir)
        .arg("--index")
        .arg(&fix.index_path)
        .arg("--shard-leg")
        .arg("--addr")
        .arg(addr)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn verd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read verd banner");
    let Some(addr) = banner
        .trim()
        .strip_prefix("verd listening on ")
        .and_then(|a| a.parse().ok())
    else {
        let _ = child.kill();
        let _ = child.wait();
        return None;
    };
    Some(LegProcess { child, addr })
}

fn spawn_leg(addr: &str, envs: &[(&str, &str)]) -> LegProcess {
    for _ in 0..50 {
        if let Some(leg) = try_spawn_leg(addr, envs) {
            return leg;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("verd leg would not come up on {addr}");
}

/// A router engine (in this process) over the given live legs.
fn router_over(addrs: &[SocketAddr]) -> RouterEngine {
    let fix = proc_fixture();
    RouterEngine::warm_start(
        Arc::clone(&fix.catalog),
        Arc::clone(&fix.index),
        ServeConfig::default(),
        addrs,
        RetryPolicy::default(),
    )
    .expect("router warm start")
}

#[test]
fn router_over_live_verd_processes_matches_the_single_engine() {
    let _g = guard();
    fault::reset();
    let fix = proc_fixture();

    // Four real leg processes; shard counts 1, 2, 4 are routers over
    // prefixes of the same fleet (a leg serves any (shard, shard_count)
    // it is asked for — the slice is in the request, not the process).
    let legs: Vec<LegProcess> = (0..4).map(|_| spawn_leg("127.0.0.1:0", &[])).collect();
    let addrs: Vec<SocketAddr> = legs.iter().map(|l| l.addr).collect();

    // Cross-check the reference: the in-process sharded engine over the
    // same reloaded corpus agrees with the single engine (invariant 11).
    let sharded = ver_serve::ShardedEngine::warm_start(
        Arc::clone(&fix.catalog),
        Arc::clone(&fix.index),
        ServeConfig::default(),
        2,
    )
    .expect("sharded warm start");
    assert_eq!(
        snapshot_with(&fix.queries, |spec| sharded.query(spec)),
        fix.expected,
        "in-process sharded engine diverged from the single engine"
    );

    for n in [1usize, 2, 4] {
        let router = router_over(&addrs[..n]);
        let snapshot = snapshot_with(&fix.queries, |spec| router.query(spec));
        assert_eq!(
            snapshot, fix.expected,
            "router over {n} live verd processes diverged from the single engine"
        );
        for leg in router.leg_stats() {
            assert_eq!(leg.failovers, 0, "healthy fleet had a failover: {leg:?}");
            assert_eq!(leg.failures, 0, "{leg:?}");
        }
    }
}

#[test]
fn killing_a_leg_process_degrades_to_partial_and_recovery_is_byte_identical() {
    let _g = guard();
    fault::reset();
    let fix = proc_fixture();
    let (name, spec) = &fix.queries[0];

    // Leg 1 answers every ShardQuery 400ms late, so the kill below lands
    // mid-query: the router is parked in read_frame on a live exchange
    // when the process dies and the socket resets under it.
    let leg0 = spawn_leg("127.0.0.1:0", &[]);
    let mut leg1 = spawn_leg("127.0.0.1:0", &[("VER_FAULT", "serve.query=slow:400")]);
    let addrs = [leg0.addr, leg1.addr];
    let leg1_addr = leg1.addr;
    let router = router_over(&addrs);

    // Reference bytes for this query, from the in-process single engine.
    let reference = {
        let single = ServeEngine::warm_start(
            Arc::clone(&fix.catalog),
            Arc::clone(&fix.index),
            ServeConfig::default(),
        )
        .expect("reference engine");
        render(name, &single.query(spec).expect("reference query"))
    };

    // kill -9 the slow leg 100ms into the scatter.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        leg1.kill9();
        leg1
    });
    let degraded = router
        .query(spec)
        .expect("a leg killed mid-query must degrade the merge, not error it");
    let _leg1 = killer.join().expect("killer thread");
    assert!(degraded.partial, "killed leg must flag the merge partial");
    assert_eq!(router.stats().partial_results, 1);
    assert_eq!(router.leg_stats()[1].failovers, 1);

    // Restart the leg on the same address, fault-free. The partial was
    // never cached, so the same spec recomputes — and the answer is
    // byte-identical to the single engine again.
    let _leg1 = spawn_leg(&leg1_addr.to_string(), &[]);
    let recovered = router.query(spec).expect("query after leg restart");
    assert!(!recovered.partial, "leg is back, result must be complete");
    assert_eq!(
        render(name, &recovered),
        reference,
        "post-recovery routed result diverged from the single engine"
    );
    assert_eq!(
        router.stats().result_cache.hits,
        0,
        "the partial result must never have been cached"
    );
}

#[test]
fn a_transient_leg_connection_fault_is_retried_not_degraded() {
    let _g = guard();
    fault::reset();
    let fix = proc_fixture();
    let (name, spec) = &fix.queries[1];

    // Leg 0's server kills the first connection at `net.read` — the
    // router's first exchange dies mid-stream. One reconnect-and-retry
    // later the query completes; the casualty is a counter, not a
    // partial result.
    let leg0 = spawn_leg("127.0.0.1:0", &[("VER_FAULT", "net.read=io*1")]);
    let leg1 = spawn_leg("127.0.0.1:0", &[]);
    let router = router_over(&[leg0.addr, leg1.addr]);

    let reference = {
        let single = ServeEngine::warm_start(
            Arc::clone(&fix.catalog),
            Arc::clone(&fix.index),
            ServeConfig::default(),
        )
        .expect("reference engine");
        render(name, &single.query(spec).expect("reference query"))
    };

    let result = router
        .query(spec)
        .expect("a transient connection fault must be absorbed by the retry envelope");
    assert!(
        !result.partial,
        "one faulted read must not degrade the merge"
    );
    assert_eq!(render(name, &result), reference);
    let legs = router.leg_stats();
    assert!(
        legs[0].retries >= 1,
        "the faulted exchange was retried: {legs:?}"
    );
    assert_eq!(legs[0].failovers, 0, "{legs:?}");
    assert_eq!(legs[1].failures, 0, "{legs:?}");
}

#[test]
fn a_verd_router_process_serves_the_full_stack_end_to_end() {
    let _g = guard();
    fault::reset();
    let fix = proc_fixture();

    // The complete deployment: two leg processes, one router *process*
    // (`verd --route`), one client — three processes deep, every hop a
    // real socket. The bytes must still match the single engine.
    let leg0 = spawn_leg("127.0.0.1:0", &[]);
    let mut leg1 = spawn_leg("127.0.0.1:0", &[]);
    let route = format!("{},{}", leg0.addr, leg1.addr);

    let mut cmd = Command::new(verd_path());
    cmd.arg("--data")
        .arg(&fix.data_dir)
        .arg("--index")
        .arg(&fix.index_path)
        .arg("--route")
        .arg(&route)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn router verd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("router banner");
    let addr: SocketAddr = banner
        .trim()
        .strip_prefix("verd listening on ")
        .expect("router banner")
        .parse()
        .expect("router addr");
    let mut router = LegProcess { child, addr };

    let mut client = Client::connect(router.addr).expect("connect to router");
    let health = client.health().expect("health");
    assert_eq!(health.shards, 2, "router must report one shard per leg");

    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "# golden online-path snapshot (see golden_online.rs)");
    let _ = writeln!(out);
    for (name, spec) in &fix.queries {
        let result = client.query(spec, 0, 0).expect("routed wire query");
        assert!(!result.partial);
        result.render(&mut out, name);
    }
    assert_eq!(
        out, fix.expected,
        "three-process routed bytes diverged from the single engine"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats.router.len(), 2);
    for leg in &stats.router {
        assert!(leg.attempts > 0, "{leg:?}");
        assert_eq!(leg.failures, 0, "{leg:?}");
    }

    // Kill a leg out from under the router process: the next answer
    // through the wire degrades to partial, the router process survives.
    leg1.kill9();
    let (_, fresh_spec) = &fix.queries[2];
    // The earlier complete result for this spec is cached on the router —
    // a cache hit must *still* be complete. Ask, then verify the flag.
    let cached = client.query(fresh_spec, 0, 0).expect("cached routed query");
    assert!(
        !cached.partial,
        "cache hits stay complete after a leg death"
    );

    // An uncached spec must scatter, lose leg 1, and come back partial.
    let novel = ViewSpec::Keyword(vec!["state".into()]);
    let partial = client.query(&novel, 0, 0).expect("degraded routed query");
    assert!(
        partial.partial,
        "dead leg must flag the wire result partial"
    );
    let stats = client.stats().expect("stats");
    assert!(stats.router[1].failovers >= 1, "{:?}", stats.router);
    assert_eq!(stats.serve.partial_results, 1);

    // Clean shutdown of the router process over the wire.
    client.shutdown().expect("router shutdown ack");
    let status = router.child.wait().expect("router exit");
    assert!(status.success(), "router exited {status:?}");
}

#[test]
fn fault_free_run_through_the_harness_matches_the_golden_snapshot() {
    // Determinism invariant 10: with the harness compiled in but nothing
    // armed, serving output is bit-identical to the pre-harness golden
    // snapshot — a disarmed fault point costs one atomic load and must
    // never perturb results.
    let _g = guard();
    fault::reset();
    assert!(!fault::enabled());
    let engine = engine();
    let queries = workload();
    let expected = std::fs::read_to_string(SNAPSHOT_PATH).expect("golden snapshot");
    let rendered = snapshot_with(&queries, |spec| engine.query(spec));
    assert_eq!(
        rendered, expected,
        "compiled-in (disarmed) fault harness changed query output"
    );
}
