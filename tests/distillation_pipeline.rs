//! Integration: 4C distillation against views produced by the real search
//! stage over generated corpora — the Table IV / Fig. 2 mechanics.

use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_distill::strategy::{contradiction_steps, distill_counts, CaseChoice};
use ver_distill::Category;
use ver_qbe::{ExampleQuery, ViewSpec};

fn wdc_ver() -> Ver {
    let cat = generate_wdc(&WdcConfig {
        n_tables: 50,
        n_state_subsets: 6,
        n_population_sources: 3,
        ..Default::default()
    })
    .unwrap();
    Ver::build(cat, VerConfig::fast()).unwrap()
}

#[test]
fn population_camps_produce_contradictory_views() {
    let ver = wdc_ver();
    // Country + population examples → all population_camp* tables match.
    let spec = ViewSpec::Qbe(
        ExampleQuery::from_rows(&[vec!["Philippines", "2644000"], vec!["Vietnam", "3055000"]])
            .unwrap(),
    );
    let result = ver.run(&spec).unwrap();
    assert!(result.views.len() >= 4, "views: {}", result.views.len());
    let d = &result.distill;
    // Within-camp views are compatible (identical), across-camp contradictory.
    assert!(
        !d.compatible_groups.is_empty(),
        "same-camp sources must produce compatible views"
    );
    assert!(
        !d.contradictions.is_empty(),
        "cross-camp views must contradict"
    );
    // The contradiction signal covers many views at once (WDC Q3 insight).
    let best = d
        .contradictions
        .iter()
        .map(|c| c.view_count())
        .max()
        .unwrap();
    assert!(
        best >= 3,
        "discriminative contradiction expected, best covers {best}"
    );
}

#[test]
fn contradiction_pruning_is_steeper_in_best_case() {
    let ver = wdc_ver();
    let spec = ViewSpec::Qbe(
        ExampleQuery::from_rows(&[vec!["Philippines", "2644000"], vec!["Vietnam", "3055000"]])
            .unwrap(),
    );
    let result = ver.run(&spec).unwrap();
    let best = contradiction_steps(&result.distill, CaseChoice::Best, 10);
    let worst = contradiction_steps(&result.distill, CaseChoice::Worst, 10);
    assert_eq!(best[0], worst[0]);
    if best.len() > 1 && worst.len() > 1 {
        assert!(
            best[1] <= worst[1],
            "best-case pruning must be at least as steep ({best:?} vs {worst:?})"
        );
    }
}

#[test]
fn state_subsets_produce_complementary_views() {
    let ver = wdc_ver();
    // States present across subsets + subset ranks → (state, rank) views
    // from different coverage tables are complementary candidates.
    let spec =
        ViewSpec::Qbe(ExampleQuery::from_rows(&[vec!["Texas", "gazette_babacor0"]]).unwrap());
    let result = ver.run(&spec).unwrap();
    // Not all runs generate pairs; the property under test is that when
    // overlapping same-schema views exist, they are labelled.
    let d = &result.distill;
    let labelled = d.graph.count(Category::Complementary)
        + d.graph.count(Category::Contradictory)
        + d.graph.count(Category::Compatible)
        + d.graph.count(Category::Contained);
    assert!(labelled <= d.graph.nodes().len() * d.graph.nodes().len());
}

#[test]
fn chembl_cell_alias_views_are_compatible() {
    // The ChEMBL Q3 insight: joining assays↔cell_dictionary via cell_name
    // or via cell_description yields identical (compatible) views.
    let cat = generate_chembl(&ChemblConfig {
        n_compounds: 90,
        n_tables: 12,
        seed: 3,
    })
    .unwrap();
    let ver = Ver::build(cat, VerConfig::fast()).unwrap();
    // cell names match both assays.cell_name and cell_dictionary.cell_name;
    // assay types match assays.assay_type.
    let cell0 = ver
        .catalog()
        .table_by_name("cell_dictionary")
        .unwrap()
        .cell(0, 1)
        .unwrap()
        .to_string();
    let cell1 = ver
        .catalog()
        .table_by_name("cell_dictionary")
        .unwrap()
        .cell(1, 1)
        .unwrap()
        .to_string();
    let spec = ViewSpec::Qbe(
        ExampleQuery::from_rows(&[vec![cell0.as_str(), "B"], vec![cell1.as_str(), "F"]]).unwrap(),
    );
    let result = ver.run(&spec).unwrap();
    let d = &result.distill;
    assert!(
        !d.compatible_groups.is_empty() || d.survivors_c1.len() < result.views.len(),
        "alias join paths should produce compatible duplicates \
         ({} views, {} after C1)",
        result.views.len(),
        d.survivors_c1.len()
    );
}

#[test]
fn table_iv_counts_are_internally_consistent() {
    let ver = wdc_ver();
    let spec = ViewSpec::Qbe(
        ExampleQuery::from_rows(&[vec!["Philippines", "2644000"], vec!["Germany", "3466000"]])
            .unwrap(),
    );
    let result = ver.run(&spec).unwrap();
    let counts = distill_counts(&result.views, &result.distill);
    assert_eq!(counts.original, result.views.len());
    assert!(counts.c1 <= counts.original);
    assert!(counts.c2 <= counts.c1);
    assert!(counts.c3_worst <= counts.c2);
    assert!(counts.c3_best <= counts.c3_worst);
}
