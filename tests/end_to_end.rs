//! End-to-end integration: generated corpora → index → query → distilled,
//! ranked views — the full Algorithm 1 pipeline on ChEMBL- and WDC-like
//! data.

use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::{
    attach_noise_columns, chembl_ground_truths, find_ground_truth_view, materialize_ground_truth,
};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;

fn chembl_ver() -> Ver {
    let cat = generate_chembl(&ChemblConfig {
        n_compounds: 80,
        n_tables: 16,
        seed: 77,
    })
    .expect("generation succeeds");
    Ver::build(cat, VerConfig::fast()).expect("index builds")
}

#[test]
fn chembl_pipeline_finds_ground_truth_at_zero_noise() {
    let ver = chembl_ver();
    let gts = chembl_ground_truths(ver.catalog()).unwrap();
    for gt in &gts {
        let gt_view = materialize_ground_truth(ver.catalog(), ver.index(), gt, 2).unwrap();
        let query = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 11).unwrap();
        let result = ver.run(&ViewSpec::Qbe(query)).unwrap();
        assert!(
            find_ground_truth_view(&result.views, &gt_view).is_some(),
            "{}: ground truth not among {} candidate views",
            gt.name,
            result.views.len()
        );
    }
}

#[test]
fn chembl_pipeline_is_noise_robust_with_clustering() {
    let ver = chembl_ver();
    let gts = chembl_ground_truths(ver.catalog()).unwrap();
    // Q2 has a designated noise column (compound_synonyms).
    let gt = attach_noise_columns(ver.catalog(), ver.index(), gts[1].clone(), 0.75);
    assert!(gt.noise_columns.iter().any(Option::is_some));
    let gt_view = materialize_ground_truth(ver.catalog(), ver.index(), &gt, 2).unwrap();
    let mut hits = 0;
    let trials = 5;
    for seed in 0..trials {
        let query = generate_noisy_query(ver.catalog(), &gt, NoiseLevel::Medium, 3, seed).unwrap();
        let result = ver.run(&ViewSpec::Qbe(query)).unwrap();
        if find_ground_truth_view(&result.views, &gt_view).is_some() {
            hits += 1;
        }
    }
    assert!(
        hits >= trials - 1,
        "column selection should usually survive medium noise ({hits}/{trials})"
    );
}

#[test]
fn funnel_shrinks_monotonically() {
    // The reference architecture's funnel: candidate views ≥ C1 ≥ C2.
    let ver = chembl_ver();
    let gts = chembl_ground_truths(ver.catalog()).unwrap();
    let query = generate_noisy_query(ver.catalog(), &gts[3], NoiseLevel::Zero, 3, 5).unwrap();
    let result = ver.run(&ViewSpec::Qbe(query)).unwrap();
    let d = &result.distill;
    assert!(d.original_count() >= d.survivors_c1.len());
    assert!(d.survivors_c1.len() >= d.survivors_c2.len());
    assert_eq!(result.ranked.len(), d.survivors_c2.len());
}

#[test]
fn wdc_pipeline_produces_ambiguous_views_for_state_queries() {
    let cat = generate_wdc(&WdcConfig {
        n_tables: 60,
        ..Default::default()
    })
    .unwrap();
    let ver = Ver::build(cat, VerConfig::fast()).unwrap();
    // A state query matches many web tables → several candidate views.
    let spec = ViewSpec::Qbe(
        ver_qbe::ExampleQuery::from_rows(&[
            vec!["Indiana", "Georgia"],
            vec!["Virginia", "Illinois"],
        ])
        .unwrap(),
    );
    let result = ver.run(&spec).unwrap();
    assert!(
        result.search_stats.views >= 2,
        "ambiguous state query should yield multiple views, got {}",
        result.search_stats.views
    );
}

#[test]
fn timer_phases_cover_the_pipeline() {
    let ver = chembl_ver();
    let gts = chembl_ground_truths(ver.catalog()).unwrap();
    let query = generate_noisy_query(ver.catalog(), &gts[0], NoiseLevel::Zero, 3, 1).unwrap();
    let result = ver.run(&ViewSpec::Qbe(query)).unwrap();
    let phases: Vec<&str> = result.timer.phases().map(|(p, _)| p).collect();
    assert_eq!(phases, vec!["cs", "jgs", "materialize", "vd_io", "4c"]);
}
