//! Integration: COLUMN-SELECTION vs SELECT-ALL vs SELECT-BEST over real
//! corpora — the RQ3 mechanics behind Table V and Figs. 5-7.

use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::workload::{
    attach_noise_columns, chembl_ground_truths, find_ground_truth_view, materialize_ground_truth,
};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_search::{SearchConfig, SearchContext};
use ver_select::baselines::{select_all, select_best};
use ver_select::{column_selection, SelectionConfig};

fn setup() -> Ver {
    let cat = generate_chembl(&ChemblConfig {
        n_compounds: 80,
        n_tables: 16,
        seed: 21,
    })
    .unwrap();
    Ver::build(cat, VerConfig::fast()).unwrap()
}

#[test]
fn select_best_crumbles_under_high_noise() {
    let ver = setup();
    let gts = chembl_ground_truths(ver.catalog()).unwrap();
    let gt = attach_noise_columns(ver.catalog(), ver.index(), gts[1].clone(), 0.75);
    let gt_view = materialize_ground_truth(ver.catalog(), ver.index(), &gt, 2).unwrap();

    let mut cs_hits = 0;
    let mut sb_hits = 0;
    let mut sa_hits = 0;
    let trials = 6u64;
    for seed in 0..trials {
        let query = generate_noisy_query(ver.catalog(), &gt, NoiseLevel::High, 3, seed).unwrap();
        let search = SearchConfig::default();

        let cs = column_selection(ver.index(), &query, &SelectionConfig::default());
        let out = SearchContext::new(ver.catalog(), ver.index())
            .search(&cs, &search)
            .unwrap();
        cs_hits += usize::from(find_ground_truth_view(&out.views, &gt_view).is_some());

        let sb = select_best(ver.index(), &query);
        let out = SearchContext::new(ver.catalog(), ver.index())
            .search(&sb, &search)
            .unwrap();
        sb_hits += usize::from(find_ground_truth_view(&out.views, &gt_view).is_some());

        let sa = select_all(ver.index(), &query);
        let out = SearchContext::new(ver.catalog(), ver.index())
            .search(&sa, &search)
            .unwrap();
        sa_hits += usize::from(find_ground_truth_view(&out.views, &gt_view).is_some());
    }
    // Table V shape: SA and CS stay high, SB collapses.
    assert!(
        sa_hits as u64 >= trials - 1,
        "SELECT-ALL hits {sa_hits}/{trials}"
    );
    assert!(
        cs_hits as u64 >= trials - 1,
        "COLUMN-SELECTION hits {cs_hits}/{trials}"
    );
    assert!(
        sb_hits < cs_hits,
        "SELECT-BEST ({sb_hits}) must underperform COLUMN-SELECTION ({cs_hits})"
    );
}

#[test]
fn select_all_explodes_the_search_space() {
    let ver = setup();
    let gts = chembl_ground_truths(ver.catalog()).unwrap();
    // Zero-noise query → all strategies find the truth; compare sizes.
    let query = generate_noisy_query(ver.catalog(), &gts[1], NoiseLevel::Zero, 3, 9).unwrap();
    let search = SearchConfig::default();

    let cs = column_selection(ver.index(), &query, &SelectionConfig::default());
    let cs_out = SearchContext::new(ver.catalog(), ver.index())
        .search(&cs, &search)
        .unwrap();
    let sa = select_all(ver.index(), &query);
    let sa_out = SearchContext::new(ver.catalog(), ver.index())
        .search(&sa, &search)
        .unwrap();

    // Fig. 5/6 shape: SELECT-ALL produces at least as many joinable groups,
    // join graphs and views as COLUMN-SELECTION.
    assert!(sa_out.stats.joinable_groups >= cs_out.stats.joinable_groups);
    assert!(sa_out.stats.join_graphs >= cs_out.stats.join_graphs);
    assert!(sa_out.stats.views >= cs_out.stats.views);
    assert!(cs_out.stats.views >= 1);
}

#[test]
fn all_strategies_agree_at_zero_noise_on_hit() {
    let ver = setup();
    let gts = chembl_ground_truths(ver.catalog()).unwrap();
    for gt in gts.iter().take(3) {
        let gt_view = materialize_ground_truth(ver.catalog(), ver.index(), gt, 2).unwrap();
        let query = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 33).unwrap();
        let search = SearchConfig::default();
        for (name, sel) in [
            (
                "CS",
                column_selection(ver.index(), &query, &SelectionConfig::default()),
            ),
            ("SA", select_all(ver.index(), &query)),
            ("SB", select_best(ver.index(), &query)),
        ] {
            let out = SearchContext::new(ver.catalog(), ver.index())
                .search(&sel, &search)
                .unwrap();
            assert!(
                find_ground_truth_view(&out.views, &gt_view).is_some(),
                "{name} missed {} at zero noise",
                gt.name
            );
        }
    }
}

#[test]
fn squid_alpha_db_model_blows_up_storage() {
    let ver = setup();
    let alpha = ver_select::baselines::squid_alpha_db_rows(ver.catalog());
    assert!(
        alpha > ver.catalog().total_rows(),
        "αDB rows ({alpha}) must exceed raw rows ({})",
        ver.catalog().total_rows()
    );
}
