//! Persist → warm-start → serve, pinned against the golden snapshot.
//!
//! The serving layer's correctness claim is that none of its machinery —
//! full-index persistence, warm-start assembly, the result LRU, the
//! materialized-view LRU, the score memo, concurrent access — changes a
//! single byte of query output. This suite drives the same fixed workload
//! as `tests/golden_online.rs` through a `ServeEngine` that was built,
//! persisted to disk, and re-loaded, and requires the rendered output to
//! match `tests/golden/online_snapshot.txt` exactly, on both the cold-cache
//! and warm-cache (hitting) passes.

use std::sync::Arc;
use ver_bench::golden::{golden_catalog, golden_queries, snapshot_with, SNAPSHOT_PATH};
use ver_index::persist::{load_index, save_index};
use ver_index::{build_index, IndexConfig};
use ver_serve::{ServeConfig, ServeEngine};

fn golden_expected() -> String {
    std::fs::read_to_string(SNAPSHOT_PATH)
        .expect("missing golden snapshot — run golden_online with VER_UPDATE_GOLDEN=1")
}

fn temp_index_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ver_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("index_{tag}.bin"))
}

#[test]
fn persisted_index_round_trips_under_serve() {
    let catalog = golden_catalog();
    let index = build_index(&catalog, IndexConfig::default()).expect("index build");
    let path = temp_index_path("roundtrip");
    save_index(&index, &path).expect("save");
    let loaded = load_index(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert!(
        loaded.same_contents(&index),
        "persisted index must reproduce the built index exactly"
    );
}

#[test]
fn warm_started_engine_reproduces_the_golden_snapshot() {
    let expected = golden_expected();
    let catalog = Arc::new(golden_catalog());
    let queries = golden_queries(&catalog);

    // Build once, persist, drop the built engine, warm-start from disk.
    let path = temp_index_path("golden");
    {
        let index = build_index(&catalog, IndexConfig::default()).expect("index build");
        save_index(&index, &path).expect("save");
    }
    let engine =
        ServeEngine::open(Arc::clone(&catalog), &path, ServeConfig::default()).expect("warm start");
    std::fs::remove_file(&path).ok();

    // Pass 1: cold caches. Every query is a result-cache miss; view/score
    // caches fill as candidates recur across queries.
    let cold_pass = snapshot_with(&queries, |spec| engine.query(spec));
    assert_eq!(
        cold_pass, expected,
        "warm-started serving diverged from the golden snapshot (cold caches)"
    );

    // Pass 2: warm caches. Every query is a result-cache hit; output must
    // not move by a byte.
    let warm_pass = snapshot_with(&queries, |spec| engine.query(spec));
    assert_eq!(
        warm_pass, expected,
        "cache-hitting serving diverged from the golden snapshot"
    );

    let stats = engine.stats();
    assert_eq!(stats.queries as usize, queries.len() * 2);
    assert_eq!(
        stats.result_cache.hits as usize,
        queries.len(),
        "second pass must be served entirely from the result cache"
    );
    assert!(
        stats.score_memo.lookups() > 0,
        "join-graph scoring must route through the shared memo"
    );
}

#[test]
fn view_and_score_caches_hit_across_distinct_queries() {
    // Distinct specs bypass the whole-result cache; candidate views and
    // scores shared between them must still hit the cross-query caches.
    let catalog = Arc::new(golden_catalog());
    let queries = golden_queries(&catalog);
    let index = Arc::new(build_index(&catalog, IndexConfig::default()).expect("index build"));

    let engine = ServeEngine::warm_start(
        Arc::clone(&catalog),
        index,
        // Result cache off: every query runs the pipeline. The view LRU
        // must cover the workload's full candidate working set — an LRU
        // smaller than one scan degrades to zero hits (see ServeConfig).
        ServeConfig {
            result_cache_capacity: 0,
            view_cache_capacity: 16_384,
            ..ServeConfig::default()
        },
    )
    .expect("warm start");

    for (_, spec) in &queries {
        engine.query(spec).expect("query");
    }
    for (_, spec) in &queries {
        engine.query(spec).expect("query");
    }
    let stats = engine.stats();
    assert_eq!(stats.result_cache.hits, 0, "result cache is disabled");
    assert!(
        stats.view_cache.hits > 0,
        "repeated pipeline runs must hit the materialized-view LRU: {stats:?}"
    );
    assert!(
        stats.score_memo.hits > 0,
        "repeated pipeline runs must hit the score memo: {stats:?}"
    );
}

#[test]
fn concurrent_clients_see_identical_golden_output() {
    let expected = golden_expected();
    let catalog = Arc::new(golden_catalog());
    let queries = golden_queries(&catalog);
    let index = Arc::new(build_index(&catalog, IndexConfig::default()).expect("index build"));
    let engine = Arc::new(
        ServeEngine::warm_start(Arc::clone(&catalog), index, ServeConfig::default())
            .expect("warm start"),
    );

    // Pre-warm the result cache with one sequential pass; otherwise four
    // in-phase clients can each miss every key before any insert lands (the
    // classic dogpile — benign for correctness, but it would make the
    // hit-count assertion below flaky on small machines).
    let warmup = snapshot_with(&queries, |spec| engine.query(spec));
    assert_eq!(warmup, expected, "warm-up pass diverged");

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let queries = queries.clone();
            let expected = expected.clone();
            scope.spawn(move || {
                let rendered = snapshot_with(&queries, |spec| engine.query(spec));
                assert_eq!(rendered, expected, "concurrent client saw divergent output");
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(
        stats.result_cache.hits as usize,
        4 * queries.len(),
        "every threaded query must be served from the pre-warmed result cache"
    );
}

#[test]
fn warm_start_skips_the_build_and_answers_identically() {
    // Not a benchmark (CI boxes are noisy) — a structural check that the
    // warm path never rebuilds: it must answer correctly even though the
    // engine was given only the persisted artifact, plus a smoke assertion
    // that loading is cheaper than building on this corpus.
    let catalog = Arc::new(golden_catalog());
    let path = temp_index_path("speed");

    let t_build = std::time::Instant::now();
    let index = build_index(&catalog, IndexConfig::default()).expect("index build");
    let build_elapsed = t_build.elapsed();
    save_index(&index, &path).expect("save");

    let t_load = std::time::Instant::now();
    let loaded = load_index(&path).expect("load");
    let load_elapsed = t_load.elapsed();
    std::fs::remove_file(&path).ok();

    assert!(loaded.same_contents(&index));
    assert!(
        load_elapsed < build_elapsed,
        "warm-start load ({load_elapsed:?}) should be faster than a cold build ({build_elapsed:?})"
    );

    let engine = ServeEngine::warm_start(
        Arc::clone(&catalog),
        Arc::new(loaded),
        ServeConfig::default(),
    )
    .expect("warm start");
    let queries = golden_queries(&catalog);
    let (name, spec) = &queries[0];
    let result = engine.query(spec).expect("query");
    assert!(!result.views.is_empty(), "{name} produced no views");
}
