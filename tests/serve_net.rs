//! The golden suite, over a real socket.
//!
//! Invariant 12: a result fetched through `verd`'s wire protocol is
//! byte-identical to the same query answered in process. This suite
//! drives the fixed golden workload (`tests/golden_online.rs`) through a
//! TCP server + blocking client on an ephemeral port and pins the
//! client-side rendering against `tests/golden/online_snapshot.txt` —
//! cold caches, warm caches, 4 concurrent clients, paginated fetches
//! reassembled page by page, and a 2-shard scatter/gather backend. The
//! CI `net` job additionally re-runs this whole file under
//! `VER_SHARDS=2`.

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use ver_bench::golden::{golden_catalog, golden_queries, SNAPSHOT_PATH};
use ver_index::persist::save_index;
use ver_index::{build_index, DiscoveryIndex, IndexConfig};
use ver_qbe::ViewSpec;
use ver_serve::net::{Backend, Client, NetConfig, RetryPolicy, Server, ServerHandle};
use ver_serve::{RouterEngine, ServeConfig, ServeEngine, ShardedEngine};
use ver_store::catalog::TableCatalog;

fn golden_expected() -> String {
    std::fs::read_to_string(SNAPSHOT_PATH)
        .expect("missing golden snapshot — run golden_online with VER_UPDATE_GOLDEN=1")
}

fn catalog() -> Arc<TableCatalog> {
    static CAT: OnceLock<Arc<TableCatalog>> = OnceLock::new();
    Arc::clone(CAT.get_or_init(|| Arc::new(golden_catalog())))
}

fn index() -> Arc<DiscoveryIndex> {
    static IDX: OnceLock<Arc<DiscoveryIndex>> = OnceLock::new();
    Arc::clone(IDX.get_or_init(|| {
        Arc::new(build_index(&catalog(), IndexConfig::default()).expect("index build"))
    }))
}

fn queries() -> Vec<(String, ViewSpec)> {
    golden_queries(&catalog())
}

/// Spawn a server on an ephemeral port over a fresh warm-started engine
/// (cold caches — each test that needs a cold pass gets its own).
fn spawn_single() -> ServerHandle {
    let engine =
        ServeEngine::warm_start(catalog(), index(), ServeConfig::default()).expect("warm start");
    spawn_with(Backend::Single(Arc::new(engine)), NetConfig::default())
}

fn spawn_with(backend: Backend, mut config: NetConfig) -> ServerHandle {
    config.addr = "127.0.0.1:0".parse().unwrap();
    Server::bind(backend, config).expect("bind").spawn()
}

/// Render the golden workload fetched through `client` in the snapshot
/// file's exact format.
fn wire_snapshot(client: &mut Client, queries: &[(String, ViewSpec)], page_size: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# golden online-path snapshot (see golden_online.rs)");
    let _ = writeln!(out);
    for (name, spec) in queries {
        let result = client.query(spec, page_size, 0).expect("wire query");
        result.render(&mut out, name);
    }
    out
}

#[test]
fn over_the_wire_matches_the_golden_snapshot_cold_and_warm() {
    // The full deployment path: build → persist → warm-start → serve.
    let dir = std::env::temp_dir().join(format!("ver_serve_net_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("index_net.bin");
    save_index(&index(), &path).expect("save");
    let engine = ServeEngine::open(catalog(), &path, ServeConfig::default()).expect("warm start");
    std::fs::remove_file(&path).ok();

    let handle = spawn_with(Backend::Single(Arc::new(engine)), NetConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let expected = golden_expected();
    let queries = queries();

    // Pass 1: cold caches — every query runs the pipeline server-side.
    let cold = wire_snapshot(&mut client, &queries, 0);
    assert_eq!(
        cold, expected,
        "over-the-wire result diverged from the golden snapshot (cold caches)"
    );

    // Pass 2: warm caches — served from the result LRU, same bytes.
    let warm = wire_snapshot(&mut client, &queries, 0);
    assert_eq!(
        warm, expected,
        "cache-hitting wire result diverged from the golden snapshot"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.serve.queries as usize, queries.len() * 2);
    assert_eq!(
        stats.serve.result_cache.hits as usize,
        queries.len(),
        "second pass must be result-cache hits"
    );
    assert_eq!(stats.net.queries_ok as usize, queries.len() * 2);
    assert_eq!(stats.net.protocol_errors, 0);
    assert_eq!(stats.net.dropped_conns, 0);

    let health = client.health().expect("health");
    assert_eq!(health.tables as usize, catalog().table_count());
    assert_eq!(health.shards, 1);

    // Shutdown over the wire: acked, then the accept loop exits.
    client.shutdown().expect("shutdown ack");
    drop(handle); // joins the accept thread (hangs here = shutdown broke)
}

#[test]
fn paginated_fetch_reassembles_the_exact_full_result() {
    let handle = spawn_single();
    let mut client = Client::connect(handle.addr()).expect("connect");

    for (name, spec) in &queries() {
        let whole = client.query(spec, 0, 0).expect("single-shot query");
        // A page size that forces many FetchPage round trips.
        let paged = client.query(spec, 7, 0).expect("paginated query");
        assert_eq!(
            paged, whole,
            "{name}: paginated reassembly differs from the single-shot result"
        );

        // And the rendering — the byte-level claim — agrees too.
        let (mut a, mut b) = (String::new(), String::new());
        whole.render(&mut a, name);
        paged.render(&mut b, name);
        assert_eq!(a, b);
    }

    let stats = client.stats().expect("stats");
    assert!(
        stats.net.pages_served > 0,
        "paginated queries must exercise FetchPage: {:?}",
        stats.net
    );
    assert_eq!(
        stats.net.cursors_open, 0,
        "drained cursors must be freed: {:?}",
        stats.net
    );
}

#[test]
fn four_concurrent_clients_see_identical_golden_bytes() {
    let handle = spawn_single();
    let addr = handle.addr();
    let expected = golden_expected();
    let queries = Arc::new(queries());

    let snapshots: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let queries = Arc::clone(&queries);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Two clients paginate, two fetch whole results —
                    // the bytes must not care.
                    let page_size = if i % 2 == 0 { 0 } else { 11 };
                    wire_snapshot(&mut client, &queries, page_size)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (i, snap) in snapshots.iter().enumerate() {
        assert_eq!(
            snap, &expected,
            "concurrent client {i} diverged from the golden snapshot"
        );
    }
    let stats = handle.net_stats();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn sharded_backend_is_wire_identical() {
    // Scatter/gather behind the socket: same bytes as the single engine
    // (invariant 11 extended over the wire).
    let engine = ShardedEngine::warm_start(catalog(), index(), ServeConfig::default(), 2)
        .expect("sharded warm start");
    assert_eq!(engine.shard_count(), 2);
    let handle = spawn_with(Backend::Sharded(Arc::new(engine)), NetConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let snap = wire_snapshot(&mut client, &queries(), 0);
    assert_eq!(
        snap,
        golden_expected(),
        "sharded over-the-wire result diverged from the golden snapshot"
    );
    assert_eq!(client.health().expect("health").shards, 2);
}

/// Spawn `n` shard-leg servers (each a plain single-engine `verd`
/// backend answering `ShardQuery`) and a router engine fanning out to
/// them over real sockets. Returns the leg handles (kept alive) and the
/// router.
fn spawn_router(n: usize) -> (Vec<ServerHandle>, RouterEngine) {
    let legs: Vec<ServerHandle> = (0..n)
        .map(|_| {
            let engine = ServeEngine::warm_start(catalog(), index(), ServeConfig::default())
                .expect("leg warm start");
            spawn_with(Backend::Single(Arc::new(engine)), NetConfig::default())
        })
        .collect();
    let addrs: Vec<std::net::SocketAddr> = legs.iter().map(|h| h.addr()).collect();
    let router = RouterEngine::warm_start(
        catalog(),
        index(),
        ServeConfig::default(),
        &addrs,
        RetryPolicy::default(),
    )
    .expect("router warm start");
    (legs, router)
}

#[test]
fn router_over_remote_legs_is_wire_identical_at_every_shard_count() {
    // Invariant 13: a router fanning the scatter out to *remote* shard
    // legs over TCP answers byte-identically to the in-process sharded
    // engine — and therefore to the single engine and the golden
    // snapshot — at shard counts 1, 2, and 4.
    let expected = golden_expected();
    for n in [1usize, 2, 4] {
        let (legs, router) = spawn_router(n);
        let handle = spawn_with(Backend::Router(Arc::new(router)), NetConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");

        let snap = wire_snapshot(&mut client, &queries(), 0);
        assert_eq!(
            snap, expected,
            "router over {n} remote legs diverged from the golden snapshot"
        );
        assert_eq!(client.health().expect("health").shards as usize, n);

        // Per-leg wire stats: every leg took at least one attempt, none
        // failed, every breaker closed.
        let stats = client.stats().expect("stats");
        assert_eq!(stats.router.len(), n);
        for leg in &stats.router {
            assert!(leg.attempts > 0, "idle leg in a healthy fan-out: {leg:?}");
            assert_eq!(leg.failures, 0, "{leg:?}");
            assert_eq!(leg.failovers, 0, "{leg:?}");
            assert_eq!(leg.breaker, 0, "{leg:?}");
        }
        drop(legs);
    }
}

#[test]
fn router_degrades_to_partial_when_a_leg_server_stops() {
    let (mut legs, router) = spawn_router(2);
    let queries = queries();
    let (_, spec) = &queries[0];

    // Healthy baseline over both remote legs.
    let clean = router.query(spec).expect("clean routed query");
    assert!(!clean.partial);

    // Stop leg 1 for good: its address now refuses connections. A fresh
    // router (cold result cache — a cache hit would mask the dead leg)
    // must degrade to the surviving leg's views — partial, never an
    // error — and the partial result must never enter the cache.
    let addrs: Vec<std::net::SocketAddr> = legs.iter().map(|h| h.addr()).collect();
    let mut dead = legs.pop().unwrap();
    dead.stop();
    let router = RouterEngine::warm_start(
        catalog(),
        index(),
        ServeConfig::default(),
        &addrs,
        RetryPolicy::default(),
    )
    .expect("router warm start");
    let degraded = router
        .query(spec)
        .expect("a dead leg must degrade the merge, not error it");
    assert!(degraded.partial, "dead leg must flag the merge partial");
    assert!(degraded.views.len() <= clean.views.len());
    let again = router
        .query(spec)
        .expect("repeat query over the degraded fan-out");
    assert!(again.partial);
    let stats = router.stats();
    assert_eq!(stats.partial_results, 2);
    assert_eq!(stats.result_cache.hits, 0, "partials must never be cached");
    let leg_stats = router.leg_stats();
    assert_eq!(leg_stats[1].failovers, 2, "{leg_stats:?}");
    assert!(leg_stats[1].failures > 0, "{leg_stats:?}");
}

#[test]
fn connection_cap_rejects_with_a_typed_overloaded_error() {
    let engine =
        ServeEngine::warm_start(catalog(), index(), ServeConfig::default()).expect("warm start");
    let handle = spawn_with(
        Backend::Single(Arc::new(engine)),
        NetConfig {
            max_conns: 2,
            ..NetConfig::default()
        },
    );

    // Fill the cap with two parked (idle but connected) clients.
    let mut parked: Vec<Client> = (0..2)
        .map(|_| Client::connect(handle.addr()).expect("connect"))
        .collect();
    // Park them for real: one exchange each so the server has surely
    // registered both connections before we over-subscribe.
    for c in parked.iter_mut() {
        c.health().expect("health");
    }

    // The third connection is accepted, told Overloaded, and closed —
    // the error frame arrives unprompted, so read it straight off the
    // socket before the close races any request we might send.
    let mut third = std::net::TcpStream::connect(handle.addr()).expect("tcp connect");
    third
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    match ver_serve::net::frame::read_frame(&mut third).expect("overload frame") {
        ver_serve::net::frame::ReadOutcome::Frame(payload) => {
            match ver_serve::net::Response::decode(&payload).expect("decode") {
                ver_serve::net::Response::Error { code, message } => {
                    let e = ver_common::error::VerError::from_wire(code, message);
                    assert!(
                        matches!(e, ver_common::error::VerError::Overloaded(_)),
                        "expected Overloaded, got {e:?}"
                    );
                }
                other => panic!("expected Error frame, got {other:?}"),
            }
        }
        eof => panic!("expected Overloaded frame before close, got {eof:?}"),
    }
    assert!(handle.net_stats().rejected_conns >= 1);

    // Capacity frees as parked clients hang up.
    drop(parked);
    // The server notices the hangups asynchronously; retry briefly.
    let mut ok = false;
    for _ in 0..100 {
        let mut retry = Client::connect(handle.addr()).expect("tcp connect");
        if retry.health().is_ok() {
            ok = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(ok, "capacity must free once parked connections close");
}
