//! Integration: the bandit presentation loop against real pipeline output,
//! and the Ver-vs-FastTopK comparison the user study measures.

use ver_core::{Ver, VerConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_present::{fasttopk_rank, simulate_scan, OracleUser, PersonaUser, SessionOutcome};
use ver_qbe::{ExampleQuery, ViewSpec};

fn setup() -> (Ver, ViewSpec) {
    let cat = generate_wdc(&WdcConfig {
        n_tables: 50,
        n_state_subsets: 6,
        n_population_sources: 3,
        ..Default::default()
    })
    .unwrap();
    let ver = Ver::build(cat, VerConfig::fast()).unwrap();
    let spec = ViewSpec::Qbe(
        ExampleQuery::from_rows(&[vec!["Philippines", "2644000"], vec!["Vietnam", "3055000"]])
            .unwrap(),
    );
    (ver, spec)
}

#[test]
fn oracle_user_finds_every_surviving_view() {
    let (ver, spec) = setup();
    let result = ver.run(&spec).unwrap();
    assert!(result.distill.survivors_c2.len() >= 2);
    for &target in &result.distill.survivors_c2 {
        let mut user = OracleUser::new(target);
        let (_, outcome) = ver.run_interactive(&spec, &mut user).unwrap();
        assert_eq!(
            outcome.found_view(),
            Some(target),
            "oracle failed to reach {target:?}: {outcome:?}"
        );
    }
}

#[test]
fn presentation_beats_blind_scanning_for_low_ranked_targets() {
    let (ver, spec) = setup();
    let result = ver.run(&spec).unwrap();
    let query = match &spec {
        ViewSpec::Qbe(q) => q.clone(),
        _ => unreachable!(),
    };
    // Target the view FastTopK ranks *last* among survivors.
    let survivors: Vec<ver_engine::view::View> = result
        .views
        .iter()
        .filter(|v| result.distill.survivors_c2.contains(&v.id))
        .cloned()
        .collect();
    let ranked = fasttopk_rank(&survivors, &query);
    let target = ranked.last().unwrap().0;

    let mut user = OracleUser::new(target);
    let (_, outcome) = ver.run_interactive(&spec, &mut user).unwrap();
    let ver_interactions = outcome.interactions();
    assert_eq!(outcome.found_view(), Some(target));

    let scan = simulate_scan(&ranked, target, ranked.len());
    assert!(scan.found);
    // Ver's questions should reach a bottom-ranked view in no more steps
    // than scanning the whole list.
    assert!(
        ver_interactions <= scan.inspected + 2,
        "ver {ver_interactions} vs scan {}",
        scan.inspected
    );
}

#[test]
fn impatient_scanners_fail_where_interactive_users_succeed() {
    // The user-study mechanism: FastTopK fails when the target is deep in
    // the ranking and the user's patience budget is small.
    let (ver, spec) = setup();
    let result = ver.run(&spec).unwrap();
    let query = match &spec {
        ViewSpec::Qbe(q) => q.clone(),
        _ => unreachable!(),
    };
    let survivors: Vec<ver_engine::view::View> = result
        .views
        .iter()
        .filter(|v| result.distill.survivors_c2.contains(&v.id))
        .cloned()
        .collect();
    if survivors.len() < 3 {
        return; // not enough ambiguity in this corpus configuration
    }
    let ranked = fasttopk_rank(&survivors, &query);
    let target = ranked.last().unwrap().0;
    let budget = 2; // impatient user
    let scan = simulate_scan(&ranked, target, budget);
    assert!(
        !scan.found,
        "deep target must not be reachable in {budget} steps"
    );

    let mut user = OracleUser::new(target);
    let (_, outcome) = ver.run_interactive(&spec, &mut user).unwrap();
    assert_eq!(outcome.found_view(), Some(target));
}

#[test]
fn skipping_personas_never_lose_candidates() {
    let (ver, spec) = setup();
    let mut user = PersonaUser::uniform(ver_common::ids::ViewId(0), 0.0, 0.0, 9);
    let (result, outcome) = ver.run_interactive(&spec, &mut user).unwrap();
    match outcome {
        SessionOutcome::Exhausted { ranked, .. } => {
            assert_eq!(
                ranked.len(),
                result.distill.survivors_c2.len(),
                "skips must not prune candidates"
            );
        }
        SessionOutcome::Found { .. } => {
            // Only possible when a single survivor existed to begin with.
            assert_eq!(result.distill.survivors_c2.len(), 1);
        }
    }
}

#[test]
fn interactions_stay_within_iteration_budget() {
    let (ver, spec) = setup();
    let result = ver.run(&spec).unwrap();
    for &target in result.distill.survivors_c2.iter().take(3) {
        let mut user = PersonaUser::uniform(target, 0.7, 0.05, 13);
        let (_, outcome) = ver.run_interactive(&spec, &mut user).unwrap();
        assert!(outcome.interactions() <= ver.config().presentation.max_iterations);
    }
}
