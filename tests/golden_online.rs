//! Golden end-to-end snapshot of the online path (rebuild mode).
//!
//! Runs `Ver::run` on the fixed seeded workload in `ver_bench::golden` and
//! pins the ranked view output — view ids, join scores, row/column counts,
//! distillation survivors, final ranking — against
//! `tests/golden/online_snapshot.txt`. Any ranking or materialization
//! regression shows up as a plain-text diff. The serving path
//! (`tests/serve_warm_start.rs`) pins the same snapshot from a
//! warm-started, cache-enabled engine.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! VER_UPDATE_GOLDEN=1 cargo test -q --test golden_online
//! ```
//!
//! then commit the updated snapshot. The snapshot is thread-count
//! independent (the online path is deterministic across `threads` values),
//! and platform independent (all hashing is seeded FxHash/MinHash).

use std::fmt::Write as _;
use ver_bench::golden::{golden_catalog, golden_queries, snapshot_with, SNAPSHOT_PATH};
use ver_core::{Ver, VerConfig};

/// The rebuild-path snapshot: cold index build, then the golden workload.
fn snapshot() -> String {
    let cat = golden_catalog();
    let queries = golden_queries(&cat);
    let ver = Ver::build(cat, VerConfig::default()).expect("index build");
    snapshot_with(&queries, |spec| ver.run(spec))
}

#[test]
fn online_output_matches_golden_snapshot() {
    let actual = snapshot();
    if std::env::var_os("VER_UPDATE_GOLDEN").is_some() {
        std::fs::write(SNAPSHOT_PATH, &actual).expect("write snapshot");
        eprintln!("regenerated {SNAPSHOT_PATH}");
        return;
    }
    let expected = std::fs::read_to_string(SNAPSHOT_PATH)
        .expect("missing golden snapshot — run with VER_UPDATE_GOLDEN=1 to create it");
    if actual != expected {
        // Line-level diff keeps regressions readable in CI logs.
        let mut diff = String::new();
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            if a != e {
                let _ = writeln!(diff, "line {}:\n  expected: {e}\n  actual:   {a}", i + 1);
            }
        }
        let (al, el) = (actual.lines().count(), expected.lines().count());
        if al != el {
            let _ = writeln!(diff, "line counts differ: expected {el}, actual {al}");
        }
        panic!(
            "online output diverged from the golden snapshot.\n{diff}\n\
             If this change is intentional, regenerate with:\n  \
             VER_UPDATE_GOLDEN=1 cargo test -q --test golden_online\n\
             and commit the updated tests/golden/online_snapshot.txt"
        );
    }
}

#[test]
fn snapshot_is_reproducible_within_a_process() {
    // Guards the guard: the workload itself must be deterministic, or the
    // golden file would churn for unrelated reasons.
    assert_eq!(snapshot(), snapshot());
}
