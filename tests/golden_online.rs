//! Golden end-to-end snapshot of the online path.
//!
//! Runs `Ver::run` on a fixed seeded WDC-style workload and pins the ranked
//! view output — view ids, join scores, row/column counts, distillation
//! survivors, final ranking — against `tests/golden/online_snapshot.txt`.
//! Any ranking or materialization regression shows up as a plain-text diff.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! VER_UPDATE_GOLDEN=1 cargo test -q --test golden_online
//! ```
//!
//! then commit the updated snapshot. The snapshot is thread-count
//! independent (the online path is deterministic across `threads` values),
//! and platform independent (all hashing is seeded FxHash/MinHash).

use std::fmt::Write as _;
use ver_core::{Ver, VerConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::wdc_ground_truths;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;

const SNAPSHOT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/online_snapshot.txt"
);

/// Render the observable online-path output for one query.
fn render_query(out: &mut String, name: &str, result: &ver_core::QueryResult) {
    let s = &result.search_stats;
    let _ = writeln!(out, "# query {name}");
    let _ = writeln!(
        out,
        "stats combinations={} groups={} graphs={} views={}",
        s.combinations, s.joinable_groups, s.join_graphs, s.views
    );
    for v in &result.views {
        let tables: Vec<String> = v
            .provenance
            .source_tables
            .iter()
            .map(|t| t.to_string())
            .collect();
        let _ = writeln!(
            out,
            "view {} score={:.6} rows={} cols={} hops={} tables={}",
            v.id,
            v.provenance.join_score,
            v.row_count(),
            v.table.column_count(),
            v.provenance.hops(),
            tables.join(",")
        );
    }
    let survivors: Vec<String> = result
        .distill
        .survivors_c2
        .iter()
        .map(|v| v.to_string())
        .collect();
    let _ = writeln!(out, "survivors_c2 {}", survivors.join(" "));
    let ranked: Vec<String> = result
        .ranked
        .iter()
        .map(|(v, score)| format!("{v}:{score}"))
        .collect();
    let _ = writeln!(out, "ranked {}", ranked.join(" "));
    let _ = writeln!(out);
}

/// The fixed workload: seeded 60-table WDC corpus, the five ground-truth
/// queries at zero noise with pinned per-query seeds.
fn snapshot() -> String {
    let cat = generate_wdc(&WdcConfig {
        n_tables: 60,
        ..Default::default()
    })
    .expect("wdc generation");
    let gts = wdc_ground_truths(&cat).expect("ground truths");
    let ver = Ver::build(cat, VerConfig::default()).expect("index build");

    let mut out = String::new();
    let _ = writeln!(out, "# golden online-path snapshot (see golden_online.rs)");
    let _ = writeln!(out);
    for (qi, gt) in gts.iter().enumerate() {
        let query = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 7 + qi as u64)
            .expect("query generation");
        let result = ver.run(&ViewSpec::Qbe(query)).expect("pipeline run");
        render_query(&mut out, &gt.name, &result);
    }
    out
}

#[test]
fn online_output_matches_golden_snapshot() {
    let actual = snapshot();
    if std::env::var_os("VER_UPDATE_GOLDEN").is_some() {
        std::fs::write(SNAPSHOT_PATH, &actual).expect("write snapshot");
        eprintln!("regenerated {SNAPSHOT_PATH}");
        return;
    }
    let expected = std::fs::read_to_string(SNAPSHOT_PATH)
        .expect("missing golden snapshot — run with VER_UPDATE_GOLDEN=1 to create it");
    if actual != expected {
        // Line-level diff keeps regressions readable in CI logs.
        let mut diff = String::new();
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            if a != e {
                let _ = writeln!(diff, "line {}:\n  expected: {e}\n  actual:   {a}", i + 1);
            }
        }
        let (al, el) = (actual.lines().count(), expected.lines().count());
        if al != el {
            let _ = writeln!(diff, "line counts differ: expected {el}, actual {al}");
        }
        panic!(
            "online output diverged from the golden snapshot.\n{diff}\n\
             If this change is intentional, regenerate with:\n  \
             VER_UPDATE_GOLDEN=1 cargo test -q --test golden_online\n\
             and commit the updated tests/golden/online_snapshot.txt"
        );
    }
}

#[test]
fn snapshot_is_reproducible_within_a_process() {
    // Guards the guard: the workload itself must be deterministic, or the
    // golden file would churn for unrelated reasons.
    assert_eq!(snapshot(), snapshot());
}
