//! Property tests for the work-stealing runtime: order preservation and
//! exactly-once visitation under arbitrary input sizes and thread counts.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use ver_common::pool::{par_for_each, par_map, ThreadPool};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn par_map_preserves_input_order(
        items in prop::collection::vec(any::<u32>(), 0..600),
        threads in 0usize..9,
    ) {
        let out = par_map(&items, threads, |&x| x as u64 + 1);
        let expected: Vec<u64> = items.iter().map(|&x| x as u64 + 1).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn par_map_visits_every_item_exactly_once(
        n in 0usize..600,
        threads in 0usize..9,
    ) {
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        let out = par_map(&items, threads, |&i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        prop_assert_eq!(out.len(), n);
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "item {} visit count", i);
        }
    }

    #[test]
    fn par_for_each_matches_par_map_coverage(
        n in 0usize..400,
        threads in 0usize..9,
    ) {
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        par_for_each(&items, threads, |&i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "item {} visit count", i);
        }
    }

    #[test]
    fn pool_results_agree_across_thread_counts(
        items in prop::collection::vec(any::<u16>(), 1..300),
    ) {
        let seq = ThreadPool::new(1).par_map(&items, |&x| x as u64 * 3);
        for threads in [2usize, 4, 8] {
            let par = ThreadPool::new(threads).par_map(&items, |&x| x as u64 * 3);
            prop_assert_eq!(&par, &seq, "threads = {}", threads);
        }
    }
}
