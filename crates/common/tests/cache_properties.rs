//! Property tests for the shared serving caches.
//!
//! The serving layer sizes its three caches from config, including
//! `capacity == 0` (disabled) and tiny capacities where every insert sits
//! on the eviction boundary. Two invariants are pinned here:
//!
//! * **bounded occupancy** — `len() <= capacity` after every operation,
//!   under arbitrary get/insert interleavings. The subtle boundary:
//!   refreshing an existing key while the map is at capacity skips
//!   eviction (a refresh never grows the map), while a *new* key at
//!   capacity must evict at least one entry first;
//! * **disabled caches observe nothing** — a `capacity == 0` cache
//!   reports zero lookups (no phantom misses) and flags itself
//!   `disabled`, so stats consumers never mistake it for a cold cache.

use proptest::prelude::*;
use ver_common::cache::LruCache;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn len_never_exceeds_capacity_under_interleaved_ops(
        capacity in 0usize..9,
        ops in prop::collection::vec((any::<bool>(), 0u32..24), 0..200),
    ) {
        let cache: LruCache<u32, u32> = LruCache::new(capacity);
        for (i, &(is_insert, key)) in ops.iter().enumerate() {
            if is_insert {
                cache.insert(key, i as u32);
            } else {
                let _ = cache.get(&key);
            }
            prop_assert!(
                cache.len() <= capacity,
                "len {} > capacity {} after op {} ({})",
                cache.len(),
                capacity,
                i,
                if is_insert { "insert" } else { "get" },
            );
        }
        if capacity == 0 {
            let s = cache.stats();
            prop_assert!(s.disabled);
            prop_assert_eq!(s.lookups(), 0, "disabled cache counted lookups");
        }
    }

    #[test]
    fn refresh_heavy_workloads_hold_the_boundary_and_stay_consistent(
        capacity in 1usize..6,
        keys in prop::collection::vec(0u32..4, 1..150),
    ) {
        // A key universe no larger than capacity+3 keeps the cache pinned
        // at the boundary where refresh-vs-evict decisions happen on
        // almost every insert.
        let cache: LruCache<u32, u64> = LruCache::new(capacity);
        for (i, &key) in keys.iter().enumerate() {
            cache.insert(key, i as u64);
            prop_assert!(cache.len() <= capacity);
            // An entry just inserted (fresh or refreshed) is the newest;
            // it must be readable and carry the refreshed value.
            prop_assert_eq!(cache.get(&key), Some(i as u64));
        }
        prop_assert!(!cache.is_empty());
        prop_assert!(!cache.stats().disabled);
    }
}
