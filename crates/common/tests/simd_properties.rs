//! Property tests for the SIMD lane abstraction: every `U64x8` operation
//! must be bit-identical, lane for lane, to its scalar counterpart — the
//! foundation of determinism invariant #8 (SIMD ≡ scalar) that the
//! `ver-index` sketch kernels build on.

// Lane loops index several parallel arrays at once; a range loop is the
// clearest way to say "same lane everywhere".
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use ver_common::fxhash::{fx_step, mix64};
use ver_common::simd::{fx_step_x8, mix64x8, U64x8, LANES};
use ver_common::simd_multiversion;

fn lanes() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), LANES..LANES + 1)
}

fn block(v: &[u64]) -> U64x8 {
    U64x8::load(v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn mix64x8_is_lane_wise_mix64(v in lanes()) {
        let out = mix64x8(block(&v));
        for (lane, &x) in v.iter().enumerate() {
            prop_assert_eq!(out.0[lane], mix64(x), "lane {}", lane);
        }
    }

    #[test]
    fn fx_step_x8_is_lane_wise_fx_step(h in lanes(), w in lanes()) {
        let out = fx_step_x8(block(&h), block(&w));
        for lane in 0..LANES {
            prop_assert_eq!(out.0[lane], fx_step(h[lane], w[lane]), "lane {}", lane);
        }
    }

    #[test]
    fn min_is_lane_wise_unsigned_min(a in lanes(), b in lanes()) {
        let out = block(&a).min(block(&b));
        for lane in 0..LANES {
            prop_assert_eq!(out.0[lane], a[lane].min(b[lane]), "lane {}", lane);
        }
    }

    #[test]
    fn xor_rotate_shift_are_lane_wise(a in lanes(), b in lanes(), n in 0u32..64) {
        let x = block(&a).xor(block(&b));
        let r = block(&a).rotate_left(n % 63 + 1);
        let s = block(&a).xorshift_right(n % 63 + 1);
        for lane in 0..LANES {
            prop_assert_eq!(x.0[lane], a[lane] ^ b[lane]);
            prop_assert_eq!(r.0[lane], a[lane].rotate_left(n % 63 + 1));
            prop_assert_eq!(s.0[lane], a[lane] ^ (a[lane] >> (n % 63 + 1)));
        }
    }

    #[test]
    fn wrapping_ops_are_lane_wise(a in lanes(), k in any::<u64>()) {
        let add = block(&a).wrapping_add_splat(k);
        let mul = block(&a).wrapping_mul_splat(k);
        for lane in 0..LANES {
            prop_assert_eq!(add.0[lane], a[lane].wrapping_add(k));
            prop_assert_eq!(mul.0[lane], a[lane].wrapping_mul(k));
        }
    }

    #[test]
    fn count_eq_matches_scalar_count(a in lanes(), b in lanes(), collide in 0usize..LANES) {
        let mut b = b;
        // Force some collisions so the equal branch is actually exercised.
        b[..collide].copy_from_slice(&a[..collide]);
        let expected = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        prop_assert_eq!(block(&a).count_eq(block(&b)), expected);
    }

    #[test]
    fn multiversioned_kernel_matches_plain_body(v in prop::collection::vec(any::<u64>(), 0..600)) {
        simd_multiversion! {
            fn mix_all(xs: &mut [u64]) {
                for x in xs.iter_mut() {
                    *x = mix64(*x);
                }
            }
        }
        let mut dispatched = v.clone();
        mix_all(&mut dispatched);
        let reference: Vec<u64> = v.iter().map(|&x| mix64(x)).collect();
        prop_assert_eq!(dispatched, reference);
    }
}
