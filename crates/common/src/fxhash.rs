//! A local re-implementation of the well-known Fx hash (as used by rustc).
//!
//! Row hashing, MinHash signatures and the inverted indexes hash millions of
//! short keys; SipHash (std's default) is measurably slower for those
//! workloads. The algorithm is ~30 lines, so we implement it here instead of
//! adding a dependency (see DESIGN.md §5).
//!
//! Not DoS-resistant — fine for this system, which never hashes untrusted
//! network input.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// 64-bit Fx multiply-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// The Fx multiplier (public to the crate so the SIMD lanes in
/// [`crate::simd`] can replicate [`fx_step`] exactly).
pub(crate) const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// One Fx hashing step: fold `word` into the running `hash`. This is the
/// exact state transition [`FxHasher`] applies per 8-byte word; the LSH
/// band-hash kernel replays it lane-parallel across bands
/// ([`crate::simd::fx_step_x8`]) and must stay bit-identical to it.
#[inline]
pub fn fx_step(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(ROTATE) ^ word).wrapping_mul(FX_SEED)
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = fx_step(self.hash, i);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash arbitrary bytes to a `u64` in one call.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hash any `Hash` value to a `u64` in one call.
#[inline]
pub fn fx_hash_u64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// SplitMix64 finaliser constants, shared with the eight-lane version in
/// [`crate::simd::mix64x8`] so the two can never drift apart.
pub(crate) const MIX64_INC: u64 = 0x9e37_79b9_7f4a_7c15;
pub(crate) const MIX64_M1: u64 = 0xbf58_476d_1ce4_e5b9;
pub(crate) const MIX64_M2: u64 = 0x94d0_49bb_1331_11eb;

/// Mix a 64-bit value (SplitMix64 finaliser). Used to derive independent
/// hash functions for MinHash from a single base hash.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(MIX64_INC);
    z = (z ^ (z >> 30)).wrapping_mul(MIX64_M1);
    z = (z ^ (z >> 27)).wrapping_mul(MIX64_M2);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_bytes(b"hello"), fx_hash_bytes(b"hello"));
        assert_eq!(fx_hash_u64(&42u64), fx_hash_u64(&42u64));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(fx_hash_bytes(b"hello"), fx_hash_bytes(b"hellp"));
        assert_ne!(fx_hash_bytes(b"ab"), fx_hash_bytes(b"ab\0"));
        assert_ne!(fx_hash_bytes(b""), fx_hash_bytes(b"\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let s: FxHashSet<u64> = (0..100).collect();
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn mix64_bijective_smoke() {
        // SplitMix64's finaliser is a bijection; sample a few points for
        // collision-freedom and avalanche.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
        assert_ne!(mix64(1) & 0xFFFF_0000_0000_0000, 0); // high bits populated
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // Sequential integers should not collapse into few buckets.
        let n = 4096u64;
        let buckets = 64usize;
        let mut counts = vec![0usize; buckets];
        for i in 0..n {
            counts[(fx_hash_u64(&i) as usize) % buckets] += 1;
        }
        let max = *counts.iter().max().unwrap();
        // Perfectly uniform would be 64 per bucket; allow generous slack.
        assert!(max < 64 * 3, "bucket skew too high: {max}");
    }
}
