//! A small work-stealing parallel runtime for the offline build paths.
//!
//! The discovery-index build is embarrassingly parallel but *skewed*: column
//! sizes in pathless collections follow heavy-tailed distributions, so the
//! static chunking previously used in `ver-index::builder` left threads idle
//! behind whichever chunk drew the giant columns. This module provides
//! chunk-stealing [`par_map`] / [`par_for_each`] primitives instead:
//!
//! * the input index range is dealt evenly to one deque per worker;
//! * each worker pops small grains off the **front** of its own range;
//! * a worker that runs dry picks the victim with the most remaining work
//!   and steals the **back half** of its range.
//!
//! Results are order-preserving — `par_map(items, t, f)[i] == f(&items[i])`
//! for every `i` — and each item is visited exactly once, so callers that
//! need bit-identical output across thread counts (index determinism) get
//! it for free as long as `f` is pure.
//!
//! Workers are scoped threads ([`std::thread::scope`]), so closures may
//! borrow non-`'static` data (catalogs, hashers) without `Arc` plumbing.
//! The convention across the workspace is `threads: 0` = use
//! [`std::thread::available_parallelism`]; see [`resolve_threads`].

use crate::error::{Result, VerError};
use crate::sync::lock_unpoisoned;
use std::any::Any;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Workspace-wide default worker count for `threads` knobs: the
/// `VER_THREADS` environment variable when set (parsed as a count, with
/// `0` = auto), otherwise `0` (auto). Lets CI and operators pin every
/// stage — offline build, online search fan-out, 4C distillation — to a
/// fixed degree of parallelism without touching per-stage configs; the
/// determinism guarantee makes all values produce identical output.
///
/// A malformed value logs one stderr warning and falls back to auto: a
/// long-running service must not abort at query time because an operator
/// exported a typo'd knob, and the determinism guarantee means the
/// fallback still computes identical output (only the schedule differs).
pub fn default_threads() -> usize {
    static KNOB: crate::env::EnvKnob<usize> =
        crate::env::EnvKnob::new("VER_THREADS", "want a thread count, 0 = auto");
    KNOB.get(
        // An exported-but-empty variable means auto, same as unset.
        |v| {
            if v.trim().is_empty() {
                Some(0)
            } else {
                v.trim().parse().ok()
            }
        },
        0,
    )
}

/// Resolve a configured thread count: `0` means "auto" (one worker per
/// available hardware thread); any other value is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// A resolved degree of parallelism, handed around the offline build paths.
///
/// Construction resolves the `0 = auto` convention once; the pool itself is
/// just a worker count — threads are spawned scoped per call, which keeps
/// lifetimes simple (borrowed inputs work) and costs microseconds against
/// build passes that run for milliseconds to minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Pool with `threads` workers (`0` = auto, see [`resolve_threads`]).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: resolve_threads(threads).max(1),
        }
    }

    /// Number of workers this pool schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Order-preserving parallel map: `out[i] == f(&items[i])`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        par_map(items, self.threads, f)
    }

    /// Run `f` once per item, in parallel, in unspecified order.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        par_for_each(items, self.threads, f)
    }

    /// Panic-isolating order-preserving parallel map: a panic in `f`
    /// becomes that item's `Err(VerError::Internal)` instead of
    /// propagating. See [`try_par_map`].
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Result<R> + Sync,
    {
        try_par_map(items, self.threads, f)
    }
}

/// One worker's share of the index space: a half-open `[next, end)` range.
///
/// The owner takes grains off the front; thieves shrink the back. A plain
/// mutex keeps the invariant "every index is claimed exactly once" trivially
/// true — contention is negligible because claims move whole grains, not
/// single items.
type Deque = Mutex<(usize, usize)>;

/// Grain size: small enough to balance skewed workloads, large enough that
/// deque locking is noise. With `4×threads` grains per worker the steady
/// state is ~once-per-grain locking; the cap bounds latency when one grain
/// hides a giant item.
fn grain_for(n: usize, workers: usize) -> usize {
    (n / (workers * 4)).clamp(1, 256)
}

/// Deal `n` items evenly across `workers` deques.
fn deal(n: usize, workers: usize) -> Vec<Deque> {
    let per = n.div_ceil(workers);
    (0..workers)
        .map(|w| Mutex::new(((w * per).min(n), ((w + 1) * per).min(n))))
        .collect()
}

/// Worker loop: drain own deque front-to-back, then steal the back half of
/// the fullest victim. Calls `run(i)` exactly once per claimed index.
fn work(me: usize, deques: &[Deque], grain: usize, run: &(impl Fn(usize) + Sync)) {
    loop {
        // Drain own range, one grain at a time.
        loop {
            let (start, stop) = {
                let mut r = lock_unpoisoned(&deques[me]);
                if r.0 >= r.1 {
                    break;
                }
                let start = r.0;
                r.0 = (r.0 + grain).min(r.1);
                (start, r.0)
            };
            for i in start..stop {
                run(i);
            }
        }
        // Own range dry: pick the victim with the most remaining work.
        let mut victim = None;
        let mut most = 0usize;
        for (v, d) in deques.iter().enumerate() {
            if v == me {
                continue;
            }
            let r = lock_unpoisoned(d);
            let remaining = r.1.saturating_sub(r.0);
            if remaining > most {
                most = remaining;
                victim = Some(v);
            }
        }
        let Some(v) = victim else {
            return; // every deque is empty — all work claimed
        };
        // Steal the back half (re-checked under the victim's lock; the
        // victim may have drained since the scan).
        let stolen = {
            let mut r = lock_unpoisoned(&deques[v]);
            let remaining = r.1.saturating_sub(r.0);
            if remaining == 0 {
                continue; // lost the race — rescan
            }
            let take = remaining.div_ceil(2);
            r.1 -= take;
            (r.1, r.1 + take)
        };
        *lock_unpoisoned(&deques[me]) = stolen;
    }
}

/// Drive `run(i)` exactly once for every `i in 0..n` on `threads` workers.
fn run_indices(n: usize, threads: usize, run: impl Fn(usize) + Sync) {
    let workers = resolve_threads(threads).max(1).min(n);
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            run(i);
        }
        return;
    }
    let grain = grain_for(n, workers);
    let deques = deal(n, workers);
    std::thread::scope(|scope| {
        for me in 1..workers {
            scope.spawn({
                let deques = &deques;
                let run = &run;
                move || work(me, deques, grain, run)
            });
        }
        work(0, &deques, grain, &run);
    });
}

/// Write handle over the output slots; each index is written exactly once
/// (by whichever worker claimed it), so the disjoint raw writes are sound.
struct Slots<R>(*mut MaybeUninit<R>);
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    /// # Safety
    /// `i` must be in-bounds and written at most once across all threads.
    unsafe fn write(&self, i: usize, v: R) {
        self.0.add(i).write(MaybeUninit::new(v));
    }
}

/// Render a caught panic payload as a one-line message for
/// `VerError::Internal`.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// Core of [`par_map`]: map every item, catching per-item panics so one
/// panicking closure cannot poison the deques or tear down sibling
/// workers. Returns the first caught payload (by completion order, not
/// item order) instead of the output vector when any item panicked;
/// results computed for other items are leaked (not dropped) in that case,
/// exactly as the pre-isolation propagating version did.
fn par_map_impl<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> std::result::Result<Vec<R>, Box<dyn Any + Send>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for item in items {
            out.push(catch_unwind(AssertUnwindSafe(|| f(item)))?);
        }
        return Ok(out);
    }
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit<R> needs no initialisation; length equals capacity.
    unsafe { out.set_len(n) };
    let slots = Slots(out.as_mut_ptr());
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    run_indices(n, workers, |i| {
        // The catch keeps the "every claimed index completes" invariant
        // intact under panicking closures: the worker records the payload
        // and moves on to its next grain rather than dying mid-deque.
        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
            // SAFETY: `run_indices` claims each index exactly once and
            // `i < n`, so this write is in-bounds and races with no other
            // access.
            Ok(v) => unsafe { slots.write(i, v) },
            Err(payload) => {
                let mut slot = lock_unpoisoned(&first_panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    });
    if let Some(payload) = lock_unpoisoned(&first_panic).take() {
        // Panicked slots were never written; `out` drops as
        // `Vec<MaybeUninit<R>>`, leaking the written results.
        return Err(payload);
    }
    // SAFETY: no panic means every slot was initialised above;
    // MaybeUninit<R> and R share layout, so the buffer can be
    // reinterpreted wholesale.
    let mut out = ManuallyDrop::new(out);
    Ok(unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), n, out.capacity()) })
}

/// Order-preserving chunk-stealing parallel map: `out[i] == f(&items[i])`.
///
/// `threads` follows the `0 = auto` convention. Falls back to a plain
/// sequential map for one worker or trivially small inputs. If `f` panics
/// the first caught payload is re-raised on the calling thread after all
/// workers finish; already-computed results are leaked (not dropped) in
/// that case. Callers that want panics degraded to per-item errors use
/// [`try_par_map`] instead.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match par_map_impl(items, threads, f) {
        Ok(out) => out,
        Err(payload) => resume_unwind(payload),
    }
}

/// Panic-isolating order-preserving parallel map.
///
/// Like [`par_map`] over a fallible closure, except a panic in `f` is
/// caught and returned as that item's `Err(VerError::Internal)` carrying
/// the panic message — the other items complete normally and the calling
/// thread never unwinds. This is the serving path's contract: one
/// poisonous candidate degrades to one failed item, not a dead process.
pub fn try_par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R> + Sync,
{
    par_map(items, threads, |item| {
        catch_unwind(AssertUnwindSafe(|| f(item)))
            .unwrap_or_else(|payload| Err(VerError::Internal(panic_message(payload.as_ref()))))
    })
}

/// Run `f` once per item in parallel; no results, no ordering guarantees on
/// execution (use [`par_map`] when output order matters). Panics in `f`
/// are re-raised on the calling thread after all workers finish.
pub fn par_for_each<T, F>(items: &[T], threads: usize, f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    run_indices(items.len(), threads, |i| {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
            let mut slot = lock_unpoisoned(&first_panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    });
    let payload = lock_unpoisoned(&first_panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn resolve_threads_auto_and_literal() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(ThreadPool::new(0).threads(), resolve_threads(0));
        assert_eq!(ThreadPool::new(5).threads(), 5);
    }

    #[test]
    fn default_threads_reads_env_or_auto() {
        // Whatever VER_THREADS says (CI runs the suite under both unset and
        // "1"), the result must be a valid knob value for resolve_threads.
        let d = default_threads();
        assert!(resolve_threads(d) >= 1);
        match std::env::var("VER_THREADS") {
            Ok(v) if v.trim().is_empty() => assert_eq!(d, 0),
            // Valid values parse; garbage falls back to auto (0) with a
            // stderr warning rather than panicking.
            Ok(v) => assert_eq!(d, v.trim().parse::<usize>().unwrap_or(0)),
            Err(_) => assert_eq!(d, 0, "unset VER_THREADS means auto"),
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(&items, threads, |&x| x * 2 + 1);
            assert_eq!(out.len(), items.len());
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u64 * 2 + 1, "threads={threads} slot {i}");
            }
        }
    }

    #[test]
    fn par_for_each_visits_every_item_exactly_once() {
        let n = 5_000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_each(&(0..n).collect::<Vec<usize>>(), 4, |&i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn skewed_workloads_are_balanced() {
        // One giant item at the front: static chunking would serialise
        // behind it; stealing must still touch everything exactly once.
        let sizes: Vec<usize> = std::iter::once(200_000)
            .chain((0..400).map(|_| 10))
            .collect();
        let out = par_map(&sizes, 4, |&s| (0..s as u64).sum::<u64>());
        assert_eq!(out.len(), sizes.len());
        assert_eq!(out[0], (0..200_000u64).sum::<u64>());
        assert!(out[1..].iter().all(|&v| v == 45));
    }

    #[test]
    fn borrowed_captures_work() {
        // Scoped lifetimes: closures may borrow stack data.
        let base = [100u64, 200, 300];
        let items: Vec<usize> = vec![0, 1, 2, 0, 1];
        let out = par_map(&items, 2, |&i| base[i]);
        assert_eq!(out, vec![100, 200, 300, 100, 200]);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |&x| x + 1), vec![8]);
        par_for_each(&empty, 0, |_| unreachable!("no items"));
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map(&items, 64, |&x| x), items);
    }

    #[test]
    fn non_copy_results_move_correctly() {
        let items: Vec<u32> = (0..2_000).collect();
        let out = par_map(&items, 4, |&x| format!("v{x}"));
        assert_eq!(out[1999], "v1999");
        assert_eq!(out[0], "v0");
    }

    #[test]
    fn try_par_map_degrades_panics_to_per_item_errors() {
        use crate::error::VerError;
        let items: Vec<u32> = (0..500).collect();
        for threads in [1, 4] {
            let out = try_par_map(&items, threads, |&x| {
                if x % 100 == 37 {
                    panic!("poisonous item {x}");
                }
                Ok(x * 2)
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 100 == 37 {
                    match r {
                        Err(VerError::Internal(m)) => {
                            assert!(m.contains(&format!("poisonous item {i}")), "msg: {m}")
                        }
                        other => panic!("item {i}: expected Internal, got {other:?}"),
                    }
                } else {
                    assert_eq!(r.as_ref().copied().unwrap(), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    fn par_map_reraises_the_panic_after_workers_finish() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let items: Vec<u32> = (0..800).collect();
        for threads in [1, 4] {
            let visited: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                par_map(&items, threads, |&x| {
                    visited[x as usize].fetch_add(1, Ordering::Relaxed);
                    if x == 123 {
                        panic!("boom at {x}");
                    }
                    x
                })
            }));
            let payload = caught.expect_err("panic must propagate to the caller");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("boom at 123"), "payload: {msg:?}");
            // No item ran twice: the catch keeps the claim-exactly-once
            // invariant intact even with a panicking closure.
            assert!(visited.iter().all(|c| c.load(Ordering::Relaxed) <= 1));
        }
    }

    #[test]
    fn par_for_each_reraises_panics() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let items: Vec<u32> = (0..200).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_for_each(&items, 4, |&x| {
                if x == 7 {
                    panic!("side-effect panic");
                }
            })
        }));
        assert!(caught.is_err());
        // The runtime stays usable afterwards.
        assert_eq!(par_map(&items, 4, |&x| x + 1)[0], 1);
    }
}
