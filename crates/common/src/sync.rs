//! Poison-tolerant synchronisation helpers.
//!
//! Every `Mutex` in this workspace guards data whose invariants hold at
//! each individual lock release: the pool deques store a single half-open
//! range updated in one assignment, the caches mutate standard maps whose
//! memory safety is unconditional, and the session registry inserts or
//! removes whole entries. A panic inside a critical section therefore
//! cannot leave *logically* torn state behind — the worst a panicking
//! client can do is abandon an entry it was about to write. Propagating
//! the poison flag, on the other hand, turns one isolated panic into a
//! process-wide brick: every later `lock().expect("poisoned")` aborts.
//!
//! [`lock_unpoisoned`] encodes that policy in one place: take the lock,
//! and if a previous holder panicked, recover the guard and keep serving.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a previous holder panicked.
///
/// Use this instead of `m.lock().expect("poisoned")` for every mutex whose
/// protected data stays consistent at each lock release (all of them, in
/// this workspace — see the module docs). One panicked worker must degrade
/// to a per-item error, never to a poisoned-forever cache or registry.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn recovers_after_a_panicking_holder() {
        let m = Mutex::new(41);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("holder dies with the lock held");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned(), "std marks the mutex poisoned");
        let mut g = lock_unpoisoned(&m);
        assert_eq!(*g, 41, "data written before the panic is intact");
        *g = 42;
        drop(g);
        assert_eq!(*lock_unpoisoned(&m), 42);
    }

    #[test]
    fn behaves_like_lock_when_unpoisoned() {
        let m = Mutex::new(vec![1, 2, 3]);
        lock_unpoisoned(&m).push(4);
        assert_eq!(*lock_unpoisoned(&m), vec![1, 2, 3, 4]);
    }
}
