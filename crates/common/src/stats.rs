//! Summary statistics for the experiment harness.
//!
//! The paper reports boxplot-style distributions (min / 25th / median / 75th /
//! max) for runtimes and view counts (Fig. 3, Fig. 4). [`Summary`] computes
//! those five numbers plus the mean.

use std::fmt;

/// Five-number summary (plus mean) over a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Compute the summary of `values`. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        Some(Summary {
            n,
            min: v[0],
            p25: percentile_sorted(&v, 0.25),
            median: percentile_sorted(&v, 0.50),
            p75: percentile_sorted(&v, 0.75),
            max: v[n - 1],
            mean,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} p25={:.3} med={:.3} p75={:.3} max={:.3} mean={:.3}",
            self.n, self.min, self.p25, self.median, self.p75, self.max, self.mean
        )
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
/// `q` is in `[0, 1]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median convenience wrapper over an unsorted sample.
pub fn median(values: &[f64]) -> Option<f64> {
    Summary::of(values).map(|s| s.median)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.p25 - 1.75).abs() < 1e-12);
        assert!((s.p75 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(median(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [0.0, 10.0];
        assert_eq!(percentile_sorted(&v, 0.5), 5.0);
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 1.0), 10.0);
    }

    #[test]
    fn median_odd_sample() {
        assert_eq!(median(&[9.0, 1.0, 5.0]).unwrap(), 5.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("med=1.500"));
        assert!(txt.contains("n=2"));
    }
}
