//! The dynamically typed cell value of the noisy table model.
//!
//! Definition 1 of the paper allows tables with missing headers and missing
//! cell values, so `Null` is a first-class variant. Text is stored as
//! `Arc<str>` so cloning values across candidate views is a refcount bump,
//! not an allocation (perf-book: avoid hot `clone` allocations).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Logical type of a column (inferred, since pathless collections carry no
/// reliable schema metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats (bit-equality semantics, see [`Value`]).
    Float,
    /// UTF-8 text.
    Text,
    /// Column with no non-null values observed.
    Unknown,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
            DataType::Unknown => write!(f, "unknown"),
        }
    }
}

/// A single cell value.
///
/// `Float` uses **bit equality** (and hashes its bits) so `Value` can be an
/// `Eq + Hash` key in row-hash sets and inverted indexes. `NaN == NaN` under
/// this scheme, which is the useful behaviour for deduplication.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing value.
    Null,
    /// Integer.
    Int(i64),
    /// Float (bit-equality semantics).
    Float(f64),
    /// Text (cheaply cloneable).
    Text(Arc<str>),
}

impl Value {
    /// Build a text value.
    pub fn text(s: impl Into<Arc<str>>) -> Self {
        Value::Text(s.into())
    }

    /// `true` when the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Unknown,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
        }
    }

    /// Parse a raw string cell into the most specific value, mirroring
    /// pandas-style CSV type inference: empty → null, integer, float, text.
    pub fn parse(raw: &str) -> Self {
        let t = raw.trim();
        if t.is_empty() || t.eq_ignore_ascii_case("null") || t.eq_ignore_ascii_case("na") {
            return Value::Null;
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        Value::text(t)
    }

    /// Canonical string form used by keyword matching: lower-cased and
    /// whitespace-trimmed. Numeric values render without `.0` noise where
    /// possible so `Int(5)` and `"5"` normalise identically.
    pub fn normalized(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Text(s) => s.trim().to_lowercase(),
        }
    }

    /// Stable byte encoding used for hashing (row hashes, MinHash). Includes
    /// a type tag so `Int(1)` and `Text("1")` hash differently while two
    /// equal values always hash equally.
    pub fn write_hash_bytes(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64(*i as u64);
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
            Value::Text(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Int < Float < Text; floats order by `total_cmp`.
    /// Used for deterministic output ordering, not for semantics.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::fx_hash_u64;

    #[test]
    fn parse_inference() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse("  hello "), Value::text("hello"));
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("NA"), Value::Null);
        assert_eq!(Value::parse("null"), Value::Null);
    }

    #[test]
    fn normalized_unifies_numeric_forms() {
        assert_eq!(Value::Int(5).normalized(), "5");
        assert_eq!(Value::Float(5.0).normalized(), "5");
        assert_eq!(Value::text("  MiXeD Case ").normalized(), "mixed case");
        assert_eq!(Value::Null.normalized(), "");
    }

    #[test]
    fn float_bit_equality_and_hash() {
        let nan1 = Value::Float(f64::NAN);
        let nan2 = Value::Float(f64::NAN);
        assert_eq!(nan1, nan2);
        assert_eq!(fx_hash_u64(&nan1), fx_hash_u64(&nan2));
        // +0.0 and -0.0 have different bits → different values here.
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn typed_hash_bytes_distinguish_types() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Int(1).write_hash_bytes(&mut a);
        Value::text("1").write_hash_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_total_and_ranked() {
        let mut vals = vec![
            Value::text("b"),
            Value::Null,
            Value::Float(1.5),
            Value::Int(10),
            Value::text("a"),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(10),
                Value::Float(1.5),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }

    #[test]
    fn display_roundtrips_for_ints() {
        assert_eq!(Value::Int(17).to_string(), "17");
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn cheap_text_clone_shares_storage() {
        let v = Value::text("shared");
        let w = v.clone();
        if let (Value::Text(a), Value::Text(b)) = (&v, &w) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected text values");
        }
    }
}
