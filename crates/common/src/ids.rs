//! Newtype identifiers for catalog objects.
//!
//! Using `u32` keeps hot structures (join-graph edges, hypergraph adjacency)
//! small, per the type-size guidance in the Rust performance guide.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a table inside a [`TableCatalog`](https://docs.rs/ver-store).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TableId(pub u32);

/// Identifier of a column, unique across the whole catalog (not per-table).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ColumnId(pub u32);

/// Identifier of a materialized candidate PJ-view.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ViewId(pub u32);

/// A fully qualified column reference: which table, and which column ordinal
/// inside that table. `ColumnId` is the global id; `ordinal` the position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Position of the column within the table schema.
    pub ordinal: u16,
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.ordinal)
    }
}

impl TableId {
    /// Index form for `Vec`-backed lookup tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ColumnId {
    /// Index form for `Vec`-backed lookup tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ViewId {
    /// Index form for `Vec`-backed lookup tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TableId(3).to_string(), "T3");
        assert_eq!(ColumnId(7).to_string(), "C7");
        assert_eq!(ViewId(0).to_string(), "V0");
        let r = ColumnRef {
            table: TableId(3),
            ordinal: 2,
        };
        assert_eq!(r.to_string(), "T3.2");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(TableId(1) < TableId(2));
        assert!(
            ColumnRef {
                table: TableId(1),
                ordinal: 9
            } < ColumnRef {
                table: TableId(2),
                ordinal: 0
            }
        );
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(TableId(42).idx(), 42);
        assert_eq!(ColumnId(7).idx(), 7);
        assert_eq!(ViewId(9).idx(), 9);
    }

    #[test]
    fn compact_layout() {
        // Keep hot edge structures small (perf-book: type sizes matter).
        assert_eq!(std::mem::size_of::<ColumnRef>(), 8);
        assert_eq!(std::mem::size_of::<TableId>(), 4);
    }
}
