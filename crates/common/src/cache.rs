//! Thread-safe caches for the serving layer.
//!
//! `ver-serve` keeps a long-lived engine warm across many queries and
//! sessions; the caches that make repeated work cheap live here so every
//! layer (search, core, serve) can share one implementation:
//!
//! * [`LruCache`] — a bounded least-recently-used map for values worth
//!   keeping only while hot (materialized candidate views, whole query
//!   results);
//! * [`Memo`] — an unbounded memoization map for values that are cheap to
//!   store and deterministic given the engine's immutable index (join-graph
//!   containment scores);
//! * [`CacheCounters`] / [`CacheStats`] — lock-free hit/miss accounting so
//!   serving stats can report cache effectiveness without touching the maps.
//!
//! Both caches take `&self` for every operation (interior `Mutex`), so they
//! can sit behind an `Arc`'d engine queried from many threads at once.
//! Values are returned **by clone**; callers cache cheaply cloneable values
//! (`Arc`s, or views whose text cells are refcounted `Arc<str>`). See
//! ARCHITECTURE.md ("Serving layer") for where each cache sits on the
//! query path.

use crate::fxhash::FxHashMap;
use crate::sync::lock_unpoisoned;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Lock-free hit/miss counters shared by both cache types.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheCounters {
    /// Fresh counters (all zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for reporting.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disabled: false,
        }
    }
}

/// A point-in-time view of a cache's effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// `true` when the cache is configured off (`capacity == 0`). A
    /// disabled cache observes **zero** lookups — stats consumers must not
    /// read its 0% hit rate as a cold cache.
    pub disabled: bool,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Interior state of an [`LruCache`]: entries tagged with a monotonically
/// increasing access tick. Eviction scans the whole map for the oldest
/// ticks, but evicts a **batch** (1/8 of capacity) per scan, so the scan
/// amortises to O(1) comparisons per insert — important because the
/// serving layer's materialization fan-out inserts from many pool workers
/// behind this mutex. Batch eviction under-approximates strict LRU by at
/// most one batch, which is irrelevant for a cache.
struct LruInner<K, V> {
    map: FxHashMap<K, (V, u64)>,
    tick: u64,
}

/// A bounded, thread-safe least-recently-used cache.
///
/// `capacity == 0` disables the cache entirely: every `get` misses and
/// `insert` is a no-op, so callers can thread one through unconditionally.
pub struct LruCache<K, V> {
    inner: Mutex<LruInner<K, V>>,
    counters: CacheCounters,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Cache holding at most `capacity` entries (`0` = disabled).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            inner: Mutex::new(LruInner {
                map: FxHashMap::default(),
                tick: 0,
            }),
            counters: CacheCounters::new(),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss snapshot. A disabled cache (`capacity == 0`) reports zero
    /// lookups and `disabled: true` — it never counted phantom misses.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            disabled: self.capacity == 0,
            ..self.counters.stats()
        }
    }

    /// Look up `key`, refreshing its recency on hit.
    pub fn get(&self, key: &K) -> Option<V> {
        if self.capacity == 0 {
            // A disabled cache is not a cold cache: counting these as
            // misses would surface phantom 0% hit rates in serving stats
            // for a cache that does not exist.
            return None;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((v, t)) => {
                *t = tick;
                let out = v.clone();
                drop(inner);
                self.counters.hit();
                Some(out)
            }
            None => {
                drop(inner);
                self.counters.miss();
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used batch
    /// of entries when full. Does not count as a hit or a miss.
    ///
    /// Boundary invariant: `len() <= capacity` always holds afterwards.
    /// Refreshing an existing key never grows the map (so skipping
    /// eviction is safe even at capacity), and a *new* key at capacity
    /// evicts at least one entry before inserting. Pinned under arbitrary
    /// get/insert interleavings by `tests/cache_properties.rs`.
    pub fn insert(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the oldest ~1/8 of the cache in one scan (at least one
            // entry): one O(n) pass per n/8 inserts ⇒ amortised O(1).
            let batch = (self.capacity / 8).max(1);
            let mut ticks: Vec<u64> = inner.map.values().map(|(_, t)| *t).collect();
            let idx = batch.min(ticks.len()) - 1;
            let (_, cutoff, _) = ticks.select_nth_unstable(idx);
            let cutoff = *cutoff;
            inner.map.retain(|_, (_, t)| *t > cutoff);
        }
        inner.map.insert(key, (value, tick));
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        lock_unpoisoned(&self.inner).map.clear();
    }
}

impl<K: Hash + Eq, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_unpoisoned(&self.inner);
        f.debug_struct("LruCache")
            .field("len", &inner.map.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.counters.stats())
            .finish()
    }
}

/// An unbounded, thread-safe memoization map.
///
/// For values that are deterministic functions of their key (given immutable
/// shared state, e.g. a built discovery index) and small enough to keep
/// forever. Racing inserts of the same key are benign: both compute the same
/// value, last write wins.
pub struct Memo<K, V> {
    map: Mutex<FxHashMap<K, V>>,
    counters: CacheCounters,
}

impl<K: Hash + Eq + Clone, V: Clone> Memo<K, V> {
    /// Empty memo.
    pub fn new() -> Self {
        Memo {
            map: Mutex::new(FxHashMap::default()),
            counters: CacheCounters::new(),
        }
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.map).len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss snapshot.
    pub fn stats(&self) -> CacheStats {
        self.counters.stats()
    }

    /// Return the memoized value for `key`, computing it with `make` on
    /// first sight. `make` runs **outside** the lock, so concurrent callers
    /// never serialise behind a slow computation (they may compute the same
    /// value twice; determinism makes that harmless).
    pub fn get_or_insert_with(&self, key: &K, make: impl FnOnce() -> V) -> V {
        if let Some(v) = lock_unpoisoned(&self.map).get(key) {
            self.counters.hit();
            return v.clone();
        }
        self.counters.miss();
        let v = make();
        lock_unpoisoned(&self.map).insert(key.clone(), v.clone());
        v
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for Memo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> std::fmt::Debug for Memo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memo")
            .field("len", &lock_unpoisoned(&self.map).len())
            .field("stats", &self.counters.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lru_hits_and_misses_are_counted() {
        let cache: LruCache<u32, String> = LruCache::new(4);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "one".into());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(3, 30);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&2), None, "LRU entry evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
    }

    #[test]
    fn lru_reinsert_refreshes_without_evicting() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // refresh, not a new entry
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), Some(20));
    }

    #[test]
    fn batch_eviction_drops_the_oldest_entries() {
        let cache: LruCache<u32, u32> = LruCache::new(64);
        for i in 0..64 {
            cache.insert(i, i);
        }
        // Refresh the first 8 so they are the *newest*, then overflow.
        for i in 0..8 {
            assert_eq!(cache.get(&i), Some(i));
        }
        cache.insert(64, 64);
        // One batch (64/8 = 8) of the oldest entries (8..16) is gone; the
        // refreshed ones and the new insert survive.
        assert_eq!(cache.len(), 64 - 8 + 1);
        for i in 0..8 {
            assert_eq!(cache.get(&i), Some(i), "refreshed entry {i} evicted");
        }
        assert_eq!(cache.get(&64), Some(64));
        for i in 8..16 {
            assert_eq!(cache.get(&i), None, "oldest entry {i} survived");
        }
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache: LruCache<u32, u32> = LruCache::new(0);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), None);
        assert!(cache.is_empty());
        let s = cache.stats();
        // Regression: a disabled cache used to count every `get` as a
        // miss, reporting phantom 0% hit rates. It must observe nothing.
        assert_eq!(s.lookups(), 0, "disabled cache must report zero lookups");
        assert!(s.disabled, "disabled cache must say so in its stats");
        assert_eq!(s.hit_rate(), 0.0);
        // Enabled caches do not carry the flag.
        assert!(!LruCache::<u32, u32>::new(1).stats().disabled);
    }

    #[test]
    fn lru_clear_keeps_counters() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        let _ = cache.get(&1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn memo_computes_once_per_key() {
        let memo: Memo<u32, u64> = Memo::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = memo.get_or_insert_with(&7, || {
                calls.fetch_add(1, Ordering::Relaxed);
                49
            });
            assert_eq!(v, 49);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn caches_are_usable_across_threads() {
        let cache: LruCache<usize, usize> = LruCache::new(64);
        let memo: Memo<usize, usize> = Memo::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        cache.insert(i, i * 2);
                        let _ = cache.get(&i);
                        assert_eq!(memo.get_or_insert_with(&i, || i * 3), i * 3);
                    }
                    let _ = t;
                });
            }
        });
        assert!(!cache.is_empty() && cache.len() <= 64);
        assert!(memo.stats().lookups() == 400);
    }

    #[test]
    fn stats_hit_rate_edge_cases() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            disabled: false,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.lookups(), 4);
    }
}
