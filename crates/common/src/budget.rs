//! Per-query budgets: wall-clock deadlines and work caps.
//!
//! "In the wild" a discovery query can fan out to thousands of candidate
//! join graphs; a production front end cannot let one pathological query
//! hold a connection for minutes. A [`QueryBudget`] bounds a single query
//! three ways:
//!
//! * a **wall-clock deadline** — checked *cooperatively* at stage
//!   boundaries (per candidate scored, per DAG materialization level, per
//!   view distilled). There is no preemption: a check is one monotonic
//!   clock read, and the stages between checks are short, so overshoot is
//!   bounded by the largest single stage step;
//! * a **candidate cap** — the search path truncates the generated
//!   candidate list before scoring;
//! * a **view cap** — an upper bound on how many ranked candidates are
//!   materialized.
//!
//! Budget exhaustion is reported as [`VerError::DeadlineExceeded`] naming
//! the stage that tripped. The serving layer converts that into a
//! *partial* result (best views completed so far, `partial: true`) rather
//! than an error wherever it already has ranked views in hand — see the
//! "Failure model" section of `ARCHITECTURE.md`.
//!
//! Determinism note: a query with **no deadline** never consults the
//! clock, so budget-free runs are bit-identical to pre-budget builds. The
//! caps are deterministic (they truncate content-ranked lists), so two
//! runs with the same caps also produce identical output.

use crate::error::{Result, VerError};
use std::time::{Duration, Instant};

/// Budget for one query: optional deadline plus optional work caps.
///
/// `Copy` by design — it is threaded by value through the search stages as
/// a cheap cooperative cancellation token.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    deadline: Option<Instant>,
    max_candidates: Option<usize>,
    max_views: Option<usize>,
}

impl QueryBudget {
    /// The unlimited budget: no deadline, no caps, never trips.
    pub fn none() -> Self {
        QueryBudget::default()
    }

    /// Whether this budget can ever constrain anything.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_candidates.is_none() && self.max_views.is_none()
    }

    /// Set a wall-clock deadline `timeout` from now.
    ///
    /// A timeout too large for the monotonic clock to represent (e.g.
    /// `Duration::MAX` as "effectively unlimited") degrades to **no
    /// deadline** instead of panicking on `Instant` overflow — an absurdly
    /// distant deadline and no deadline are observationally identical.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Set an absolute deadline (e.g. propagated from an upstream caller).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Cap the number of candidate join graphs scored (`0` = reject all).
    pub fn with_max_candidates(mut self, cap: usize) -> Self {
        self.max_candidates = Some(cap);
        self
    }

    /// Cap the number of ranked candidates materialized into views.
    pub fn with_max_views(mut self, cap: usize) -> Self {
        self.max_views = Some(cap);
        self
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Candidate cap, if set.
    pub fn max_candidates(&self) -> Option<usize> {
        self.max_candidates
    }

    /// View (materialization) cap, if set.
    pub fn max_views(&self) -> Option<usize> {
        self.max_views
    }

    /// True once the deadline has passed. Budgets without a deadline never
    /// expire and never read the clock.
    pub fn expired(&self) -> bool {
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Cooperative cancellation check, called at stage boundaries.
    ///
    /// Returns [`VerError::DeadlineExceeded`] naming `stage` once the
    /// deadline has passed; a deadline-free budget short-circuits to `Ok`
    /// without touching the clock.
    #[inline]
    pub fn check(&self, stage: &str) -> Result<()> {
        if self.expired() {
            Err(VerError::DeadlineExceeded(stage.to_string()))
        } else {
            Ok(())
        }
    }

    /// Apply the candidate cap to a count: how many of `n` candidates the
    /// search stage should keep.
    pub fn cap_candidates(&self, n: usize) -> usize {
        self.max_candidates.map_or(n, |cap| cap.min(n))
    }

    /// Apply the view cap to a count: how many ranked candidates the
    /// materialization stage should execute.
    pub fn cap_views(&self, n: usize) -> usize {
        self.max_views.map_or(n, |cap| cap.min(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = QueryBudget::none();
        assert!(b.is_unlimited());
        assert!(!b.expired());
        assert!(b.check("any").is_ok());
        assert_eq!(b.cap_candidates(17), 17);
        assert_eq!(b.cap_views(17), 17);
    }

    #[test]
    fn elapsed_deadline_trips_with_stage_name() {
        let b = QueryBudget::none().with_timeout(Duration::ZERO);
        assert!(b.expired());
        match b.check("search.score") {
            Err(VerError::DeadlineExceeded(stage)) => assert_eq!(stage, "search.score"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let b = QueryBudget::none().with_timeout(Duration::from_secs(3600));
        assert!(!b.expired());
        assert!(b.check("search.score").is_ok());
        assert!(!b.is_unlimited());
    }

    #[test]
    fn huge_timeout_degrades_to_no_deadline_instead_of_panicking() {
        // Regression: `Instant::now() + Duration::MAX` panics on overflow;
        // callers use huge timeouts to mean "effectively unlimited".
        let b = QueryBudget::none().with_timeout(Duration::MAX);
        assert_eq!(b.deadline(), None, "unrepresentable deadline degrades");
        assert!(!b.expired());
        assert!(b.check("search.score").is_ok());

        // A representable but distant timeout still sets a real deadline.
        let b = QueryBudget::none().with_timeout(Duration::from_secs(3600));
        assert!(b.deadline().is_some());
    }

    #[test]
    fn absolute_deadline_round_trips() {
        let d = Instant::now() + Duration::from_secs(60);
        let b = QueryBudget::none().with_deadline(d);
        assert_eq!(b.deadline(), Some(d));
    }

    #[test]
    fn caps_are_minima() {
        let b = QueryBudget::none().with_max_candidates(5).with_max_views(2);
        assert_eq!(b.cap_candidates(100), 5);
        assert_eq!(b.cap_candidates(3), 3);
        assert_eq!(b.cap_views(100), 2);
        assert_eq!(b.cap_views(1), 1);
        assert_eq!((b.max_candidates(), b.max_views()), (Some(5), Some(2)));
    }
}
