//! Text utilities: Levenshtein distance (fuzzy keyword search), tokenisation,
//! and lexical distances used by the question-prioritisation strategies.
//!
//! The paper uses pre-trained word2vec embeddings to compute question/query
//! distances; offline we substitute deterministic lexical distances (token
//! Jaccard + character-trigram cosine) that exercise the same prioritisation
//! machinery (see DESIGN.md §2).

use crate::fxhash::FxHashMap;

/// The one capped-Levenshtein DP in this crate: distance between `key` and
/// the pre-decoded `needle`, capped at `cap + 1`, streaming `key`'s chars
/// and writing the single DP row into `row` (cleared and refilled; `row[j]`
/// = distance between the consumed prefix of `key` and `needle[..j]`).
/// Both [`levenshtein_capped`] and [`FuzzyMatcher`] call this, so the two
/// public surfaces cannot drift apart.
fn capped_row_distance(key: &str, needle: &[char], cap: usize, row: &mut Vec<usize>) -> usize {
    let m = needle.len();
    let n = key.chars().count();
    if n.abs_diff(m) > cap {
        return cap + 1;
    }
    if n == 0 || m == 0 {
        // One side empty: the distance is the other side's length.
        return n.max(m).min(cap + 1);
    }
    row.clear();
    row.extend(0..=m);
    for (i, ka) in key.chars().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        let mut row_min = row[0];
        for (j, &nb) in needle.iter().enumerate() {
            let cost = usize::from(ka != nb);
            let val = (prev_diag + cost).min(row[j + 1] + 1).min(row[j] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
            row_min = row_min.min(val);
        }
        if row_min > cap {
            return cap + 1;
        }
    }
    row[m].min(cap + 1)
}

/// Levenshtein edit distance with an early-exit `cap`.
///
/// Returns `cap + 1` as soon as the distance provably exceeds `cap`, which
/// keeps fuzzy keyword search linear-ish for non-matches.
pub fn levenshtein_capped(a: &str, b: &str, cap: usize) -> usize {
    let needle: Vec<char> = b.chars().collect();
    let mut row = Vec::with_capacity(needle.len() + 1);
    capped_row_distance(a, &needle, cap, &mut row)
}

/// Plain Levenshtein distance (no cap).
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_capped(a, b, a.chars().count().max(b.chars().count()))
}

/// A reusable capped-Levenshtein matcher for one needle.
///
/// [`levenshtein_capped`] collects both strings into fresh `char` vectors
/// and allocates a DP row on every call — fine for one-off distances, but
/// fuzzy keyword search probes the needle against *every* posting key. This
/// matcher normalises that work up front: the needle is decoded once at
/// construction, the DP row is allocated once and reused, and each probe
/// streams the key's chars without collecting them.
///
/// `matches(key)` returns exactly `levenshtein_capped(key, needle, cap) <=
/// cap` (pinned by tests); only the allocation profile differs.
#[derive(Debug, Clone)]
pub struct FuzzyMatcher {
    needle: Vec<char>,
    cap: usize,
    row: Vec<usize>,
}

impl FuzzyMatcher {
    /// Matcher accepting keys within `cap` edits of `needle`.
    pub fn new(needle: &str, cap: usize) -> Self {
        let needle: Vec<char> = needle.chars().collect();
        let row = Vec::with_capacity(needle.len() + 1);
        FuzzyMatcher { needle, cap, row }
    }

    /// `true` when `key` is within the cap: `levenshtein(key, needle) <=
    /// cap`, with the same early exits as [`levenshtein_capped`] (the two
    /// share one DP implementation) and no per-call allocation.
    pub fn matches(&mut self, key: &str) -> bool {
        capped_row_distance(key, &self.needle, self.cap, &mut self.row) <= self.cap
    }
}

/// Lower-cased alphanumeric tokens; separators are any
/// non-alphanumeric characters (`home_address` → `["home", "address"]`).
pub fn tokenize(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Jaccard similarity of the token sets of two strings, in `[0, 1]`.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: std::collections::BTreeSet<String> = tokenize(a).into_iter().collect();
    let tb: std::collections::BTreeSet<String> = tokenize(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.len() + tb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn trigram_counts(s: &str) -> FxHashMap<[char; 3], u32> {
    let padded: Vec<char> = std::iter::once('\u{2}')
        .chain(s.to_lowercase().chars())
        .chain(std::iter::once('\u{3}'))
        .collect();
    let mut counts: FxHashMap<[char; 3], u32> = FxHashMap::default();
    if padded.len() < 3 {
        return counts;
    }
    for w in padded.windows(3) {
        *counts.entry([w[0], w[1], w[2]]).or_insert(0) += 1;
    }
    counts
}

/// Cosine similarity of character-trigram count vectors, in `[0, 1]`.
/// Robust to small typos; the substitute for word2vec distance.
pub fn trigram_cosine(a: &str, b: &str) -> f64 {
    let ca = trigram_counts(a);
    let cb = trigram_counts(b);
    if ca.is_empty() || cb.is_empty() {
        return if a.to_lowercase() == b.to_lowercase() {
            1.0
        } else {
            0.0
        };
    }
    let mut dot = 0u64;
    for (g, &na) in &ca {
        if let Some(&nb) = cb.get(g) {
            dot += na as u64 * nb as u64;
        }
    }
    let norm = |c: &FxHashMap<[char; 3], u32>| {
        (c.values().map(|&v| v as u64 * v as u64).sum::<u64>() as f64).sqrt()
    };
    let denom = norm(&ca) * norm(&cb);
    if denom == 0.0 {
        0.0
    } else {
        dot as f64 / denom
    }
}

/// Combined lexical distance in `[0, 1]` (0 = identical): the complement of
/// a blend of token Jaccard and trigram cosine. This is the word2vec
/// substitute used by question prioritisation.
pub fn lexical_distance(a: &str, b: &str) -> f64 {
    let sim = 0.5 * token_jaccard(a, b) + 0.5 * trigram_cosine(a, b);
    (1.0 - sim).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basic() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_cap_early_exit() {
        assert_eq!(levenshtein_capped("aaaaaaaa", "bbbbbbbb", 2), 3);
        assert_eq!(levenshtein_capped("abcdef", "abcdxf", 2), 1);
        // Length gap alone exceeds cap.
        assert_eq!(levenshtein_capped("a", "abcdefg", 2), 3);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn fuzzy_matcher_agrees_with_levenshtein_capped() {
        let cases = [
            ("indiana", 1, "indianna"),
            ("indiana", 1, "georgia"),
            ("state", 5, "state_name"),
            ("", 2, "ab"),
            ("", 1, "ab"),
            ("abc", 0, "abc"),
            ("abc", 0, "abd"),
            ("café", 1, "cafe"),
            ("aaaaaaaa", 2, "bbbbbbbb"),
            ("a", 2, "abcdefg"),
        ];
        for (needle, cap, key) in cases {
            let mut m = FuzzyMatcher::new(needle, cap);
            let expected = levenshtein_capped(key, needle, cap) <= cap;
            assert_eq!(m.matches(key), expected, "needle={needle} key={key}");
            // Reuse across probes must not corrupt state.
            assert_eq!(m.matches(key), expected, "second probe of {key}");
        }
    }

    #[test]
    fn fuzzy_matcher_reuse_across_many_keys() {
        let mut m = FuzzyMatcher::new("population", 2);
        let keys = ["population", "populaton", "popullation", "iata", ""];
        for key in keys {
            assert_eq!(
                m.matches(key),
                levenshtein_capped(key, "population", 2) <= 2,
                "key={key}"
            );
        }
    }

    #[test]
    fn tokenize_splits_on_non_alnum() {
        assert_eq!(tokenize("home_address"), vec!["home", "address"]);
        assert_eq!(
            tokenize("IATA Code (airport)"),
            vec!["iata", "code", "airport"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("a1-b2"), vec!["a1", "b2"]);
    }

    #[test]
    fn token_jaccard_behaviour() {
        assert!((token_jaccard("home address", "work address") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(token_jaccard("x", "x"), 1.0);
        assert_eq!(token_jaccard("x", "y"), 0.0);
        assert_eq!(token_jaccard("", ""), 1.0);
    }

    #[test]
    fn trigram_cosine_tolerates_typos() {
        let close = trigram_cosine("newspaper", "newspapers");
        let far = trigram_cosine("newspaper", "church");
        assert!(close > 0.7, "close = {close}");
        assert!(far < 0.2, "far = {far}");
        assert!((trigram_cosine("abc", "abc") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lexical_distance_orders_sensibly() {
        let d_same = lexical_distance("population", "population");
        let d_near = lexical_distance("population count", "population total");
        let d_far = lexical_distance("population", "iata code");
        assert!(d_same < 1e-12);
        assert!(d_near < d_far);
        assert!(d_far <= 1.0);
    }

    #[test]
    fn distances_are_symmetric() {
        for (a, b) in [
            ("alpha", "beta"),
            ("home address", "work address"),
            ("", "x"),
        ] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert!((lexical_distance(a, b) - lexical_distance(b, a)).abs() < 1e-12);
        }
    }
}
