//! Error type shared across the Ver workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, VerError>;

/// Unified error for all Ver components.
///
/// The variants map to the stages of the reference architecture so callers
/// can tell *where* in the funnel a failure happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerError {
    /// A table / column / view id did not resolve in the catalog.
    NotFound(String),
    /// Malformed input data (CSV parse failure, ragged rows, ...).
    InvalidData(String),
    /// A query was malformed (zero columns, ragged example rows, ...).
    InvalidQuery(String),
    /// The discovery index is missing information required by a component.
    IndexError(String),
    /// A join could not be executed (incompatible key columns, ...).
    JoinError(String),
    /// Configuration error (bad threshold, zero interfaces, ...).
    Config(String),
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// (De)serialisation failure for persisted indexes.
    Serde(String),
    /// The serving layer's admission gate rejected the request because too
    /// many queries are already in flight. Retryable: back off and resend.
    Overloaded(String),
    /// A query's [`QueryBudget`](crate::budget::QueryBudget) deadline passed
    /// before the stage named in the message completed. The serving layer
    /// converts this into a `partial: true` result wherever it already has
    /// ranked views in hand.
    DeadlineExceeded(String),
    /// An isolated internal failure — typically a worker panic caught by
    /// `ver_common::pool` and confined to the item it was processing. The
    /// process, the engine, and its caches all remain usable.
    Internal(String),
}

impl fmt::Display for VerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerError::NotFound(m) => write!(f, "not found: {m}"),
            VerError::InvalidData(m) => write!(f, "invalid data: {m}"),
            VerError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            VerError::IndexError(m) => write!(f, "index error: {m}"),
            VerError::JoinError(m) => write!(f, "join error: {m}"),
            VerError::Config(m) => write!(f, "configuration error: {m}"),
            VerError::Io(m) => write!(f, "io error: {m}"),
            VerError::Serde(m) => write!(f, "serialisation error: {m}"),
            VerError::Overloaded(m) => write!(f, "overloaded: {m}"),
            VerError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            VerError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for VerError {}

impl From<std::io::Error> for VerError {
    fn from(e: std::io::Error) -> Self {
        VerError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = VerError::JoinError("no shared key".into());
        assert_eq!(e.to_string(), "join error: no shared key");
        let e = VerError::NotFound("table t7".into());
        assert!(e.to_string().contains("table t7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: VerError = io.into();
        assert!(matches!(e, VerError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(VerError::Config("x".into()), VerError::Config("x".into()));
        assert_ne!(VerError::Config("x".into()), VerError::Io("x".into()));
    }
}
