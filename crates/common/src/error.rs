//! Error type shared across the Ver workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, VerError>;

/// Unified error for all Ver components.
///
/// The variants map to the stages of the reference architecture so callers
/// can tell *where* in the funnel a failure happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerError {
    /// A table / column / view id did not resolve in the catalog.
    NotFound(String),
    /// Malformed input data (CSV parse failure, ragged rows, ...).
    InvalidData(String),
    /// A query was malformed (zero columns, ragged example rows, ...).
    InvalidQuery(String),
    /// The discovery index is missing information required by a component.
    IndexError(String),
    /// A join could not be executed (incompatible key columns, ...).
    JoinError(String),
    /// Configuration error (bad threshold, zero interfaces, ...).
    Config(String),
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// (De)serialisation failure for persisted indexes.
    Serde(String),
    /// The serving layer's admission gate rejected the request because too
    /// many queries are already in flight. Retryable: back off and resend.
    Overloaded(String),
    /// A query's [`QueryBudget`](crate::budget::QueryBudget) deadline passed
    /// before the stage named in the message completed. The serving layer
    /// converts this into a `partial: true` result wherever it already has
    /// ranked views in hand.
    DeadlineExceeded(String),
    /// An isolated internal failure — typically a worker panic caught by
    /// `ver_common::pool` and confined to the item it was processing. The
    /// process, the engine, and its caches all remain usable.
    Internal(String),
    /// A malformed wire frame or payload on the network serving path: bad
    /// preamble, oversized or truncated frame, checksum mismatch, unknown
    /// tag. Always fatal to the *connection*, never to the server — the
    /// peer cannot be trusted to stay in sync after a framing error.
    Protocol(String),
}

impl fmt::Display for VerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerError::NotFound(m) => write!(f, "not found: {m}"),
            VerError::InvalidData(m) => write!(f, "invalid data: {m}"),
            VerError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            VerError::IndexError(m) => write!(f, "index error: {m}"),
            VerError::JoinError(m) => write!(f, "join error: {m}"),
            VerError::Config(m) => write!(f, "configuration error: {m}"),
            VerError::Io(m) => write!(f, "io error: {m}"),
            VerError::Serde(m) => write!(f, "serialisation error: {m}"),
            VerError::Overloaded(m) => write!(f, "overloaded: {m}"),
            VerError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            VerError::Internal(m) => write!(f, "internal error: {m}"),
            VerError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl VerError {
    /// Stable numeric status code for the network serving protocol
    /// (`ver_serve::net`). `0` is reserved for "ok" and never produced
    /// here. The mapping is part of the wire format — reassigning a code
    /// is a protocol break, so new variants must take fresh numbers.
    pub fn wire_code(&self) -> u16 {
        match self {
            VerError::NotFound(_) => 1,
            VerError::InvalidData(_) => 2,
            VerError::InvalidQuery(_) => 3,
            VerError::IndexError(_) => 4,
            VerError::JoinError(_) => 5,
            VerError::Config(_) => 6,
            VerError::Io(_) => 7,
            VerError::Serde(_) => 8,
            VerError::Overloaded(_) => 9,
            VerError::DeadlineExceeded(_) => 10,
            VerError::Internal(_) => 11,
            VerError::Protocol(_) => 12,
        }
    }

    /// Reconstruct an error from its wire status code and message — the
    /// inverse of [`VerError::wire_code`]. An unknown code (a newer server
    /// talking to an older client) degrades to [`VerError::Internal`] with
    /// the code preserved in the message rather than failing to decode.
    pub fn from_wire(code: u16, message: String) -> VerError {
        match code {
            1 => VerError::NotFound(message),
            2 => VerError::InvalidData(message),
            3 => VerError::InvalidQuery(message),
            4 => VerError::IndexError(message),
            5 => VerError::JoinError(message),
            6 => VerError::Config(message),
            7 => VerError::Io(message),
            8 => VerError::Serde(message),
            9 => VerError::Overloaded(message),
            10 => VerError::DeadlineExceeded(message),
            11 => VerError::Internal(message),
            12 => VerError::Protocol(message),
            other => VerError::Internal(format!("unknown wire status {other}: {message}")),
        }
    }
}

impl std::error::Error for VerError {}

impl From<std::io::Error> for VerError {
    fn from(e: std::io::Error) -> Self {
        VerError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = VerError::JoinError("no shared key".into());
        assert_eq!(e.to_string(), "join error: no shared key");
        let e = VerError::NotFound("table t7".into());
        assert!(e.to_string().contains("table t7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: VerError = io.into();
        assert!(matches!(e, VerError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(VerError::Config("x".into()), VerError::Config("x".into()));
        assert_ne!(VerError::Config("x".into()), VerError::Io("x".into()));
    }

    #[test]
    fn wire_codes_round_trip_every_variant() {
        let variants = [
            VerError::NotFound("m".into()),
            VerError::InvalidData("m".into()),
            VerError::InvalidQuery("m".into()),
            VerError::IndexError("m".into()),
            VerError::JoinError("m".into()),
            VerError::Config("m".into()),
            VerError::Io("m".into()),
            VerError::Serde("m".into()),
            VerError::Overloaded("m".into()),
            VerError::DeadlineExceeded("m".into()),
            VerError::Internal("m".into()),
            VerError::Protocol("m".into()),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in variants {
            let code = e.wire_code();
            assert_ne!(code, 0, "0 is reserved for ok");
            assert!(seen.insert(code), "duplicate wire code {code}");
            assert_eq!(VerError::from_wire(code, "m".into()), e);
        }
    }

    #[test]
    fn unknown_wire_code_degrades_to_internal() {
        match VerError::from_wire(9999, "later".into()) {
            VerError::Internal(m) => {
                assert!(m.contains("9999"));
                assert!(m.contains("later"));
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }
}
