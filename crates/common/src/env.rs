//! Warn-once environment-knob resolution.
//!
//! Every `VER_*` tuning knob in the workspace follows the same contract:
//!
//! * the variable is read and parsed **once per process** (knobs are
//!   consulted on hot paths — config construction, connection setup — and
//!   a typo'd value must not spam one warning per query);
//! * a malformed value logs one stderr warning and **falls back** to the
//!   built-in default — a long-running service never aborts because an
//!   operator exported a typo, and the determinism invariants guarantee
//!   the fallback computes identical output anyway;
//! * an unset variable silently takes the default.
//!
//! [`EnvKnob`] packages that contract so `VER_THREADS`, `VER_SHARDS`,
//! `VER_ADDR`, `VER_MAX_CONNS`, `VER_RETRIES`, `VER_BACKOFF_MS` and
//! `VER_BREAKER` all share one implementation instead of five hand-rolled
//! `OnceLock` blocks. The per-knob *syntax* stays with the knob (callers
//! pass their own parse function); this module owns only the
//! once-per-process + warn-once-and-fall-back mechanics.

use std::sync::OnceLock;

/// One warn-once environment knob. Declare as a `static`, resolve with
/// [`get`](EnvKnob::get):
///
/// ```
/// use ver_common::env::EnvKnob;
/// static KNOB: EnvKnob<usize> = EnvKnob::new("VER_DOCTEST_KNOB", "want a count");
/// let v = KNOB.get(|raw| raw.trim().parse().ok(), 4);
/// assert_eq!(v, 4); // unset → fallback
/// ```
pub struct EnvKnob<T: Copy + 'static> {
    name: &'static str,
    /// Human hint for the warning, e.g. `"want a positive integer"`.
    hint: &'static str,
    cell: OnceLock<T>,
}

impl<T: Copy> EnvKnob<T> {
    /// A knob reading `name`, warning with `hint` on malformed values.
    pub const fn new(name: &'static str, hint: &'static str) -> Self {
        EnvKnob {
            name,
            hint,
            cell: OnceLock::new(),
        }
    }

    /// The environment variable this knob reads.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resolve the knob: parse the variable with `parse` on first call
    /// (malformed → one stderr warning + `fallback`; unset → `fallback`)
    /// and return the cached value ever after. The first caller's
    /// `parse`/`fallback` win; by convention each knob has exactly one
    /// call site, so they never disagree.
    pub fn get(&self, parse: impl FnOnce(&str) -> Option<T>, fallback: T) -> T {
        *self.cell.get_or_init(|| match std::env::var(self.name) {
            Ok(raw) => parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "ver: warning: ignoring malformed {}={raw:?} ({}); using the default",
                    self.name, self.hint
                );
                fallback
            }),
            Err(_) => fallback,
        })
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for EnvKnob<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnvKnob")
            .field("name", &self.name)
            .field("resolved", &self.cell.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own variable name and its own static: knobs
    // resolve once per process, so sharing either would couple tests.

    #[test]
    fn unset_variable_takes_the_fallback() {
        static KNOB: EnvKnob<usize> = EnvKnob::new("VER_TEST_ENV_UNSET", "want a count");
        assert_eq!(KNOB.get(|r| r.trim().parse().ok(), 7), 7);
    }

    #[test]
    fn set_variable_parses_and_caches() {
        static KNOB: EnvKnob<usize> = EnvKnob::new("VER_TEST_ENV_SET", "want a count");
        std::env::set_var("VER_TEST_ENV_SET", "42");
        assert_eq!(KNOB.get(|r| r.trim().parse().ok(), 7), 42);
        // Resolved once: later environment changes are invisible.
        std::env::set_var("VER_TEST_ENV_SET", "43");
        assert_eq!(KNOB.get(|r| r.trim().parse().ok(), 7), 42);
    }

    #[test]
    fn malformed_variable_falls_back() {
        static KNOB: EnvKnob<usize> = EnvKnob::new("VER_TEST_ENV_BAD", "want a count");
        std::env::set_var("VER_TEST_ENV_BAD", "not-a-number");
        assert_eq!(KNOB.get(|r| r.trim().parse().ok(), 7), 7);
    }

    #[test]
    fn non_integer_payloads_work_too() {
        static KNOB: EnvKnob<(u32, u32)> = EnvKnob::new("VER_TEST_ENV_PAIR", "want a:b");
        std::env::set_var("VER_TEST_ENV_PAIR", "3:9");
        let parse = |raw: &str| {
            let (a, b) = raw.split_once(':')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        };
        assert_eq!(KNOB.get(parse, (0, 0)), (3, 9));
    }
}
