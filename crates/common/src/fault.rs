//! Fault-injection harness for chaos testing the serving path.
//!
//! Production resilience claims ("a worker panic degrades to a per-item
//! error", "a torn write never loads") are only as good as the tests that
//! exercise them. This module provides **named injection points** that the
//! runtime code hits at its failure-prone boundaries; a disarmed point is
//! one relaxed atomic load (no locks, no clock, no allocation), so the
//! harness ships compiled-in at effectively zero cost, and fault-free runs
//! remain bit-identical to builds without it (determinism invariant 10 in
//! `ARCHITECTURE.md`).
//!
//! Faults are armed two ways:
//!
//! * **programmatically** — [`arm`] / [`arm_times`] / [`disarm`] /
//!   [`reset`], used by `tests/chaos.rs`;
//! * **via `VER_FAULT`** — a `;`-separated list of `point=action` clauses
//!   parsed once on first use, e.g.
//!   `VER_FAULT="search.score=panic*1;persist.save=io"`. Actions:
//!   `io`, `panic`, `corrupt`, `slow:<ms>`; an optional `*N` suffix fires
//!   the fault on the first `N` hits only. A malformed spec logs one
//!   stderr warning and is ignored (the harness must never be able to
//!   break a healthy process).
//!
//! Runtime code calls [`hit`] at a point to (maybe) suffer an injected IO
//! error, panic, or delay, and [`corrupt_bytes`] where a byte-corruption
//! fault makes sense (the persistence writer). The well-known point names
//! live in [`points`].

use crate::error::{Result, VerError};
use crate::fxhash::FxHashMap;
use crate::sync::lock_unpoisoned;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Well-known injection-point names. Using the constants (rather than ad
/// hoc strings) keeps `VER_FAULT` specs, runtime call sites, and the chaos
/// suite in agreement.
pub mod points {
    /// Index save path, hit before the temp file is renamed into place.
    pub const PERSIST_SAVE: &str = "persist.save";
    /// Index load path, hit before the file is read.
    pub const PERSIST_LOAD: &str = "persist.load";
    /// Encoded index bytes about to be written (supports `corrupt`).
    pub const PERSIST_BYTES: &str = "persist.bytes";
    /// Per-candidate scoring inside the search fan-out.
    pub const SEARCH_SCORE: &str = "search.score";
    /// Per-node join execution inside the materialization DAG.
    pub const DAG_STEP: &str = "dag.step";
    /// Per-view work inside 4C distillation.
    pub const DISTILL_VIEW: &str = "distill.view";
    /// Entry of `ServeEngine::query`, after admission.
    pub const SERVE_QUERY: &str = "serve.query";
    /// Entry of one scatter leg of the sharded search, before any
    /// per-candidate isolation — arming `Panic` here kills a whole shard.
    pub const SEARCH_SHARD: &str = "search.shard";
    /// A freshly accepted network connection, hit in its handler thread
    /// before the first read — an injected fault drops that connection
    /// only, the accept loop keeps serving.
    pub const NET_ACCEPT: &str = "net.accept";
    /// Before reading one request frame off a network connection.
    pub const NET_READ: &str = "net.read";
    /// Before writing one response frame to a network connection.
    pub const NET_WRITE: &str = "net.write";
    /// Before each remote shard-leg attempt in the scatter router —
    /// an injected fault here exercises the retry/backoff/breaker
    /// envelope without needing a real network failure.
    pub const REMOTE_LEG: &str = "remote.leg";
}

/// What an armed injection point does when hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// [`hit`] returns `VerError::Io` naming the point.
    IoError,
    /// [`hit`] panics (exercises worker-panic isolation).
    Panic,
    /// [`hit`] sleeps this many milliseconds (drives deadline paths).
    Slow(u64),
    /// [`corrupt_bytes`] flips one byte of the buffer.
    CorruptByte,
}

/// An armed fault: what to do and how many more times to do it.
#[derive(Debug, Clone)]
struct Armed {
    kind: FaultKind,
    /// Fire on this many more hits, then self-disarm; `None` = every hit.
    remaining: Option<u32>,
}

// Fast-path gate. UNINIT forces one slow-path pass that parses `VER_FAULT`;
// after that every disarmed check is a single acquire load.
const STATE_UNINIT: u8 = 0;
const STATE_IDLE: u8 = 1;
const STATE_ARMED: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

fn registry() -> &'static Mutex<FxHashMap<String, Armed>> {
    static REG: OnceLock<Mutex<FxHashMap<String, Armed>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Parse `VER_FAULT` into the registry, exactly once per process.
fn ensure_init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("VER_FAULT") {
            if !spec.trim().is_empty() {
                match parse_spec(&spec) {
                    Ok(entries) => {
                        let mut reg = lock_unpoisoned(registry());
                        for (point, armed) in entries {
                            reg.insert(point, armed);
                        }
                    }
                    Err(e) => eprintln!("ver: warning: ignoring malformed VER_FAULT: {e}"),
                }
            }
        }
        refresh_state();
    });
}

/// Recompute the fast-path gate from the registry contents.
fn refresh_state() {
    let armed = !lock_unpoisoned(registry()).is_empty();
    STATE.store(
        if armed { STATE_ARMED } else { STATE_IDLE },
        Ordering::Release,
    );
}

/// True if any injection point is currently armed. The disarmed fast path
/// is one atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Acquire) {
        STATE_IDLE => false,
        STATE_ARMED => true,
        _ => {
            ensure_init();
            STATE.load(Ordering::Acquire) == STATE_ARMED
        }
    }
}

/// Arm `point` to fire `kind` on every hit until [`disarm`]ed.
pub fn arm(point: &str, kind: FaultKind) {
    ensure_init();
    lock_unpoisoned(registry()).insert(
        point.to_string(),
        Armed {
            kind,
            remaining: None,
        },
    );
    refresh_state();
}

/// Arm `point` to fire `kind` on the next `times` hits, then self-disarm.
/// `times == 0` is a no-op.
pub fn arm_times(point: &str, kind: FaultKind, times: u32) {
    if times == 0 {
        return;
    }
    ensure_init();
    lock_unpoisoned(registry()).insert(
        point.to_string(),
        Armed {
            kind,
            remaining: Some(times),
        },
    );
    refresh_state();
}

/// Disarm `point` if armed.
pub fn disarm(point: &str) {
    ensure_init();
    lock_unpoisoned(registry()).remove(point);
    refresh_state();
}

/// Disarm every point (chaos tests call this between scenarios).
pub fn reset() {
    ensure_init();
    lock_unpoisoned(registry()).clear();
    refresh_state();
}

/// Consume one firing of `point` if its armed kind satisfies `want`.
fn take_if(point: &str, want: impl Fn(&FaultKind) -> bool) -> Option<FaultKind> {
    let mut reg = lock_unpoisoned(registry());
    let armed = reg.get_mut(point)?;
    if !want(&armed.kind) {
        return None;
    }
    let kind = armed.kind.clone();
    let exhausted = match &mut armed.remaining {
        Some(n) => {
            *n -= 1;
            *n == 0
        }
        None => false,
    };
    if exhausted {
        reg.remove(point);
        drop(reg);
        refresh_state();
    }
    Some(kind)
}

/// Hit an injection point: suffer the armed IO error, panic, or delay, if
/// any. Disarmed (the overwhelmingly common case) this is one atomic load.
///
/// `corrupt` faults are not consumed here — they only fire through
/// [`corrupt_bytes`], so arming `corrupt` on a non-buffer point is inert.
#[inline]
pub fn hit(point: &str) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    match take_if(point, |k| !matches!(k, FaultKind::CorruptByte)) {
        None => Ok(()),
        Some(FaultKind::IoError) => Err(VerError::Io(format!("injected fault at {point}"))),
        Some(FaultKind::Panic) => panic!("injected panic at {point}"),
        Some(FaultKind::Slow(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultKind::CorruptByte) => unreachable!("filtered by take_if"),
    }
}

/// Hit a buffer-carrying injection point: if a `corrupt` fault is armed,
/// flip one byte in the middle of `bytes`. Returns whether a flip happened
/// (chaos tests assert on it).
pub fn corrupt_bytes(point: &str, bytes: &mut [u8]) -> bool {
    if !enabled() {
        return false;
    }
    if take_if(point, |k| matches!(k, FaultKind::CorruptByte)).is_some() && !bytes.is_empty() {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        return true;
    }
    false
}

/// Parse a `VER_FAULT` spec: `;`- or `,`-separated `point=action[*N]`
/// clauses with actions `io | panic | corrupt | slow:<ms>`.
fn parse_spec(spec: &str) -> std::result::Result<Vec<(String, Armed)>, String> {
    let mut out = Vec::new();
    for part in spec.split([';', ',']) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (point, action) = part
            .split_once('=')
            .ok_or_else(|| format!("missing '=' in {part:?}"))?;
        let (action, remaining) = match action.split_once('*') {
            Some((a, n)) => {
                let n: u32 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad repeat count in {part:?}"))?;
                if n == 0 {
                    return Err(format!("repeat count must be >= 1 in {part:?}"));
                }
                (a, Some(n))
            }
            None => (action, None),
        };
        let kind = match action.trim() {
            "io" => FaultKind::IoError,
            "panic" => FaultKind::Panic,
            "corrupt" => FaultKind::CorruptByte,
            a if a.starts_with("slow:") => {
                let ms = a["slow:".len()..]
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad slow duration in {part:?}"))?;
                FaultKind::Slow(ms)
            }
            other => return Err(format!("unknown fault action {other:?}")),
        };
        out.push((point.trim().to_string(), Armed { kind, remaining }));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Fault state is process-global; serialise the tests that mutate it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock_unpoisoned(&LOCK)
    }

    #[test]
    fn disarmed_points_are_inert() {
        let _g = guard();
        reset();
        assert!(!enabled());
        assert!(hit(points::SEARCH_SCORE).is_ok());
        let mut buf = vec![1u8, 2, 3];
        assert!(!corrupt_bytes(points::PERSIST_BYTES, &mut buf));
        assert_eq!(buf, vec![1, 2, 3]);
    }

    #[test]
    fn io_fault_fires_until_disarmed() {
        let _g = guard();
        reset();
        arm(points::PERSIST_SAVE, FaultKind::IoError);
        assert!(enabled());
        for _ in 0..3 {
            match hit(points::PERSIST_SAVE) {
                Err(VerError::Io(m)) => assert!(m.contains(points::PERSIST_SAVE)),
                other => panic!("expected injected io error, got {other:?}"),
            }
        }
        // Other points are untouched.
        assert!(hit(points::SERVE_QUERY).is_ok());
        disarm(points::PERSIST_SAVE);
        assert!(hit(points::PERSIST_SAVE).is_ok());
        assert!(!enabled());
    }

    #[test]
    fn one_shot_fault_self_disarms() {
        let _g = guard();
        reset();
        arm_times(points::SEARCH_SCORE, FaultKind::IoError, 2);
        assert!(hit(points::SEARCH_SCORE).is_err());
        assert!(hit(points::SEARCH_SCORE).is_err());
        assert!(hit(points::SEARCH_SCORE).is_ok(), "exhausted after 2 hits");
        assert!(!enabled(), "self-disarm empties the registry");
        arm_times(points::SEARCH_SCORE, FaultKind::IoError, 0);
        assert!(!enabled(), "times=0 is a no-op");
    }

    #[test]
    fn panic_fault_panics_with_point_name() {
        let _g = guard();
        reset();
        arm_times(points::DAG_STEP, FaultKind::Panic, 1);
        let caught = catch_unwind(AssertUnwindSafe(|| hit(points::DAG_STEP)));
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains(points::DAG_STEP), "payload: {msg:?}");
        reset();
    }

    #[test]
    fn corrupt_fault_flips_one_byte_once() {
        let _g = guard();
        reset();
        arm_times(points::PERSIST_BYTES, FaultKind::CorruptByte, 1);
        // `hit` must not consume a corrupt fault.
        assert!(hit(points::PERSIST_BYTES).is_ok());
        let mut buf = vec![0u8; 9];
        assert!(corrupt_bytes(points::PERSIST_BYTES, &mut buf));
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        assert_eq!(buf[4], 0xFF, "middle byte flipped");
        let mut again = vec![0u8; 9];
        assert!(!corrupt_bytes(points::PERSIST_BYTES, &mut again));
        assert!(again.iter().all(|&b| b == 0));
    }

    #[test]
    fn slow_fault_delays() {
        let _g = guard();
        reset();
        arm_times(points::SERVE_QUERY, FaultKind::Slow(20), 1);
        let t0 = std::time::Instant::now();
        assert!(hit(points::SERVE_QUERY).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(hit(points::SERVE_QUERY).is_ok(), "one-shot");
    }

    #[test]
    fn spec_parsing_round_trips() {
        let parsed = parse_spec("search.score=panic*1; persist.save=io ,dag.step=slow:25")
            .expect("valid spec");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, "search.score");
        assert_eq!(parsed[0].1.kind, FaultKind::Panic);
        assert_eq!(parsed[0].1.remaining, Some(1));
        assert_eq!(parsed[1].1.kind, FaultKind::IoError);
        assert_eq!(parsed[1].1.remaining, None);
        assert_eq!(parsed[2].1.kind, FaultKind::Slow(25));
        assert!(parse_spec("").expect("empty is fine").is_empty());
        assert!(parse_spec(" ; ").expect("blank clauses skipped").is_empty());
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(parse_spec("no-equals-sign").is_err());
        assert!(parse_spec("p=explode").is_err());
        assert!(parse_spec("p=slow:fast").is_err());
        assert!(parse_spec("p=io*0").is_err());
        assert!(parse_spec("p=io*many").is_err());
    }
}
