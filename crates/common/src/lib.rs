//! Shared foundations for the Ver view-discovery system.
//!
//! This crate hosts the pieces every other Ver crate needs:
//!
//! * [`value::Value`] — the dynamically typed cell value used by the
//!   noisy table model (Definition 1 of the paper allows missing headers and
//!   missing cell values, so `Value::Null` is a first-class citizen).
//! * [`fxhash::FxHashMap`] / [`fxhash::FxHasher`] — a
//!   fast, DoS-insensitive hash used on hot paths (row hashing, MinHash,
//!   inverted indexes). Re-implemented locally to keep the dependency
//!   footprint at the approved set.
//! * [`text`] — Levenshtein distance (fuzzy keyword search), tokenisation and
//!   n-gram similarity (question prioritisation distances).
//! * [`ids`] — newtype identifiers for tables, columns and views.
//! * [`pool`] — a chunk-stealing parallel runtime (`par_map` /
//!   `par_for_each` over scoped threads) shared by the offline build paths;
//!   `threads: 0` means "use every available hardware thread".
//! * [`simd`] — fixed-width `u64` lane blocks and runtime backend dispatch
//!   for the MinHash/LSH sketching kernels (`VER_SIMD=0` forces the scalar
//!   reference path; output is bit-identical either way).
//! * [`cache`] — thread-safe LRU and memoization caches with hit/miss
//!   counters, the substrate of the `ver-serve` serving layer.
//! * [`budget`] — per-query wall-clock deadlines and work caps, checked
//!   cooperatively at stage boundaries ([`budget::QueryBudget`]).
//! * [`fault`] — the named-injection-point chaos harness (`VER_FAULT`);
//!   one relaxed atomic load when disarmed.
//! * [`mod@env`] — warn-once `VER_*` environment-knob resolution
//!   ([`env::EnvKnob`]); malformed knobs warn once and fall back, never
//!   abort.
//! * [`sync`] — [`sync::lock_unpoisoned`], the workspace-wide policy that
//!   a panicked lock holder must never brick a cache or registry.
//! * [`stats`] — tiny summary-statistics helpers used by the experiment
//!   harness (median / percentiles for boxplot-style reporting).
//! * [`timer`] — phase timers used to reproduce the paper's runtime
//!   breakdowns (Fig. 3 and Fig. 4).
//!
//! Layer 0 of the crate map in the repo-root `ARCHITECTURE.md` — every
//! other crate rests on this one.

pub mod budget;
pub mod cache;
pub mod env;
pub mod error;
pub mod fault;
pub mod fxhash;
pub mod ids;
pub mod pool;
pub mod simd;
pub mod stats;
pub mod sync;
pub mod text;
pub mod timer;
pub mod value;

pub use budget::QueryBudget;
pub use error::{Result, VerError};
pub use fxhash::{fx_hash_bytes, fx_hash_u64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{ColumnId, ColumnRef, TableId, ViewId};
pub use pool::{par_for_each, par_map, resolve_threads, ThreadPool};
pub use simd::{active_backend, simd_enabled, SimdBackend};
pub use sync::lock_unpoisoned;
pub use value::{DataType, Value};
