//! Portable fixed-width SIMD lanes for the sketching kernels.
//!
//! The offline index build is dominated by k-MinHash sketching: every
//! distinct value is pushed through k independent hash functions and folded
//! into k running minima. That work is data-parallel across the k seed
//! lanes, and LSH band hashing is likewise data-parallel across bands. This
//! module provides the substrate those kernels are written on:
//!
//! * [`U64x8`] — a fixed block of eight `u64` lanes with element-wise
//!   arithmetic written as plain array loops. LLVM autovectorizes these
//!   loops for whatever vector ISA the *enclosing function* is compiled
//!   with, which is the whole trick behind [`crate::simd_multiversion!`]: the same
//!   `#[inline(always)]` kernel body is instantiated once at the build
//!   baseline and once inside an `#[target_feature(enable = "avx2")]`
//!   (or NEON) wrapper, and [`active_backend`] picks at runtime.
//! * [`mix64x8`] / [`fx_step_x8`] — eight-lane versions of the two scalar
//!   hash primitives in [`crate::fxhash`], **bit-identical per lane** to
//!   [`mix64`](crate::fxhash::mix64) and [`fx_step`](crate::fxhash::fx_step).
//! * [`active_backend`] — cached runtime dispatch: `VER_SIMD=0` forces the
//!   scalar reference kernels everywhere (the escape hatch CI exercises),
//!   otherwise x86-64 probes for AVX2 via `std::arch` feature detection and
//!   aarch64 uses NEON (part of the baseline target).
//!
//! **Determinism invariant (ARCHITECTURE.md §invariant 8):** every kernel
//! built on these lanes must produce output bit-identical to its scalar
//! reference. The lane ops here only re-associate commutative reductions
//! (min, equality counts) or evaluate identical per-lane arithmetic, so the
//! invariant holds by construction; `tests/simd_properties.rs` and the
//! `ver-index` equivalence suites pin it.

use crate::fxhash::{FX_SEED, MIX64_INC, MIX64_M1, MIX64_M2};
use std::sync::OnceLock;

/// Lane count of the fixed-width block. Eight `u64`s = one AVX-512 register,
/// two AVX2 registers, four NEON registers — wide enough to keep any of
/// those busy, small enough to stay register-resident.
pub const LANES: usize = 8;

/// A block of eight `u64` lanes.
///
/// All operations are element-wise and written as plain `0..LANES` loops so
/// the optimizer can turn them into vector instructions; none of them branch
/// on lane values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(64))]
pub struct U64x8(pub [u64; LANES]);

impl U64x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: u64) -> Self {
        U64x8([v; LANES])
    }

    /// Load from the first [`LANES`] elements of `s`.
    ///
    /// # Panics
    /// If `s` has fewer than [`LANES`] elements.
    #[inline(always)]
    pub fn load(s: &[u64]) -> Self {
        let mut out = [0u64; LANES];
        out.copy_from_slice(&s[..LANES]);
        U64x8(out)
    }

    /// Store into the first [`LANES`] elements of `out`.
    ///
    /// # Panics
    /// If `out` has fewer than [`LANES`] elements.
    #[inline(always)]
    pub fn store(self, out: &mut [u64]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    /// Lane-wise XOR.
    #[inline(always)]
    pub fn xor(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o ^= r;
        }
        U64x8(out)
    }

    /// Lane-wise wrapping add of a scalar.
    #[inline(always)]
    pub fn wrapping_add_splat(self, rhs: u64) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.wrapping_add(rhs);
        }
        U64x8(out)
    }

    /// Lane-wise wrapping multiply by a scalar.
    #[inline(always)]
    pub fn wrapping_mul_splat(self, rhs: u64) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.wrapping_mul(rhs);
        }
        U64x8(out)
    }

    /// Lane-wise `x ^ (x >> shift)` — the xor-shift step of SplitMix64.
    #[inline(always)]
    pub fn xorshift_right(self, shift: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o ^= *o >> shift;
        }
        U64x8(out)
    }

    /// Lane-wise rotate left.
    #[inline(always)]
    pub fn rotate_left(self, n: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.rotate_left(n);
        }
        U64x8(out)
    }

    /// Lane-wise [`u64::to_le`] — a no-op on little-endian targets, kept so
    /// kernels that replay byte-wise hashing (`Hasher::write` consumes raw
    /// bytes little-endian) stay bit-identical on any byte order.
    #[inline(always)]
    pub fn to_le(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.to_le();
        }
        U64x8(out)
    }

    /// Lane-wise unsigned minimum (branchless select per lane).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o = if r < *o { r } else { *o };
        }
        U64x8(out)
    }

    /// Number of lanes equal between `self` and `rhs`.
    #[inline(always)]
    pub fn count_eq(self, rhs: Self) -> usize {
        let mut n = 0usize;
        for (a, b) in self.0.iter().zip(rhs.0) {
            n += usize::from(*a == b);
        }
        n
    }
}

/// Eight-lane SplitMix64 finaliser — per lane bit-identical to
/// [`mix64`](crate::fxhash::mix64).
#[inline(always)]
pub fn mix64x8(z: U64x8) -> U64x8 {
    z.wrapping_add_splat(MIX64_INC)
        .xorshift_right(30)
        .wrapping_mul_splat(MIX64_M1)
        .xorshift_right(27)
        .wrapping_mul_splat(MIX64_M2)
        .xorshift_right(31)
}

/// Eight-lane Fx hashing step — per lane bit-identical to
/// [`fx_step`](crate::fxhash::fx_step).
#[inline(always)]
pub fn fx_step_x8(hash: U64x8, word: U64x8) -> U64x8 {
    hash.rotate_left(5).xor(word).wrapping_mul_splat(FX_SEED)
}

/// The kernel implementation selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// `VER_SIMD=0`: every dispatching kernel runs its scalar reference.
    Scalar,
    /// Blocked lane kernels compiled at the build's baseline target
    /// (x86-64 without AVX2, or any other architecture).
    Portable,
    /// Blocked lane kernels recompiled with AVX2 enabled (x86-64 with
    /// runtime-detected AVX2 support).
    Avx2,
    /// Blocked lane kernels recompiled with AVX-512 (F + DQ: native 64-bit
    /// vector multiply and unsigned min — one [`U64x8`] per register).
    Avx512,
    /// Blocked lane kernels on NEON (aarch64; NEON is part of the baseline
    /// target, the explicit wrapper just names the fact).
    Neon,
}

impl SimdBackend {
    /// Stable lower-case name for logs and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Portable => "portable",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Avx512 => "avx512",
            SimdBackend::Neon => "neon",
        }
    }
}

fn detect_backend() -> SimdBackend {
    if forced_scalar() {
        return SimdBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
        {
            return SimdBackend::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdBackend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return SimdBackend::Neon;
        }
    }
    SimdBackend::Portable
}

/// `true` when `VER_SIMD` requests the scalar reference kernels
/// (`0`, `off`, or `false`; any other value, or unset, enables SIMD).
pub fn forced_scalar() -> bool {
    match std::env::var("VER_SIMD") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false"
        ),
        Err(_) => false,
    }
}

/// The backend every dispatching kernel uses, detected once per process
/// (`VER_SIMD=0` forces [`SimdBackend::Scalar`]).
pub fn active_backend() -> SimdBackend {
    static BACKEND: OnceLock<SimdBackend> = OnceLock::new();
    *BACKEND.get_or_init(detect_backend)
}

/// `true` when blocked kernels are in use (anything but forced scalar).
pub fn simd_enabled() -> bool {
    active_backend() != SimdBackend::Scalar
}

/// CPU features relevant to the sketching kernels that are present at
/// runtime, in a fixed probe order. Recorded into every `BENCH_*.json` so
/// perf numbers carry their hardware context.
pub fn detected_cpu_features() -> Vec<&'static str> {
    #[allow(unused_mut)]
    let mut features: Vec<&'static str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, present) in [
            ("sse2", std::arch::is_x86_feature_detected!("sse2")),
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("avx512dq", std::arch::is_x86_feature_detected!("avx512dq")),
        ] {
            if present {
                features.push(name);
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        for (name, present) in [
            ("neon", std::arch::is_aarch64_feature_detected!("neon")),
            ("sve", std::arch::is_aarch64_feature_detected!("sve")),
        ] {
            if present {
                features.push(name);
            }
        }
    }
    features
}

/// Define a runtime-multiversioned kernel.
///
/// Expands to a function whose body is compiled twice: once at the build's
/// baseline target features, and once inside an
/// `#[target_feature(enable = "avx2")]` (x86-64) or
/// `#[target_feature(enable = "neon")]` (aarch64) wrapper. At each call the
/// cached [`active_backend`](crate::simd::active_backend) picks the widest
/// instantiation the CPU supports. Because both instantiations share one
/// body, they cannot diverge — the SIMD ≡ scalar determinism invariant only
/// rests on the body itself being order-insensitive.
///
/// The body must not capture its environment (it becomes a nested `fn`);
/// pass everything through arguments.
#[macro_export]
macro_rules! simd_multiversion {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($arg:ident : $ty:ty),* $(,)? ) $(-> $ret:ty)? $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[inline(always)]
            fn body($($arg: $ty),*) $(-> $ret)? $body

            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2")]
            unsafe fn vector($($arg: $ty),*) $(-> $ret)? { body($($arg),*) }

            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx512f,avx512dq")]
            unsafe fn vector512($($arg: $ty),*) $(-> $ret)? { body($($arg),*) }

            #[cfg(target_arch = "aarch64")]
            #[target_feature(enable = "neon")]
            unsafe fn vector($($arg: $ty),*) $(-> $ret)? { body($($arg),*) }

            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            {
                use $crate::simd::SimdBackend;
                // SAFETY (both arms): a vector backend is only ever
                // selected after `std::arch` runtime detection confirmed
                // the features are present on this CPU.
                match $crate::simd::active_backend() {
                    #[cfg(target_arch = "x86_64")]
                    SimdBackend::Avx512 => return unsafe { vector512($($arg),*) },
                    SimdBackend::Avx2 | SimdBackend::Neon => {
                        return unsafe { vector($($arg),*) }
                    }
                    _ => {}
                }
            }
            body($($arg),*)
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::{fx_step, mix64};

    #[test]
    fn mix64x8_matches_scalar_per_lane() {
        let input = [0u64, 1, 42, u64::MAX, 0xdead_beef, 7, 1 << 63, 12345];
        let out = mix64x8(U64x8(input));
        for (i, &v) in input.iter().enumerate() {
            assert_eq!(out.0[i], mix64(v), "lane {i}");
        }
    }

    #[test]
    fn fx_step_x8_matches_scalar_per_lane() {
        let h = [1u64, 2, 3, 4, 5, 6, 7, u64::MAX];
        let w = [9u64, 8, 7, 6, 5, 4, 3, 2];
        let out = fx_step_x8(U64x8(h), U64x8(w));
        for i in 0..LANES {
            assert_eq!(out.0[i], fx_step(h[i], w[i]), "lane {i}");
        }
    }

    #[test]
    fn min_is_unsigned_and_branch_free_semantics() {
        let a = U64x8([0, u64::MAX, 5, 5, 1 << 63, 0, 3, 9]);
        let b = U64x8([1, 0, 5, 4, 1, u64::MAX, 4, 8]);
        let m = a.min(b);
        for i in 0..LANES {
            assert_eq!(m.0[i], a.0[i].min(b.0[i]), "lane {i}");
        }
    }

    #[test]
    fn count_eq_counts_lanes() {
        let a = U64x8([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = U64x8([1, 0, 3, 0, 5, 0, 7, 0]);
        assert_eq!(a.count_eq(b), 4);
        assert_eq!(a.count_eq(a), LANES);
    }

    #[test]
    fn load_store_round_trip() {
        let src: Vec<u64> = (10..18).collect();
        let v = U64x8::load(&src);
        let mut dst = vec![0u64; LANES];
        v.store(&mut dst);
        assert_eq!(src, dst);
        assert_eq!(U64x8::splat(7).0, [7; LANES]);
    }

    #[test]
    fn backend_is_cached_and_consistent() {
        let b = active_backend();
        assert_eq!(b, active_backend(), "must be stable per process");
        assert_eq!(simd_enabled(), b != SimdBackend::Scalar);
        if forced_scalar() {
            assert_eq!(b, SimdBackend::Scalar);
        }
        assert!(!b.name().is_empty());
    }

    #[test]
    fn multiversion_macro_runs_body() {
        simd_multiversion! {
            fn double_all(xs: &mut [u64]) {
                for x in xs.iter_mut() {
                    *x = x.wrapping_mul(2);
                }
            }
        }
        let mut v: Vec<u64> = (0..100).collect();
        double_all(&mut v);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 2);
        }
    }
}
