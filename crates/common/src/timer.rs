//! Phase timers used to reproduce the paper's runtime breakdowns.
//!
//! Fig. 4(a) breaks 4C runtime into schema-partition / hash+C1 / C2 / C3+C4
//! phases; Fig. 4(b) breaks the end-to-end runtime into
//! COLUMN-SELECTION / JOIN-GRAPH-SEARCH / MATERIALIZER / VD-IO / 4C. The
//! components accumulate wall-clock time into a [`PhaseTimer`] keyed by phase
//! name, which the harness then prints.

use std::time::{Duration, Instant};

/// Accumulates wall-clock durations per named phase.
///
/// Phase names are interned as `&'static str` to keep recording allocation
/// free on the hot path.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    phases: Vec<(&'static str, Duration)>,
}

impl PhaseTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` and attribute its wall time to `phase`.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Add a pre-measured duration to `phase`.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        if let Some(entry) = self.phases.iter_mut().find(|(p, _)| *p == phase) {
            entry.1 += d;
        } else {
            self.phases.push((phase, d));
        }
    }

    /// Total accumulated across all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration recorded for `phase` (zero if never recorded).
    pub fn get(&self, phase: &str) -> Duration {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Phases in first-recorded order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.phases.iter().copied()
    }

    /// Merge another timer into this one (phase-wise sum).
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (p, d) in other.phases() {
            self.add(p, d);
        }
    }
}

/// RAII guard measuring one scope into a caller-owned slot.
pub struct ScopedTimer<'a> {
    start: Instant,
    slot: &'a mut Duration,
}

impl<'a> ScopedTimer<'a> {
    /// Start timing; the elapsed time is added to `slot` on drop.
    pub fn new(slot: &'a mut Duration) -> Self {
        ScopedTimer {
            start: Instant::now(),
            slot,
        }
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        *self.slot += self.start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_per_phase() {
        let mut t = PhaseTimer::new();
        let v = t.time("a", || 21 * 2);
        assert_eq!(v, 42);
        t.time("a", || std::thread::sleep(Duration::from_millis(1)));
        t.time("b", || ());
        assert!(t.get("a") >= Duration::from_millis(1));
        assert_eq!(t.phases().count(), 2);
        assert!(t.total() >= t.get("a"));
    }

    #[test]
    fn get_missing_phase_is_zero() {
        let t = PhaseTimer::new();
        assert_eq!(t.get("nope"), Duration::ZERO);
    }

    #[test]
    fn merge_sums_durations() {
        let mut a = PhaseTimer::new();
        a.add("x", Duration::from_millis(5));
        let mut b = PhaseTimer::new();
        b.add("x", Duration::from_millis(7));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(12));
        assert_eq!(a.get("y"), Duration::from_millis(1));
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let mut slot = Duration::ZERO;
        {
            let _g = ScopedTimer::new(&mut slot);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(slot >= Duration::from_millis(1));
    }

    #[test]
    fn phase_order_is_first_recorded() {
        let mut t = PhaseTimer::new();
        t.add("later", Duration::ZERO);
        t.add("first?", Duration::ZERO);
        t.add("later", Duration::from_millis(1));
        let names: Vec<&str> = t.phases().map(|(p, _)| p).collect();
        assert_eq!(names, vec!["later", "first?"]);
    }
}
