//! Column projection.

use ver_common::error::{Result, VerError};
use ver_store::schema::TableSchema;
use ver_store::table::Table;

/// Project `table` onto the given column ordinals (in the requested order;
/// repeats allowed). The output table is named after the input.
pub fn project(table: &Table, ordinals: &[usize]) -> Result<Table> {
    let mut metas = Vec::with_capacity(ordinals.len());
    let mut columns = Vec::with_capacity(ordinals.len());
    for &o in ordinals {
        let col = table.column(o).ok_or_else(|| {
            VerError::InvalidQuery(format!(
                "projection ordinal {o} out of range for '{}' (arity {})",
                table.name(),
                table.column_count()
            ))
        })?;
        metas.push(table.schema.columns[o].clone());
        columns.push(col.clone());
    }
    Table::new(TableSchema::new(table.name().to_string(), metas), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    fn t3() -> Table {
        let mut b = TableBuilder::new("t", &["a", "b", "c"]);
        b.push_row(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap();
        b.push_row(vec![Value::Int(4), Value::Int(5), Value::Int(6)])
            .unwrap();
        b.build()
    }

    #[test]
    fn selects_and_reorders() {
        let p = project(&t3(), &[2, 0]).unwrap();
        assert_eq!(p.column_count(), 2);
        assert_eq!(p.schema.columns[0].display_name(0), "c");
        assert_eq!(p.cell(0, 0), Some(&Value::Int(3)));
        assert_eq!(p.cell(1, 1), Some(&Value::Int(4)));
    }

    #[test]
    fn duplicate_ordinals_allowed() {
        let p = project(&t3(), &[1, 1]).unwrap();
        assert_eq!(p.column_count(), 2);
        assert_eq!(p.cell(0, 0), p.cell(0, 1));
    }

    #[test]
    fn out_of_range_errors() {
        assert!(project(&t3(), &[7]).is_err());
    }

    #[test]
    fn empty_projection_gives_zero_columns() {
        let p = project(&t3(), &[]).unwrap();
        assert_eq!(p.column_count(), 0);
        assert_eq!(p.row_count(), 0);
    }
}
