//! Row-wise hashing — the hash function `H` of Algorithm 3.
//!
//! `H(V)` maps a view to a *set* of 64-bit values, one per distinct row.
//! Compatible / contained / overlapping view pairs are detected by set
//! equality / subset / intersection over these hash sets, exactly as the
//! paper describes. The hash streams each value's type tag and payload, so
//! `Int(1)` and `Text("1")` rows hash differently and field boundaries are
//! unambiguous.

use std::hash::{Hash, Hasher};
use ver_common::fxhash::{FxHashSet, FxHasher};
use ver_common::value::Value;
use ver_store::table::Table;

/// Hash a single row (slice of values).
#[inline]
pub fn hash_row(values: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Hash row `row` of `table` without materialising the row.
#[inline]
pub fn hash_table_row(table: &Table, row: usize) -> u64 {
    let mut h = FxHasher::default();
    for col in table.columns() {
        // Missing cells hash as Null to keep H total on ragged data.
        match col.get(row) {
            Some(v) => v.hash(&mut h),
            None => Value::Null.hash(&mut h),
        }
    }
    h.finish()
}

/// The set `H(V)` for an entire table: one hash per row, duplicates
/// collapsed (views are row sets).
pub fn table_hash_set(table: &Table) -> FxHashSet<u64> {
    let mut set = FxHashSet::with_capacity_and_hasher(table.row_count(), Default::default());
    for r in 0..table.row_count() {
        set.insert(hash_table_row(table, r));
    }
    set
}

/// Order-insensitive fingerprint of the whole view: XOR-fold of the row-hash
/// set. Two compatible views (same row set) have equal fingerprints
/// regardless of row order; used as a cheap pre-filter before set
/// comparison.
pub fn table_fingerprint(table: &Table) -> u64 {
    // XOR over the *set* (not the multiset) so duplicate rows do not cancel.
    table_hash_set(table).iter().fold(0u64, |acc, h| acc ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_store::table::TableBuilder;

    fn t(rows: &[(&str, i64)]) -> Table {
        let mut b = TableBuilder::new("t", &["a", "b"]);
        for (s, i) in rows {
            b.push_row(vec![Value::text(*s), Value::Int(*i)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn equal_rows_hash_equal() {
        assert_eq!(
            hash_row(&[Value::Int(1), Value::text("x")]),
            hash_row(&[Value::Int(1), Value::text("x")])
        );
    }

    #[test]
    fn type_tag_distinguishes_int_from_text() {
        assert_ne!(hash_row(&[Value::Int(1)]), hash_row(&[Value::text("1")]));
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        assert_ne!(
            hash_row(&[Value::text("ab"), Value::text("c")]),
            hash_row(&[Value::text("a"), Value::text("bc")])
        );
    }

    #[test]
    fn table_row_hash_matches_slice_hash() {
        let table = t(&[("x", 1), ("y", 2)]);
        assert_eq!(
            hash_table_row(&table, 0),
            hash_row(&[Value::text("x"), Value::Int(1)])
        );
    }

    #[test]
    fn hash_set_collapses_duplicates() {
        let table = t(&[("x", 1), ("x", 1), ("y", 2)]);
        assert_eq!(table_hash_set(&table).len(), 2);
    }

    #[test]
    fn fingerprint_is_order_insensitive() {
        let a = t(&[("x", 1), ("y", 2)]);
        let b = t(&[("y", 2), ("x", 1)]);
        assert_eq!(table_fingerprint(&a), table_fingerprint(&b));
    }

    #[test]
    fn fingerprint_ignores_duplicate_rows() {
        let a = t(&[("x", 1), ("y", 2)]);
        let b = t(&[("x", 1), ("x", 1), ("y", 2)]);
        assert_eq!(table_fingerprint(&a), table_fingerprint(&b));
    }

    #[test]
    fn different_content_different_fingerprint() {
        let a = t(&[("x", 1)]);
        let b = t(&[("x", 2)]);
        assert_ne!(table_fingerprint(&a), table_fingerprint(&b));
    }
}
