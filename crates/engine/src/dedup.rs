//! Set-semantics row deduplication.
//!
//! Candidate PJ-views are row *sets*: Definitions 5–9 of the paper compare
//! views by their row sets, so the materializer deduplicates after
//! projection. Rows are grouped by 64-bit row hash and verified by value
//! equality inside each bucket, so hash collisions cannot merge distinct
//! rows.

use crate::rowhash::hash_table_row;
use ver_common::fxhash::FxHashMap;
use ver_common::value::Value;
use ver_store::column::Column;
use ver_store::table::Table;

/// Indices of the first occurrence of each distinct row, in row order.
pub fn distinct_row_indices(table: &Table) -> Vec<usize> {
    let mut buckets: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    let mut keep = Vec::new();
    'rows: for r in 0..table.row_count() {
        let h = hash_table_row(table, r);
        let bucket = buckets.entry(h).or_default();
        for &prev in bucket.iter() {
            if rows_equal(table, prev, r) {
                continue 'rows;
            }
        }
        bucket.push(r);
        keep.push(r);
    }
    keep
}

fn rows_equal(table: &Table, a: usize, b: usize) -> bool {
    table.columns().iter().all(|c| c.get(a) == c.get(b))
}

/// Remove duplicate rows, keeping first occurrences (stable).
pub fn dedup_rows(table: &Table) -> Table {
    let keep = distinct_row_indices(table);
    if keep.len() == table.row_count() {
        return table.clone();
    }
    let columns: Vec<Column> = table
        .columns()
        .iter()
        .map(|c| {
            keep.iter()
                .map(|&r| c.get(r).cloned().unwrap_or(Value::Null))
                .collect::<Column>()
        })
        .collect();
    Table::new(table.schema.clone(), columns).expect("dedup preserves rectangularity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_store::table::TableBuilder;

    fn dup_table() -> Table {
        let mut b = TableBuilder::new("t", &["a", "b"]);
        b.push_row(vec![Value::Int(1), "x".into()]).unwrap();
        b.push_row(vec![Value::Int(2), "y".into()]).unwrap();
        b.push_row(vec![Value::Int(1), "x".into()]).unwrap();
        b.push_row(vec![Value::Int(2), "z".into()]).unwrap();
        b.build()
    }

    #[test]
    fn removes_exact_duplicates_only() {
        let d = dedup_rows(&dup_table());
        assert_eq!(d.row_count(), 3);
        // Stable: first occurrences in original order.
        assert_eq!(d.cell(0, 0), Some(&Value::Int(1)));
        assert_eq!(d.cell(1, 1), Some(&Value::text("y")));
        assert_eq!(d.cell(2, 1), Some(&Value::text("z")));
    }

    #[test]
    fn no_duplicates_is_identity() {
        let mut b = TableBuilder::new("t", &["a"]);
        b.push_row(vec![Value::Int(1)]).unwrap();
        b.push_row(vec![Value::Int(2)]).unwrap();
        let t = b.build();
        let d = dedup_rows(&t);
        assert_eq!(d.row_count(), 2);
        assert_eq!(d, t);
    }

    #[test]
    fn null_rows_deduplicate() {
        let mut b = TableBuilder::new("t", &["a"]);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        let d = dedup_rows(&b.build());
        assert_eq!(d.row_count(), 1);
    }

    #[test]
    fn distinct_indices_are_sorted_first_occurrences() {
        assert_eq!(distinct_row_indices(&dup_table()), vec![0, 1, 3]);
    }

    #[test]
    fn empty_table_stays_empty() {
        let t = TableBuilder::new("t", &["a"]).build();
        assert_eq!(dedup_rows(&t).row_count(), 0);
    }
}
