//! PJ-plan execution: chain hash joins, project, deduplicate.
//!
//! This is the MATERIALIZE-VIEWS step of Algorithm 5. The executor keeps a
//! map from source table to its column offset inside the growing
//! intermediate, so join keys and projections written against original
//! [`ColumnRef`](ver_common::ids::ColumnRef)s resolve at any point of the chain.

use crate::dedup::dedup_rows;
use crate::join::hash_join;
use crate::plan::PjPlan;
use crate::project::project;
use crate::view::{Provenance, View};
use ver_common::error::{Result, VerError};
use ver_common::fxhash::FxHashMap;
use ver_common::ids::{TableId, ViewId};
use ver_store::catalog::TableCatalog;
use ver_store::table::Table;

/// Execute `plan` against `catalog`, producing a deduplicated view.
///
/// The returned view has `ViewId::default()`; the search stage assigns the
/// real id. `join_score` is carried into the provenance.
pub fn execute_plan(catalog: &TableCatalog, plan: &PjPlan, join_score: f64) -> Result<View> {
    plan.validate()?;

    let base = catalog.table(plan.base)?;
    let mut acc: Table = base.clone();
    // table id → offset of its first column in `acc`.
    let mut offsets: FxHashMap<TableId, usize> = FxHashMap::default();
    offsets.insert(plan.base, 0);

    for step in &plan.joins {
        let left_offset = *offsets.get(&step.left.table).ok_or_else(|| {
            VerError::JoinError(format!(
                "table {} missing from intermediate",
                step.left.table
            ))
        })?;
        let left_ordinal = left_offset + step.left.ordinal as usize;
        let right_table = catalog.table(step.right.table)?;
        let width_before = acc.column_count();
        acc = hash_join(&acc, left_ordinal, right_table, step.right.ordinal as usize)?;
        offsets.insert(step.right.table, width_before);
    }

    let ordinals: Vec<usize> = plan
        .projection
        .iter()
        .map(|p| {
            offsets
                .get(&p.table)
                .map(|off| off + p.ordinal as usize)
                .ok_or_else(|| {
                    VerError::JoinError(format!("projected table {} not in plan", p.table))
                })
        })
        .collect::<Result<_>>()?;

    let projected = project(&acc, &ordinals)?;
    let deduped = dedup_rows(&projected);

    Ok(View::new(
        ViewId::default(),
        deduped,
        Provenance {
            join_edges: plan.joins.iter().map(|j| (j.left, j.right)).collect(),
            source_tables: plan.tables(),
            projection: plan.projection.clone(),
            join_score,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinStep;
    use ver_common::ids::ColumnRef;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    fn cref(t: u32, o: u16) -> ColumnRef {
        ColumnRef {
            table: TableId(t),
            ordinal: o,
        }
    }

    /// airports(iata, state) ⋈ states(name, pop) ⋈ regions(state, region)
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in [("IND", "Indiana"), ("ATL", "Georgia"), ("SAV", "Georgia")] {
            b.push_row(vec![i.into(), s.into()]).unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("states", &["name", "pop"]);
        for (s, p) in [("Indiana", 6_800_000i64), ("Georgia", 10_700_000)] {
            b.push_row(vec![s.into(), Value::Int(p)]).unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("regions", &["state", "region"]);
        for (s, r) in [("Indiana", "Midwest"), ("Georgia", "South")] {
            b.push_row(vec![s.into(), r.into()]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    #[test]
    fn single_table_projection() {
        let cat = catalog();
        let plan = PjPlan::single(TableId(0), vec![cref(0, 0)]);
        let v = execute_plan(&cat, &plan, 1.0).unwrap();
        assert_eq!(v.row_count(), 3);
        assert_eq!(v.attribute_names(), vec!["iata"]);
    }

    #[test]
    fn two_hop_chain_joins_and_projects() {
        let cat = catalog();
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![
                JoinStep {
                    left: cref(0, 1),
                    right: cref(1, 0),
                },
                JoinStep {
                    left: cref(1, 0),
                    right: cref(2, 0),
                },
            ],
            projection: vec![cref(0, 0), cref(1, 1), cref(2, 1)],
        };
        let v = execute_plan(&cat, &plan, 0.5).unwrap();
        assert_eq!(v.row_count(), 3);
        assert_eq!(v.attribute_names(), vec!["iata", "pop", "region"]);
        assert_eq!(v.provenance.hops(), 2);
        assert_eq!(v.provenance.join_score, 0.5);
        // Georgia appears twice (ATL, SAV) with the same pop/region.
        let regions: Vec<String> = (0..v.row_count())
            .map(|r| v.table.cell(r, 2).unwrap().to_string())
            .collect();
        assert_eq!(regions.iter().filter(|r| *r == "South").count(), 2);
    }

    #[test]
    fn projection_dedups_row_sets() {
        // Project only state-level attributes: duplicates collapse.
        let cat = catalog();
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![JoinStep {
                left: cref(0, 1),
                right: cref(1, 0),
            }],
            projection: vec![cref(1, 0), cref(1, 1)],
        };
        let v = execute_plan(&cat, &plan, 1.0).unwrap();
        assert_eq!(
            v.row_count(),
            2,
            "ATL and SAV rows collapse after projection"
        );
    }

    #[test]
    fn star_plan_joins_both_arms_onto_base() {
        let cat = catalog();
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![
                JoinStep {
                    left: cref(0, 1),
                    right: cref(1, 0),
                },
                JoinStep {
                    left: cref(0, 1),
                    right: cref(2, 0),
                },
            ],
            projection: vec![cref(0, 0), cref(2, 1)],
        };
        let v = execute_plan(&cat, &plan, 1.0).unwrap();
        assert_eq!(v.row_count(), 3);
    }

    #[test]
    fn invalid_plan_is_rejected_before_execution() {
        let cat = catalog();
        let plan = PjPlan::single(TableId(0), vec![]);
        assert!(execute_plan(&cat, &plan, 1.0).is_err());
    }

    #[test]
    fn missing_table_errors() {
        let cat = catalog();
        let plan = PjPlan::single(TableId(42), vec![cref(42, 0)]);
        assert!(execute_plan(&cat, &plan, 1.0).is_err());
    }
}
