//! Hash equi-join between two tables.
//!
//! Builds a hash index over the smaller input's key column and probes with
//! the larger (classic build/probe), then gathers output columns
//! column-major to avoid per-row `Vec` allocations. Null keys never match
//! (SQL semantics) — in pathless collections nulls are pervasive and joining
//! on them would manufacture meaningless paths.

use ver_common::error::{Result, VerError};
use ver_common::fxhash::FxHashMap;
use ver_common::value::Value;
use ver_store::column::Column;
use ver_store::schema::TableSchema;
use ver_store::table::Table;

/// Inner equi-join of `left` and `right` on `left_key` / `right_key`
/// (column ordinals). Output schema = left columns followed by right
/// columns; output name is `left⋈right`.
pub fn hash_join(left: &Table, left_key: usize, right: &Table, right_key: usize) -> Result<Table> {
    let lcol = left
        .column(left_key)
        .ok_or_else(|| VerError::JoinError(format!("left key ordinal {left_key} out of range")))?;
    let rcol = right.column(right_key).ok_or_else(|| {
        VerError::JoinError(format!("right key ordinal {right_key} out of range"))
    })?;

    // Build on the smaller side, probe with the larger.
    let (matches_lr, swapped) = if left.row_count() <= right.row_count() {
        (probe(lcol, rcol), false)
    } else {
        (probe(rcol, lcol), true)
    };

    // Split the match list into two flat row-index arrays once, instead of
    // re-iterating and re-mapping the tuple vector for every gathered
    // column — gathering then reads a contiguous `&[u32]` per side.
    let n = matches_lr.len();
    let (mut lrows, mut rrows) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for (b, p) in matches_lr {
        let (l, r) = if swapped { (p, b) } else { (b, p) };
        lrows.push(l);
        rrows.push(r);
    }

    let mut columns = Vec::with_capacity(left.column_count() + right.column_count());
    for col in left.columns() {
        columns.push(gather(col, &lrows));
    }
    for col in right.columns() {
        columns.push(gather(col, &rrows));
    }

    let mut metas = left.schema.columns.clone();
    metas.extend(right.schema.columns.iter().cloned());
    let name = format!("{}⋈{}", left.name(), right.name());
    Table::new(TableSchema::new(name, metas), columns)
}

/// Build a hash index over `build` values, probe with `probe_col`.
/// Returns (build_row, probe_row) pairs.
fn probe(build: &Column, probe_col: &Column) -> Vec<(u32, u32)> {
    let mut index: FxHashMap<&Value, Vec<u32>> = FxHashMap::default();
    for (i, v) in build.values().iter().enumerate() {
        if !v.is_null() {
            index.entry(v).or_default().push(i as u32);
        }
    }
    let mut out = Vec::new();
    for (j, v) in probe_col.values().iter().enumerate() {
        if v.is_null() {
            continue;
        }
        if let Some(rows) = index.get(v) {
            for &i in rows {
                out.push((i, j as u32));
            }
        }
    }
    out
}

/// Gather `col[indices]` into a new column.
fn gather(col: &Column, indices: &[u32]) -> Column {
    let values = col.values();
    indices
        .iter()
        .map(|&i| values[i as usize].clone())
        .collect::<Column>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_store::table::TableBuilder;

    fn airports() -> Table {
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in [("IND", "Indiana"), ("ATL", "Georgia"), ("ORD", "Illinois")] {
            b.push_row(vec![i.into(), s.into()]).unwrap();
        }
        b.build()
    }

    fn states() -> Table {
        let mut b = TableBuilder::new("states", &["name", "pop"]);
        for (s, p) in [
            ("Indiana", 6_800_000i64),
            ("Georgia", 10_700_000),
            ("Texas", 29_000_000),
        ] {
            b.push_row(vec![s.into(), Value::Int(p)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn inner_join_matches_equal_keys() {
        let j = hash_join(&airports(), 1, &states(), 0).unwrap();
        assert_eq!(j.row_count(), 2); // ORD/Illinois and Texas unmatched
        assert_eq!(j.column_count(), 4);
        let row_states: Vec<String> = (0..j.row_count())
            .map(|r| j.cell(r, 1).unwrap().to_string())
            .collect();
        assert!(row_states.contains(&"Indiana".to_string()));
        assert!(row_states.contains(&"Georgia".to_string()));
    }

    #[test]
    fn join_name_and_schema_concatenate() {
        let j = hash_join(&airports(), 1, &states(), 0).unwrap();
        assert_eq!(j.name(), "airports⋈states");
        assert_eq!(j.schema.columns[0].display_name(0), "iata");
        assert_eq!(j.schema.columns[3].display_name(3), "pop");
    }

    #[test]
    fn null_keys_never_match() {
        let mut b = TableBuilder::new("l", &["k"]);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Int(1)]).unwrap();
        let l = b.build();
        let mut b = TableBuilder::new("r", &["k"]);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Int(1)]).unwrap();
        let r = b.build();
        let j = hash_join(&l, 0, &r, 0).unwrap();
        assert_eq!(j.row_count(), 1);
    }

    #[test]
    fn many_to_many_produces_cross_product_of_matches() {
        let mut b = TableBuilder::new("l", &["k", "x"]);
        b.push_row(vec![Value::Int(1), "a".into()]).unwrap();
        b.push_row(vec![Value::Int(1), "b".into()]).unwrap();
        let l = b.build();
        let mut b = TableBuilder::new("r", &["k", "y"]);
        b.push_row(vec![Value::Int(1), "p".into()]).unwrap();
        b.push_row(vec![Value::Int(1), "q".into()]).unwrap();
        b.push_row(vec![Value::Int(2), "z".into()]).unwrap();
        let r = b.build();
        let j = hash_join(&l, 0, &r, 0).unwrap();
        assert_eq!(j.row_count(), 4);
    }

    #[test]
    fn swapped_build_side_gives_same_result_set() {
        // right smaller than left → build side swaps internally.
        let big = states();
        let mut b = TableBuilder::new("small", &["name"]);
        b.push_row(vec!["Georgia".into()]).unwrap();
        let small = b.build();
        let j1 = hash_join(&big, 0, &small, 0).unwrap();
        assert_eq!(j1.row_count(), 1);
        assert_eq!(j1.cell(0, 0), Some(&Value::text("Georgia")));
        assert_eq!(j1.cell(0, 2), Some(&Value::text("Georgia")));
    }

    #[test]
    fn bad_ordinals_error() {
        assert!(hash_join(&airports(), 9, &states(), 0).is_err());
        assert!(hash_join(&airports(), 0, &states(), 9).is_err());
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let empty = TableBuilder::new("e", &["k"]).build();
        let j = hash_join(&empty, 0, &states(), 0).unwrap();
        assert_eq!(j.row_count(), 0);
        assert_eq!(j.column_count(), 3);
    }

    #[test]
    fn typed_keys_do_not_cross_match() {
        // Int(1) must not join Text("1").
        let mut b = TableBuilder::new("l", &["k"]);
        b.push_row(vec![Value::Int(1)]).unwrap();
        let l = b.build();
        let mut b = TableBuilder::new("r", &["k"]);
        b.push_row(vec![Value::text("1")]).unwrap();
        let r = b.build();
        assert_eq!(hash_join(&l, 0, &r, 0).unwrap().row_count(), 0);
    }
}
