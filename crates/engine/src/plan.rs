//! Project-join plans: a linearised join tree plus a projection list.
//!
//! A *join graph* from the discovery engine is a tree over tables whose
//! edges are inclusion-dependency column pairs. The search stage linearises
//! it into a [`PjPlan`]: a base table and a sequence of [`JoinStep`]s, each
//! attaching one new table to the partial result by an equi-join. The plan
//! validates its own shape (each step's left table already present, right
//! table new) before execution.

use serde::{Deserialize, Serialize};
use ver_common::error::{Result, VerError};
use ver_common::ids::{ColumnRef, TableId};

/// One join step: `left` is a column of a table already in the plan,
/// `right` a column of the newly attached table.
///
/// `Hash` because an oriented step doubles as a node key in the shared
/// sub-join DAG (`ver_search::materialize::MaterializePlanner`) and as part
/// of the plan-derived view-cache key (`ver_search::cache::ViewKey`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinStep {
    /// Join column on the accumulated side.
    pub left: ColumnRef,
    /// Join column on the newly attached table.
    pub right: ColumnRef,
}

/// A project-join plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PjPlan {
    /// The first table of the chain.
    pub base: TableId,
    /// Join steps in execution order.
    pub joins: Vec<JoinStep>,
    /// Output columns (qualified by original table).
    pub projection: Vec<ColumnRef>,
}

impl PjPlan {
    /// Single-table plan (projection only).
    pub fn single(base: TableId, projection: Vec<ColumnRef>) -> Self {
        PjPlan {
            base,
            joins: Vec::new(),
            projection,
        }
    }

    /// All tables touched by the plan, base first, in join order.
    pub fn tables(&self) -> Vec<TableId> {
        let mut out = Vec::with_capacity(1 + self.joins.len());
        out.push(self.base);
        out.extend(self.joins.iter().map(|j| j.right.table));
        out
    }

    /// Validate the chain shape:
    /// * every step's `left` table is already in the plan,
    /// * every step's `right` table is new (no self-joins / cycles),
    /// * every projected column's table is in the plan.
    pub fn validate(&self) -> Result<()> {
        let mut present = vec![self.base];
        for (i, step) in self.joins.iter().enumerate() {
            if !present.contains(&step.left.table) {
                return Err(VerError::JoinError(format!(
                    "step {i}: left table {} not yet joined",
                    step.left.table
                )));
            }
            if present.contains(&step.right.table) {
                return Err(VerError::JoinError(format!(
                    "step {i}: right table {} already in plan (cycles/self-joins unsupported)",
                    step.right.table
                )));
            }
            present.push(step.right.table);
        }
        if self.projection.is_empty() {
            return Err(VerError::InvalidQuery("empty projection".into()));
        }
        for p in &self.projection {
            if !present.contains(&p.table) {
                return Err(VerError::JoinError(format!(
                    "projected column {p} references a table outside the plan"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cref(t: u32, o: u16) -> ColumnRef {
        ColumnRef {
            table: TableId(t),
            ordinal: o,
        }
    }

    #[test]
    fn valid_chain_passes() {
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![
                JoinStep {
                    left: cref(0, 1),
                    right: cref(1, 0),
                },
                JoinStep {
                    left: cref(1, 2),
                    right: cref(2, 0),
                },
            ],
            projection: vec![cref(0, 0), cref(2, 1)],
        };
        assert!(plan.validate().is_ok());
        assert_eq!(plan.tables(), vec![TableId(0), TableId(1), TableId(2)]);
    }

    #[test]
    fn left_table_must_be_present() {
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![JoinStep {
                left: cref(5, 0),
                right: cref(1, 0),
            }],
            projection: vec![cref(0, 0)],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn right_table_must_be_new() {
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![JoinStep {
                left: cref(0, 0),
                right: cref(0, 1),
            }],
            projection: vec![cref(0, 0)],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn projection_tables_must_be_in_plan() {
        let plan = PjPlan::single(TableId(0), vec![cref(3, 0)]);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn empty_projection_rejected() {
        let plan = PjPlan::single(TableId(0), vec![]);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn bushy_tree_linearises() {
        // star: 1 and 2 both join onto 0.
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![
                JoinStep {
                    left: cref(0, 1),
                    right: cref(1, 0),
                },
                JoinStep {
                    left: cref(0, 2),
                    right: cref(2, 0),
                },
            ],
            projection: vec![cref(1, 1), cref(2, 1)],
        };
        assert!(plan.validate().is_ok());
    }
}
