//! Schema-aligned set union of tables.
//!
//! View distillation unions *complementary* views (same candidate key,
//! overlapping rows, neither contained nor compatible — Definition 8) into a
//! single larger view. The union requires identical schema signatures, which
//! is guaranteed inside a schema block.

use crate::dedup::dedup_rows;
use ver_common::error::{Result, VerError};
use ver_common::value::Value;
use ver_store::column::Column;
use ver_store::table::Table;

/// Set union of two tables with the same schema signature.
/// Output keeps `a`'s schema and name, rows deduplicated.
pub fn union_tables(a: &Table, b: &Table) -> Result<Table> {
    if a.schema.signature() != b.schema.signature() {
        return Err(VerError::InvalidData(format!(
            "cannot union '{}' with '{}': schema signatures differ",
            a.name(),
            b.name()
        )));
    }
    let columns: Vec<Column> = (0..a.column_count())
        .map(|c| {
            let mut values = Vec::with_capacity(a.row_count() + b.row_count());
            values.extend(a.column(c).expect("arity checked").values().iter().cloned());
            values.extend(
                b.column(c)
                    .expect("signature implies same arity")
                    .values()
                    .iter()
                    .cloned(),
            );
            Column::from_values(values)
        })
        .collect();
    let stacked = Table::new(a.schema.clone(), columns)?;
    Ok(dedup_rows(&stacked))
}

/// Set union of many tables (same schema signature). Errors on empty input.
pub fn union_all<'a>(tables: impl IntoIterator<Item = &'a Table>) -> Result<Table> {
    let mut iter = tables.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| VerError::InvalidData("union of zero tables".into()))?;
    let mut columns: Vec<Vec<Value>> = first
        .columns()
        .iter()
        .map(|c| c.values().to_vec())
        .collect();
    for t in iter {
        if t.schema.signature() != first.schema.signature() {
            return Err(VerError::InvalidData(format!(
                "cannot union '{}' with '{}': schema signatures differ",
                first.name(),
                t.name()
            )));
        }
        for (c, col) in columns.iter_mut().zip(t.columns()) {
            c.extend(col.values().iter().cloned());
        }
    }
    let stacked = Table::new(
        first.schema.clone(),
        columns.into_iter().map(Column::from_values).collect(),
    )?;
    Ok(dedup_rows(&stacked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_store::table::TableBuilder;

    fn t(name: &str, rows: &[i64]) -> Table {
        let mut b = TableBuilder::new(name, &["k", "v"]);
        for &r in rows {
            b.push_row(vec![Value::Int(r), Value::text(format!("v{r}"))])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn union_merges_and_dedups() {
        let u = union_tables(&t("a", &[1, 2]), &t("b", &[2, 3])).unwrap();
        assert_eq!(u.row_count(), 3);
        assert_eq!(u.name(), "a");
    }

    #[test]
    fn union_requires_same_signature() {
        let a = t("a", &[1]);
        let mut b = TableBuilder::new("b", &["k", "other"]);
        b.push_row(vec![Value::Int(1), "x".into()]).unwrap();
        assert!(union_tables(&a, &b.build()).is_err());
    }

    #[test]
    fn union_all_many() {
        let u = union_all([&t("a", &[1]), &t("b", &[2]), &t("c", &[1, 3])]).unwrap();
        assert_eq!(u.row_count(), 3);
    }

    #[test]
    fn union_all_empty_errors() {
        assert!(union_all(std::iter::empty::<&Table>()).is_err());
    }

    #[test]
    fn union_with_self_is_idempotent() {
        let a = t("a", &[1, 2, 3]);
        let u = union_tables(&a, &a).unwrap();
        assert_eq!(u.row_count(), 3);
    }
}
