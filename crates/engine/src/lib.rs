//! Relational materializer substrate for Ver.
//!
//! The paper's MATERIALIZER executes project-join (PJ) queries over noisy
//! tables (the authors used pandas and note it "could be optimized by using
//! a database"). This crate is that component, built from scratch:
//!
//! * [`join`] — hash equi-join between two tables.
//! * [`project`] — column projection.
//! * [`dedup`] — set-semantics row deduplication (candidate PJ-views are row
//!   *sets*; 4C categorisation in the paper compares views as sets of rows).
//! * [`union`] — schema-aligned union (used when distillation unions
//!   complementary views).
//! * [`rowhash`] — the row-wise hash function `H` of Algorithm 3.
//! * [`plan`] / [`exec`] — PJ plans (a join tree linearised into steps plus a
//!   projection list) and their executor, producing materialized [`View`]s.
//! * [`dag`] — the row-index join core behind shared sub-join execution:
//!   [`JoinState`] intermediates that many plans with a
//!   common prefix reuse, bit-identical to [`exec`]'s independent path.
//!
//! Layer 2 of the crate map in the repo-root `ARCHITECTURE.md`: the
//! relational executor under the MATERIALIZER and distillation.

pub mod dag;
pub mod dedup;
pub mod exec;
pub mod join;
pub mod plan;
pub mod project;
pub mod rowhash;
pub mod union;
pub mod view;

pub use dag::{
    execute_plan_shared, materialize_state, materialize_state_hashed, materialize_state_named,
    ColumnHashes, JoinState,
};
pub use exec::execute_plan;
pub use plan::{JoinStep, PjPlan};
pub use view::{Provenance, View};
