//! Row-index join states for shared sub-join execution.
//!
//! [`execute_plan`](crate::exec::execute_plan) materialises every candidate
//! independently: it clones the base table and gathers *all* columns of
//! every intermediate at every step. When thousands of candidate PJ-views
//! share join prefixes (the common case — Algorithm 5 enumerates
//! combinations over the same join paths), that repeats the identical hash
//! joins and value copies once per view.
//!
//! This module factors the executor into a value-free core: a [`JoinState`]
//! holds, for each joined table, a flat `Vec<u32>` of *source row indices*
//! — one entry per output row of the partial join. Executing a
//! [`JoinStep`] only touches the two key columns; no payload value is
//! cloned until a final projection gathers exactly the projected columns
//! ([`materialize_state`]). Because a state is a pure value, it can be
//! shared by every plan with the same oriented step prefix — the shared
//! sub-join DAG that `ver_search::materialize::MaterializePlanner` builds.
//!
//! **Bit-identity contract**: for any valid plan,
//! [`execute_plan_shared`] returns exactly what `execute_plan` returns —
//! same rows in the same order, same schema, same chained `a⋈b⋈c` view
//! name, same provenance. The row *order* is what makes this delicate:
//! downstream deduplication keeps first occurrences, and the golden
//! snapshots are byte-identical renders. Each step therefore replicates
//! [`hash_join`](crate::join::hash_join)'s observable semantics:
//!
//! * the hash index is built over the **smaller** side (accumulated rows
//!   vs. the attached table), probed with the larger;
//! * output rows are ordered probe-row-major, then by build-side insertion
//!   order within a key bucket;
//! * null keys never match;
//! * keys compare as typed [`Value`]s (`Int(1)` ≠ `Text("1")`).

use crate::plan::{JoinStep, PjPlan};
use crate::view::{Provenance, View};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use ver_common::error::{Result, VerError};
use ver_common::fxhash::{FxHashMap, FxHasher};
use ver_common::ids::{ColumnRef, TableId, ViewId};
use ver_common::value::Value;
use ver_store::catalog::TableCatalog;
use ver_store::column::Column;
use ver_store::schema::TableSchema;
use ver_store::table::Table;

/// Per-row 64-bit value hashes of a column (type-tagged, matching how
/// [`Value`] hashes in a hash-join index).
fn hash_values(vals: &[Value]) -> Vec<u64> {
    vals.iter()
        .map(|v| {
            let mut h = FxHasher::default();
            v.hash(&mut h);
            h.finish()
        })
        .collect()
}

/// Batch-scoped cache of per-column value-hash arrays.
///
/// Joining and deduplicating hash the same key and projection columns over
/// and over — once per DAG node and once per candidate. A batch executor
/// hashes each column **once** up front and shares the `Vec<u64>` across
/// every step and projection that touches it. Purely an optimisation:
/// hashes only pre-bucket candidates, every match is verified by typed
/// [`Value`] equality, so output is identical with or without the cache
/// (and identical for any hash function).
#[derive(Debug, Default)]
pub struct ColumnHashes {
    map: FxHashMap<(TableId, u16), Vec<u64>>,
}

impl ColumnHashes {
    /// Empty cache (columns fall back to on-the-fly hashing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hash `cref`'s column now if it resolves and isn't cached yet.
    /// Unresolvable refs are ignored — the executor surfaces the proper
    /// error when it actually touches the column.
    pub fn ensure(&mut self, catalog: &TableCatalog, cref: ColumnRef) {
        if self.map.contains_key(&(cref.table, cref.ordinal)) {
            return;
        }
        let Ok(table) = catalog.table(cref.table) else {
            return;
        };
        let Some(col) = table.column(cref.ordinal as usize) else {
            return;
        };
        self.map
            .insert((cref.table, cref.ordinal), hash_values(col.values()));
    }

    fn get(&self, cref: ColumnRef) -> Option<&[u64]> {
        self.map.get(&(cref.table, cref.ordinal)).map(Vec::as_slice)
    }
}

/// Sentinel for "no next entry" in the flat chains below.
const NONE: u32 = u32::MAX;

/// Spread a 64-bit key hash over a power-of-two slot table. The tables'
/// hashes end in a multiply, so the high bits carry the mixing; fold them
/// into the low bits the mask keeps.
#[inline]
fn slot_of(h: u64, mask: usize) -> usize {
    ((h ^ (h >> 32)) as usize) & mask
}

/// Epoch-stamped open-addressed slot table: `u32` payloads addressed by
/// 64-bit key hash, reusable across thousands of joins without clearing
/// (a slot is live only when its stamp equals the current epoch).
struct SlotTable {
    slots: Vec<u32>,
    stamps: Vec<u32>,
    epoch: u32,
    mask: usize,
}

impl SlotTable {
    fn new() -> Self {
        SlotTable {
            slots: Vec::new(),
            stamps: Vec::new(),
            epoch: 0,
            mask: 0,
        }
    }

    /// Begin a fresh use with room for `n` entries at ≤50% load.
    fn reset(&mut self, n: usize) {
        let cap = (n.max(1) * 2).next_power_of_two();
        if self.slots.len() < cap {
            self.slots = vec![0; cap];
            self.stamps = vec![0; cap];
            self.epoch = 1;
        } else {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                // Stamp wrap-around: old stamps could alias, so clear once.
                self.stamps.fill(0);
                self.epoch = 1;
            }
        }
        self.mask = self.slots.len() - 1;
    }

    /// Walk the probe sequence for `h`: returns `Ok(payload)` for the
    /// first live slot accepted by `matches`, or `Err(slot)` at the first
    /// free slot (where the caller may `fill`).
    #[inline]
    fn find(
        &self,
        h: u64,
        mut matches: impl FnMut(u32) -> bool,
    ) -> std::result::Result<u32, usize> {
        let mut s = slot_of(h, self.mask);
        loop {
            if self.stamps[s] != self.epoch {
                return Err(s);
            }
            let payload = self.slots[s];
            if matches(payload) {
                return Ok(payload);
            }
            s = (s + 1) & self.mask;
        }
    }

    #[inline]
    fn fill(&mut self, slot: usize, payload: u32) {
        self.stamps[slot] = self.epoch;
        self.slots[slot] = payload;
    }
}

/// Hash-join build index: key hash → groups of build rows with equal key
/// values, stored as flat chain arenas over an open-addressed slot table
/// (no per-key allocations, no per-op rehashing).
///
/// A group's `head` is a *source* row whose value stands in for the
/// group's key; distinct values colliding on one 64-bit hash live in
/// separate groups on a per-hash chain, so probes match exactly the rows
/// an equal-key join matches. Rows inside a group chain in insertion
/// order — [`hash_join`](crate::join::hash_join)'s within-bucket order.
struct GroupIndex {
    /// Key hash → first group id with that hash.
    table: SlotTable,
    groups: Vec<Group>,
    /// Row chain arena: `(build row payload, next chain slot)`.
    chain: Vec<(u32, u32)>,
}

struct Group {
    /// The group's full key hash (distinguishes probe-sequence neighbours).
    hash: u64,
    /// Build-side *source* row representing the group's key value.
    head: u32,
    /// First and last slot of the group's row chain.
    first: u32,
    last: u32,
    /// Next group with the same hash (true collision), or [`NONE`].
    next: u32,
}

impl GroupIndex {
    fn empty() -> Self {
        GroupIndex {
            table: SlotTable::new(),
            groups: Vec::new(),
            chain: Vec::new(),
        }
    }

    /// Clear for reuse with room for `n_build` rows, keeping allocated
    /// capacity (the whole point of the thread-local scratch: a handful of
    /// allocations amortised over thousands of joins).
    fn reset(&mut self, n_build: usize) {
        self.table.reset(n_build);
        self.groups.clear();
        self.chain.clear();
    }

    /// Append build `row` under key hash `h`; `head` is its source row and
    /// `same_key(g.head)` decides whether an existing group shares the key.
    fn insert(&mut self, h: u64, head: u32, row: u32, mut same_key: impl FnMut(u32) -> bool) {
        let slot = self.chain.len() as u32;
        self.chain.push((row, NONE));
        let groups = &mut self.groups;
        match self.table.find(h, |gid| groups[gid as usize].hash == h) {
            Err(free) => {
                self.table.fill(free, groups.len() as u32);
                groups.push(Group {
                    hash: h,
                    head,
                    first: slot,
                    last: slot,
                    next: NONE,
                });
            }
            Ok(gid) => {
                let mut gid = gid as usize;
                loop {
                    if same_key(groups[gid].head) {
                        let tail = groups[gid].last as usize;
                        self.chain[tail].1 = slot;
                        groups[gid].last = slot;
                        return;
                    }
                    if groups[gid].next == NONE {
                        break;
                    }
                    gid = groups[gid].next as usize;
                }
                // Distinct key on the same hash: new group on the chain
                // (it shares the first group's table slot).
                let ng = groups.len() as u32;
                groups[gid].next = ng;
                groups.push(Group {
                    hash: h,
                    head,
                    first: slot,
                    last: slot,
                    next: NONE,
                });
            }
        }
    }

    /// Visit every build row whose key equals the probe's (per `same_key`
    /// against group heads), in insertion order.
    fn for_each_match(
        &self,
        h: u64,
        mut same_key: impl FnMut(u32) -> bool,
        mut emit: impl FnMut(u32),
    ) {
        let groups = &self.groups;
        let Ok(gid) = self.table.find(h, |gid| groups[gid as usize].hash == h) else {
            return;
        };
        let mut gid = gid as usize;
        loop {
            let g = &groups[gid];
            if same_key(g.head) {
                let mut slot = g.first as usize;
                loop {
                    let (row, next) = self.chain[slot];
                    emit(row);
                    if next == NONE {
                        return;
                    }
                    slot = next as usize;
                }
            }
            if g.next == NONE {
                return;
            }
            gid = g.next as usize;
        }
    }
}

thread_local! {
    /// Per-thread hash-join scratch, reused across every step a worker
    /// executes: the build index plus the (accumulated row, right row)
    /// match-pair buffers. Purely scratch: reset before each use.
    #[allow(clippy::type_complexity)]
    static JOIN_SCRATCH: std::cell::RefCell<(GroupIndex, Vec<u32>, Vec<u32>)> =
        std::cell::RefCell::new((GroupIndex::empty(), Vec::new(), Vec::new()));
    /// Per-thread dedup scratch for [`materialize_state_hashed`]:
    /// `(row hashes, hash → arena head slot table, (kept row, next) chain
    /// arena, kept row list)`.
    #[allow(clippy::type_complexity)]
    static DEDUP_SCRATCH: std::cell::RefCell<(
        Vec<u64>,
        SlotTable,
        Vec<(u32, u32)>,
        Vec<u32>,
    )> = std::cell::RefCell::new((Vec::new(), SlotTable::new(), Vec::new(), Vec::new()));
}

/// A partial join result as row indices into the source tables.
///
/// `row_col(t)[i]` is the source row (in table `tables()[t]`) backing
/// output row `i`. Storage is one flat table-major `Vec<u32>` of
/// `tables.len() × len` entries — a single allocation per state, which
/// matters when a batch executes tens of thousands of them. The base
/// state is the identity mapping over the base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinState {
    tables: Vec<TableId>,
    /// Output row count.
    n: usize,
    /// Table-major: `rows[t*n..(t+1)*n]` is table `t`'s row-index column.
    rows: Vec<u32>,
}

impl JoinState {
    /// Identity state over `base`: one output row per source row.
    pub fn base(catalog: &TableCatalog, base: TableId) -> Result<JoinState> {
        let table = catalog.table(base)?;
        let n = table.row_count();
        Ok(JoinState {
            tables: vec![base],
            n,
            rows: (0..n as u32).collect(),
        })
    }

    /// Number of rows in the partial join.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Table `t`'s row-index column (`t` indexes into [`JoinState::tables`]).
    fn row_col(&self, t: usize) -> &[u32] {
        &self.rows[t * self.n..(t + 1) * self.n]
    }

    /// True when the partial join matched nothing — every downstream step
    /// and projection of this prefix is empty too, so executors can prune.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tables joined so far, base first, in join order.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// The chained `base⋈t1⋈t2` view name this state materialises under —
    /// shared by every candidate projecting the same state, so batch
    /// executors build it once per distinct leaf.
    pub fn joined_name(&self, catalog: &TableCatalog) -> Result<Arc<str>> {
        let mut name = String::new();
        for (i, &t) in self.tables.iter().enumerate() {
            if i > 0 {
                name.push('⋈');
            }
            name.push_str(catalog.table(t)?.name());
        }
        Ok(name.into())
    }

    /// Execute one join step, attaching `step.right.table`.
    ///
    /// Mirrors [`hash_join`](crate::join::hash_join) exactly (build side,
    /// match order, null and type semantics) — see the module docs. An
    /// empty state short-circuits: the child is empty without probing.
    pub fn step(&self, catalog: &TableCatalog, step: JoinStep) -> Result<JoinState> {
        self.step_hashed(catalog, step, &ColumnHashes::new())
    }

    /// [`JoinState::step`] with a batch-scoped [`ColumnHashes`] cache —
    /// key columns present in the cache skip re-hashing. Output is
    /// identical to [`JoinState::step`] for any cache contents.
    pub fn step_hashed(
        &self,
        catalog: &TableCatalog,
        step: JoinStep,
        hashes: &ColumnHashes,
    ) -> Result<JoinState> {
        let li = self
            .tables
            .iter()
            .position(|&t| t == step.left.table)
            .ok_or_else(|| {
                VerError::JoinError(format!(
                    "table {} missing from intermediate",
                    step.left.table
                ))
            })?;
        if self.tables.contains(&step.right.table) {
            return Err(VerError::JoinError(format!(
                "table {} already in intermediate (cycles/self-joins unsupported)",
                step.right.table
            )));
        }
        let left_table = catalog.table(step.left.table)?;
        let lcol = left_table
            .column(step.left.ordinal as usize)
            .ok_or_else(|| {
                VerError::JoinError(format!(
                    "left key ordinal {} out of range",
                    step.left.ordinal
                ))
            })?;
        let right_table = catalog.table(step.right.table)?;
        let rcol = right_table
            .column(step.right.ordinal as usize)
            .ok_or_else(|| {
                VerError::JoinError(format!(
                    "right key ordinal {} out of range",
                    step.right.ordinal
                ))
            })?;

        let lrows = self.row_col(li);
        let lvals = lcol.values();
        let rvals = rcol.values();
        // Per-row key hashes: shared from the batch cache when present,
        // computed locally otherwise. Hashes only pre-bucket; every match
        // below is verified by typed Value equality, so the output never
        // depends on the hash function (or on collisions).
        let lh_local;
        let lh: &[u64] = match hashes.get(step.left) {
            Some(h) => h,
            None => {
                lh_local = hash_values(lvals);
                &lh_local
            }
        };
        let rh_local;
        let rh: &[u64] = match hashes.get(step.right) {
            Some(h) => h,
            None => {
                rh_local = hash_values(rvals);
                &rh_local
            }
        };

        // Match pairs (accumulated output row, right source row), ordered
        // exactly as hash_join orders them, collected into thread-local
        // scratch (contents never cross joins, only capacity does) and then
        // gathered into the child state's flat row storage.
        let mut tables = self.tables.clone();
        tables.push(step.right.table);
        if self.is_empty() {
            return Ok(JoinState {
                tables,
                n: 0,
                rows: Vec::new(),
            });
        }
        JOIN_SCRATCH.with(|scratch| {
            let (index, acc, right) = &mut *scratch.borrow_mut();
            index.reset(self.len().min(right_table.row_count()));
            acc.clear();
            right.clear();
            if self.len() <= right_table.row_count() {
                // Build over the accumulated side (insertion order =
                // output row order), probe the attached table ascending.
                for (i, &src) in lrows.iter().enumerate() {
                    let v = &lvals[src as usize];
                    if v.is_null() {
                        continue;
                    }
                    index.insert(lh[src as usize], src, i as u32, |head| {
                        &lvals[head as usize] == v
                    });
                }
                for (j, v) in rvals.iter().enumerate() {
                    if v.is_null() {
                        continue;
                    }
                    index.for_each_match(
                        rh[j],
                        |head| &lvals[head as usize] == v,
                        |i| {
                            acc.push(i);
                            right.push(j as u32);
                        },
                    );
                }
            } else {
                // Attached table is smaller: build over it, probe the
                // accumulated rows ascending.
                for (j, v) in rvals.iter().enumerate() {
                    if v.is_null() {
                        continue;
                    }
                    index.insert(rh[j], j as u32, j as u32, |head| &rvals[head as usize] == v);
                }
                for (i, &src) in lrows.iter().enumerate() {
                    let v = &lvals[src as usize];
                    if v.is_null() {
                        continue;
                    }
                    index.for_each_match(
                        lh[src as usize],
                        |head| &rvals[head as usize] == v,
                        |j| {
                            acc.push(i as u32);
                            right.push(j);
                        },
                    );
                }
            }

            let m = acc.len();
            let nt = self.tables.len();
            let mut rows: Vec<u32> = Vec::with_capacity((nt + 1) * m);
            for t in 0..nt {
                let col = self.row_col(t);
                rows.extend(acc.iter().map(|&i| col[i as usize]));
            }
            rows.extend_from_slice(right);
            Ok(JoinState { tables, n: m, rows })
        })
    }
}

/// Gather the projected columns out of a finished [`JoinState`] and wrap
/// them as a [`View`] — the value-materialising tail of plan execution.
///
/// Produces exactly what [`execute_plan`](crate::exec::execute_plan) would
/// for the same plan: the chained `base⋈t1⋈t2` table name, the source
/// tables' column metadata, stable first-occurrence deduplication, and the
/// same [`Provenance`]. The returned view has `ViewId::default()`.
pub fn materialize_state(
    catalog: &TableCatalog,
    state: &JoinState,
    plan: &PjPlan,
    join_score: f64,
) -> Result<View> {
    materialize_state_hashed(catalog, state, plan, join_score, &ColumnHashes::new())
}

/// [`materialize_state`] with a batch-scoped [`ColumnHashes`] cache —
/// projected columns present in the cache skip re-hashing during
/// deduplication. Output is identical for any cache contents.
///
/// Deduplication happens *before* gathering: rows are bucketed by a
/// combined hash of their source-cell hashes and verified by typed
/// [`Value`] equality through the row indices, so only the surviving rows
/// are ever cloned out of the source columns. This keeps first
/// occurrences in row order — exactly what
/// [`dedup_rows`](crate::dedup::dedup_rows) does after a full gather.
pub fn materialize_state_hashed(
    catalog: &TableCatalog,
    state: &JoinState,
    plan: &PjPlan,
    join_score: f64,
    hashes: &ColumnHashes,
) -> Result<View> {
    materialize_state_named(
        catalog,
        state,
        plan,
        join_score,
        hashes,
        state.joined_name(catalog)?,
    )
}

/// [`materialize_state_hashed`] with the view name supplied by the caller.
///
/// `name` must equal [`JoinState::joined_name`] for `state` — batch
/// executors build it once per distinct DAG leaf and hand every candidate
/// over that leaf the same `Arc<str>`, instead of re-chaining table names
/// per candidate.
pub fn materialize_state_named(
    catalog: &TableCatalog,
    state: &JoinState,
    plan: &PjPlan,
    join_score: f64,
    hashes: &ColumnHashes,
    name: Arc<str>,
) -> Result<View> {
    // Resolve each projected column once (source values + the state's
    // row-index column for its table), folding its per-row value hashes
    // into the combined row hash as it is resolved — column-outer for
    // locality, and no per-candidate hash-slice bookkeeping. The mix only
    // pre-buckets — duplicates are confirmed by value equality — so its
    // exact form never affects output. Columns absent from the batch cache
    // hash locally.
    let n_rows = if plan.projection.is_empty() {
        0
    } else {
        state.len()
    };
    let mut metas = Vec::with_capacity(plan.projection.len());
    let mut cols: Vec<(&[Value], &[u32])> = Vec::with_capacity(plan.projection.len());
    let columns: Vec<Column> = DEDUP_SCRATCH.with(|scratch| -> Result<Vec<Column>> {
        let (rowh, slots, arena, keep) = &mut *scratch.borrow_mut();
        rowh.clear();
        rowh.resize(n_rows, 0);
        for p in &plan.projection {
            let ti = state
                .tables()
                .iter()
                .position(|&t| t == p.table)
                .ok_or_else(|| {
                    VerError::JoinError(format!("projected table {} not in plan", p.table))
                })?;
            let table = catalog.table(p.table)?;
            let col = table.column(p.ordinal as usize).ok_or_else(|| {
                VerError::InvalidQuery(format!(
                    "projection ordinal {} out of range for '{}' (arity {})",
                    p.ordinal,
                    table.name(),
                    table.column_count()
                ))
            })?;
            metas.push(table.schema.columns[p.ordinal as usize].clone());
            let vals = col.values();
            let idx = state.row_col(ti);
            let local;
            let ch: &[u64] = match hashes.get(*p) {
                Some(h) => h,
                None => {
                    local = hash_values(vals);
                    &local
                }
            };
            for (h, &src) in rowh.iter_mut().zip(idx.iter()) {
                *h = (h.rotate_left(5) ^ ch[src as usize]).wrapping_mul(0x517c_c1b7_2722_0a95);
            }
            cols.push((vals, idx));
        }

        // Keep-first dedup over row indices, then gather only survivors.
        // Kept rows sharing a hash chain through a flat arena (true 64-bit
        // collisions are rare, so chains are almost always length 1); a
        // new row is a duplicate iff it value-equals some kept row on its
        // chain.
        let rows_equal = |a: usize, b: usize| {
            cols.iter()
                .all(|(vals, idx)| vals[idx[a] as usize] == vals[idx[b] as usize])
        };
        slots.reset(n_rows);
        arena.clear();
        keep.clear();
        'rows: for (r, &h) in rowh.iter().enumerate() {
            match slots.find(h, |ai| rowh[arena[ai as usize].0 as usize] == h) {
                Err(free) => {
                    slots.fill(free, arena.len() as u32);
                }
                Ok(ai) => {
                    let mut ai = ai as usize;
                    loop {
                        let (prev, next) = arena[ai];
                        if rows_equal(prev as usize, r) {
                            continue 'rows;
                        }
                        if next == NONE {
                            break;
                        }
                        ai = next as usize;
                    }
                    arena[ai].1 = arena.len() as u32;
                }
            }
            arena.push((r as u32, NONE));
            keep.push(r as u32);
        }

        Ok(cols
            .iter()
            .map(|(vals, idx)| {
                keep.iter()
                    .map(|&r| vals[idx[r as usize] as usize].clone())
                    .collect::<Column>()
            })
            .collect())
    })?;
    let projected = Table::new(TableSchema::new(name, metas), columns)?;
    Ok(View::new(
        ViewId::default(),
        projected,
        Provenance {
            join_edges: plan.joins.iter().map(|j| (j.left, j.right)).collect(),
            source_tables: plan.tables(),
            projection: plan.projection.clone(),
            join_score,
        },
    ))
}

/// Execute `plan` through the row-index core: validate, fold the steps
/// into a [`JoinState`], then project. Single-plan convenience over the
/// same kernel the shared sub-join DAG runs — output is bit-identical to
/// [`execute_plan`](crate::exec::execute_plan).
pub fn execute_plan_shared(catalog: &TableCatalog, plan: &PjPlan, join_score: f64) -> Result<View> {
    plan.validate()?;
    let mut state = JoinState::base(catalog, plan.base)?;
    for step in &plan.joins {
        state = state.step(catalog, *step)?;
    }
    materialize_state(catalog, &state, plan, join_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_plan;
    use ver_common::ids::ColumnRef;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    fn cref(t: u32, o: u16) -> ColumnRef {
        ColumnRef {
            table: TableId(t),
            ordinal: o,
        }
    }

    /// Skewed many-to-many catalog: row order and build-side selection both
    /// matter. airports (6 rows) ⋈ states (2 rows) ⋈ regions (8 rows).
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in [
            ("IND", "Indiana"),
            ("ATL", "Georgia"),
            ("SAV", "Georgia"),
            ("GRY", "Indiana"),
            ("XNA", "Arkansas"),
            ("MCN", "Georgia"),
        ] {
            b.push_row(vec![i.into(), s.into()]).unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("states", &["name", "pop"]);
        for (s, p) in [("Indiana", 6_800_000i64), ("Georgia", 10_700_000)] {
            b.push_row(vec![s.into(), Value::Int(p)]).unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("regions", &["state", "region"]);
        for (s, r) in [
            ("Indiana", "Midwest"),
            ("Georgia", "South"),
            ("Georgia", "Southeast"),
            ("Texas", "South"),
            ("Indiana", "Rust Belt"),
            ("Arkansas", "South"),
            ("Georgia", "Atlantic"),
            ("Indiana", "Central"),
        ] {
            b.push_row(vec![s.into(), r.into()]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn chain_plan() -> PjPlan {
        PjPlan {
            base: TableId(0),
            joins: vec![
                JoinStep {
                    left: cref(0, 1),
                    right: cref(1, 0),
                },
                JoinStep {
                    left: cref(1, 0),
                    right: cref(2, 0),
                },
            ],
            projection: vec![cref(0, 0), cref(1, 1), cref(2, 1)],
        }
    }

    /// The contract everything above relies on: the shared-kernel executor
    /// reproduces `execute_plan` *including row order* (Table is PartialEq
    /// over schema and cell values in order).
    #[test]
    fn shared_execution_is_bit_identical_to_execute_plan() {
        let cat = catalog();
        let plans = [
            PjPlan::single(TableId(0), vec![cref(0, 1), cref(0, 0)]),
            PjPlan {
                base: TableId(0),
                joins: vec![JoinStep {
                    left: cref(0, 1),
                    right: cref(1, 0),
                }],
                projection: vec![cref(0, 0), cref(1, 1)],
            },
            chain_plan(),
            // Star: both arms off the base; projection reordered + repeated.
            PjPlan {
                base: TableId(0),
                joins: vec![
                    JoinStep {
                        left: cref(0, 1),
                        right: cref(1, 0),
                    },
                    JoinStep {
                        left: cref(0, 1),
                        right: cref(2, 0),
                    },
                ],
                projection: vec![cref(2, 1), cref(0, 0), cref(2, 1)],
            },
            // Projection collapsing to few distinct rows exercises dedup
            // order sensitivity.
            PjPlan {
                base: TableId(0),
                joins: vec![JoinStep {
                    left: cref(0, 1),
                    right: cref(2, 0),
                }],
                projection: vec![cref(2, 1)],
            },
        ];
        for (i, plan) in plans.iter().enumerate() {
            let a = execute_plan(&cat, plan, 0.7).unwrap();
            let b = execute_plan_shared(&cat, plan, 0.7).unwrap();
            assert_eq!(a.table, b.table, "plan {i}: tables differ");
            assert_eq!(a.provenance, b.provenance, "plan {i}: provenance differs");
            assert_eq!(a.table.name(), b.table.name(), "plan {i}: name differs");
        }
    }

    #[test]
    fn build_side_swap_still_matches_reference() {
        // Base smaller than attached table AND base larger than attached
        // table, same data — both sides of hash_join's build-side pivot.
        let cat = catalog();
        let small_base = PjPlan {
            base: TableId(1), // 2 rows, attaches 8-row regions
            joins: vec![JoinStep {
                left: cref(1, 0),
                right: cref(2, 0),
            }],
            projection: vec![cref(1, 1), cref(2, 1)],
        };
        let large_base = PjPlan {
            base: TableId(2), // 8 rows, attaches 2-row states
            joins: vec![JoinStep {
                left: cref(2, 0),
                right: cref(1, 0),
            }],
            projection: vec![cref(2, 1), cref(1, 1)],
        };
        for plan in [&small_base, &large_base] {
            let a = execute_plan(&cat, plan, 1.0).unwrap();
            let b = execute_plan_shared(&cat, plan, 1.0).unwrap();
            assert_eq!(a.table, b.table);
        }
    }

    #[test]
    fn null_and_typed_keys_match_reference() {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("l", &["k", "x"]);
        b.push_row(vec![Value::Null, "a".into()]).unwrap();
        b.push_row(vec![Value::Int(1), "b".into()]).unwrap();
        b.push_row(vec![Value::text("1"), "c".into()]).unwrap();
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("r", &["k", "y"]);
        b.push_row(vec![Value::Int(1), "p".into()]).unwrap();
        b.push_row(vec![Value::Null, "q".into()]).unwrap();
        cat.add_table(b.build()).unwrap();
        let plan = PjPlan {
            base: TableId(0),
            joins: vec![JoinStep {
                left: cref(0, 0),
                right: cref(1, 0),
            }],
            projection: vec![cref(0, 1), cref(1, 1)],
        };
        let a = execute_plan(&cat, &plan, 1.0).unwrap();
        let b = execute_plan_shared(&cat, &plan, 1.0).unwrap();
        assert_eq!(a.table, b.table);
        assert_eq!(a.row_count(), 1, "only Int(1) keys join");
    }

    #[test]
    fn states_share_across_prefixes() {
        // Two plans sharing the one-hop prefix: computing the prefix once
        // and branching reproduces both independent executions.
        let cat = catalog();
        let prefix = JoinState::base(&cat, TableId(0))
            .unwrap()
            .step(
                &cat,
                JoinStep {
                    left: cref(0, 1),
                    right: cref(1, 0),
                },
            )
            .unwrap();
        assert_eq!(prefix.tables(), &[TableId(0), TableId(1)]);

        let plan_a = PjPlan {
            base: TableId(0),
            joins: vec![JoinStep {
                left: cref(0, 1),
                right: cref(1, 0),
            }],
            projection: vec![cref(0, 0), cref(1, 1)],
        };
        let via_shared = materialize_state(&cat, &prefix, &plan_a, 0.5).unwrap();
        let independent = execute_plan(&cat, &plan_a, 0.5).unwrap();
        assert_eq!(via_shared.table, independent.table);

        let plan_b = chain_plan();
        let extended = prefix.step(&cat, plan_b.joins[1]).unwrap();
        let via_shared = materialize_state(&cat, &extended, &plan_b, 0.5).unwrap();
        let independent = execute_plan(&cat, &plan_b, 0.5).unwrap();
        assert_eq!(via_shared.table, independent.table);
    }

    #[test]
    fn empty_prefix_short_circuits_and_stays_identical() {
        let mut cat = catalog();
        let mut b = TableBuilder::new("nomatch", &["state"]);
        b.push_row(vec!["Nowhere".into()]).unwrap();
        cat.add_table(b.build()).unwrap();
        let plan = PjPlan {
            base: TableId(3),
            joins: vec![
                JoinStep {
                    left: cref(3, 0),
                    right: cref(1, 0),
                },
                JoinStep {
                    left: cref(1, 0),
                    right: cref(2, 0),
                },
            ],
            projection: vec![cref(3, 0), cref(2, 1)],
        };
        let state = JoinState::base(&cat, TableId(3))
            .unwrap()
            .step(&cat, plan.joins[0])
            .unwrap();
        assert!(state.is_empty());
        let tail = state.step(&cat, plan.joins[1]).unwrap();
        assert!(tail.is_empty());
        let a = execute_plan(&cat, &plan, 1.0).unwrap();
        let b = execute_plan_shared(&cat, &plan, 1.0).unwrap();
        assert_eq!(a.table, b.table);
        assert_eq!(a.row_count(), 0);
    }

    #[test]
    fn step_errors_on_missing_or_duplicate_tables() {
        let cat = catalog();
        let base = JoinState::base(&cat, TableId(0)).unwrap();
        // Left table not in the intermediate.
        assert!(base
            .step(
                &cat,
                JoinStep {
                    left: cref(1, 0),
                    right: cref(2, 0),
                },
            )
            .is_err());
        // Right table already present.
        assert!(base
            .step(
                &cat,
                JoinStep {
                    left: cref(0, 1),
                    right: cref(0, 0),
                },
            )
            .is_err());
        // Key ordinal out of range.
        assert!(base
            .step(
                &cat,
                JoinStep {
                    left: cref(0, 9),
                    right: cref(1, 0),
                },
            )
            .is_err());
        // Unknown base table.
        assert!(JoinState::base(&cat, TableId(42)).is_err());
    }
}
