//! Materialized candidate PJ-views with provenance.

use crate::rowhash::table_hash_set;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashSet;
use ver_common::ids::{ColumnRef, TableId, ViewId};
use ver_store::table::Table;

/// How a view was produced: the join edges of its join graph, the source
/// tables, the projected columns, and the discovery engine's join score.
///
/// Provenance powers the paper's "Insights" analyses (e.g. ChEMBL
/// contradictions arise from views joined via different keys) and the
/// dataset-pair question interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Provenance {
    /// Join edges `(left column, right column)` in execution order.
    pub join_edges: Vec<(ColumnRef, ColumnRef)>,
    /// All source tables (base table first).
    pub source_tables: Vec<TableId>,
    /// Projected columns, qualified by their original tables.
    pub projection: Vec<ColumnRef>,
    /// Join-score assigned by the discovery engine (higher = better).
    pub join_score: f64,
}

impl Provenance {
    /// Number of join hops (edges) in the join graph.
    pub fn hops(&self) -> usize {
        self.join_edges.len()
    }
}

/// A materialized candidate PJ-view: deduplicated rows plus provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct View {
    /// Identifier assigned by the search stage.
    pub id: ViewId,
    /// The materialized, deduplicated data.
    pub table: Table,
    /// How the view was built.
    pub provenance: Provenance,
}

impl View {
    /// Wrap a table as a view.
    pub fn new(id: ViewId, table: Table, provenance: Provenance) -> Self {
        View {
            id,
            table,
            provenance,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Schema signature (used for SCHEMA-BASED-BLOCKS).
    pub fn schema_signature(&self) -> String {
        self.table.schema.signature()
    }

    /// Row-hash set `H(V)` (Algorithm 3).
    pub fn hash_set(&self) -> FxHashSet<u64> {
        table_hash_set(&self.table)
    }

    /// Display names of the view's attributes.
    pub fn attribute_names(&self) -> Vec<String> {
        self.table
            .schema
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| c.display_name(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    fn view() -> View {
        let mut b = TableBuilder::new("v", &["state", "pop"]);
        b.push_row(vec!["Indiana".into(), Value::Int(1)]).unwrap();
        b.push_row(vec!["Georgia".into(), Value::Int(2)]).unwrap();
        View::new(
            ViewId(7),
            b.build(),
            Provenance {
                join_edges: vec![(
                    ColumnRef {
                        table: TableId(0),
                        ordinal: 1,
                    },
                    ColumnRef {
                        table: TableId(1),
                        ordinal: 0,
                    },
                )],
                source_tables: vec![TableId(0), TableId(1)],
                projection: vec![
                    ColumnRef {
                        table: TableId(0),
                        ordinal: 1,
                    },
                    ColumnRef {
                        table: TableId(1),
                        ordinal: 1,
                    },
                ],
                join_score: 0.9,
            },
        )
    }

    #[test]
    fn accessors() {
        let v = view();
        assert_eq!(v.id, ViewId(7));
        assert_eq!(v.row_count(), 2);
        assert_eq!(v.provenance.hops(), 1);
        assert_eq!(v.attribute_names(), vec!["state", "pop"]);
    }

    #[test]
    fn hash_set_matches_row_count_when_distinct() {
        let v = view();
        assert_eq!(v.hash_set().len(), 2);
    }

    #[test]
    fn signature_matches_same_schema() {
        let a = view();
        let b = view();
        assert_eq!(a.schema_signature(), b.schema_signature());
    }
}
