//! Materialized candidate PJ-views with provenance.

use crate::rowhash::table_hash_set;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashSet;
use ver_common::ids::{ColumnRef, TableId, ViewId};
use ver_store::table::Table;

/// How a view was produced: the join edges of its join graph, the source
/// tables, the projected columns, and the discovery engine's join score.
///
/// Provenance powers the paper's "Insights" analyses (e.g. ChEMBL
/// contradictions arise from views joined via different keys) and the
/// dataset-pair question interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Provenance {
    /// Join edges `(left column, right column)` in execution order.
    pub join_edges: Vec<(ColumnRef, ColumnRef)>,
    /// All source tables (base table first).
    pub source_tables: Vec<TableId>,
    /// Projected columns, qualified by their original tables.
    pub projection: Vec<ColumnRef>,
    /// Join-score assigned by the discovery engine (higher = better).
    pub join_score: f64,
}

impl Provenance {
    /// Number of join hops (edges) in the join graph.
    pub fn hops(&self) -> usize {
        self.join_edges.len()
    }
}

/// A materialized candidate PJ-view: deduplicated rows plus provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct View {
    /// Identifier assigned by the search stage.
    pub id: ViewId,
    /// The materialized, deduplicated data.
    pub table: Table,
    /// How the view was built.
    pub provenance: Provenance,
}

impl View {
    /// Wrap a table as a view.
    pub fn new(id: ViewId, table: Table, provenance: Provenance) -> Self {
        View {
            id,
            table,
            provenance,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Schema signature (used for SCHEMA-BASED-BLOCKS).
    pub fn schema_signature(&self) -> String {
        self.table.schema.signature()
    }

    /// Row-hash set `H(V)` (Algorithm 3).
    pub fn hash_set(&self) -> FxHashSet<u64> {
        table_hash_set(&self.table)
    }

    /// Sorted multiset of row hashes — an order-insensitive but
    /// duplicate-sensitive content fingerprint.
    pub fn row_hash_multiset(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> = (0..self.table.row_count())
            .map(|r| crate::rowhash::hash_table_row(&self.table, r))
            .collect();
        hashes.sort_unstable();
        hashes
    }

    /// Strict equality for determinism tests: same id, same schema, same
    /// provenance, and the same rows (as a multiset — views are
    /// deduplicated, but this does not assume it).
    pub fn same_contents(&self, other: &View) -> bool {
        self.id == other.id
            && self.schema_signature() == other.schema_signature()
            && self.attribute_names() == other.attribute_names()
            && self.provenance == other.provenance
            && self.row_hash_multiset() == other.row_hash_multiset()
    }

    /// Display names of the view's attributes.
    pub fn attribute_names(&self) -> Vec<String> {
        self.table
            .schema
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| c.display_name(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    fn view() -> View {
        let mut b = TableBuilder::new("v", &["state", "pop"]);
        b.push_row(vec!["Indiana".into(), Value::Int(1)]).unwrap();
        b.push_row(vec!["Georgia".into(), Value::Int(2)]).unwrap();
        View::new(
            ViewId(7),
            b.build(),
            Provenance {
                join_edges: vec![(
                    ColumnRef {
                        table: TableId(0),
                        ordinal: 1,
                    },
                    ColumnRef {
                        table: TableId(1),
                        ordinal: 0,
                    },
                )],
                source_tables: vec![TableId(0), TableId(1)],
                projection: vec![
                    ColumnRef {
                        table: TableId(0),
                        ordinal: 1,
                    },
                    ColumnRef {
                        table: TableId(1),
                        ordinal: 1,
                    },
                ],
                join_score: 0.9,
            },
        )
    }

    #[test]
    fn accessors() {
        let v = view();
        assert_eq!(v.id, ViewId(7));
        assert_eq!(v.row_count(), 2);
        assert_eq!(v.provenance.hops(), 1);
        assert_eq!(v.attribute_names(), vec!["state", "pop"]);
    }

    #[test]
    fn hash_set_matches_row_count_when_distinct() {
        let v = view();
        assert_eq!(v.hash_set().len(), 2);
    }

    #[test]
    fn signature_matches_same_schema() {
        let a = view();
        let b = view();
        assert_eq!(a.schema_signature(), b.schema_signature());
    }

    #[test]
    fn same_contents_detects_equality_and_difference() {
        let a = view();
        let b = view();
        assert!(a.same_contents(&b));
        // Different id → different.
        let mut c = view();
        c.id = ViewId(8);
        assert!(!a.same_contents(&c));
        // Different rows → different.
        let mut builder = TableBuilder::new("v", &["state", "pop"]);
        builder
            .push_row(vec!["Indiana".into(), Value::Int(1)])
            .unwrap();
        let d = View::new(ViewId(7), builder.build(), a.provenance.clone());
        assert!(!a.same_contents(&d));
    }

    #[test]
    fn row_hash_multiset_is_order_insensitive() {
        let mut b1 = TableBuilder::new("v", &["x"]);
        b1.push_row(vec![Value::Int(1)]).unwrap();
        b1.push_row(vec![Value::Int(2)]).unwrap();
        let mut b2 = TableBuilder::new("v", &["x"]);
        b2.push_row(vec![Value::Int(2)]).unwrap();
        b2.push_row(vec![Value::Int(1)]).unwrap();
        let v1 = View::new(ViewId(0), b1.build(), Provenance::default());
        let v2 = View::new(ViewId(0), b2.build(), Provenance::default());
        assert_eq!(v1.row_hash_multiset(), v2.row_hash_multiset());
    }
}
