//! Property-based tests for the materializer's relational invariants.

use proptest::prelude::*;
use ver_common::value::Value;
use ver_engine::dedup::dedup_rows;
use ver_engine::join::hash_join;
use ver_engine::project::project;
use ver_engine::rowhash::{table_fingerprint, table_hash_set};
use ver_engine::union::union_tables;
use ver_store::table::{Table, TableBuilder};

/// Strategy: a (k, v) table with keys in 0..key_space.
fn table_strategy(max_rows: usize, key_space: i64) -> impl Strategy<Value = Table> {
    prop::collection::vec((0..key_space, 0..5i64), 0..max_rows).prop_map(|rows| {
        let mut b = TableBuilder::new("t", &["k", "v"]);
        for (k, v) in rows {
            b.push_row(vec![Value::Int(k), Value::Int(v)]).unwrap();
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn join_cardinality_is_symmetric(
        a in table_strategy(40, 10),
        b in table_strategy(40, 10),
    ) {
        let ab = hash_join(&a, 0, &b, 0).unwrap();
        let ba = hash_join(&b, 0, &a, 0).unwrap();
        prop_assert_eq!(ab.row_count(), ba.row_count());
    }

    #[test]
    fn join_with_empty_is_empty(a in table_strategy(40, 10)) {
        let empty = TableBuilder::new("e", &["k", "v"]).build();
        let j = hash_join(&a, 0, &empty, 0).unwrap();
        prop_assert_eq!(j.row_count(), 0);
    }

    #[test]
    fn dedup_is_idempotent_and_shrinking(a in table_strategy(60, 5)) {
        let once = dedup_rows(&a);
        let twice = dedup_rows(&once);
        prop_assert!(once.row_count() <= a.row_count());
        prop_assert_eq!(once.row_count(), twice.row_count());
        // Dedup preserves the row *set*.
        prop_assert_eq!(table_hash_set(&a), table_hash_set(&once));
    }

    #[test]
    fn union_is_commutative_on_row_sets(
        a in table_strategy(40, 8),
        b in table_strategy(40, 8),
    ) {
        let ab = union_tables(&a, &b).unwrap();
        let ba = union_tables(&b, &a).unwrap();
        prop_assert_eq!(table_hash_set(&ab), table_hash_set(&ba));
        // |A ∪ B| ≥ max(|distinct A|, |distinct B|)
        let da = dedup_rows(&a).row_count();
        let db = dedup_rows(&b).row_count();
        prop_assert!(ab.row_count() >= da.max(db));
        prop_assert!(ab.row_count() <= da + db);
    }

    #[test]
    fn union_with_self_is_identity_on_sets(a in table_strategy(40, 8)) {
        let u = union_tables(&a, &a).unwrap();
        prop_assert_eq!(table_hash_set(&u), table_hash_set(&a));
        prop_assert_eq!(u.row_count(), dedup_rows(&a).row_count());
    }

    #[test]
    fn full_projection_preserves_rows(a in table_strategy(40, 8)) {
        let p = project(&a, &[0, 1]).unwrap();
        prop_assert_eq!(p.row_count(), a.row_count());
        prop_assert_eq!(table_hash_set(&p), table_hash_set(&a));
    }

    #[test]
    fn fingerprint_agrees_with_hash_set_equality(
        a in table_strategy(30, 6),
        b in table_strategy(30, 6),
    ) {
        let same_set = table_hash_set(&a) == table_hash_set(&b);
        if same_set {
            prop_assert_eq!(table_fingerprint(&a), table_fingerprint(&b));
        }
        // (fingerprint collisions for different sets are possible but
        // astronomically unlikely; not asserted)
    }

    #[test]
    fn join_output_width_is_sum_of_inputs(
        a in table_strategy(20, 6),
        b in table_strategy(20, 6),
    ) {
        let j = hash_join(&a, 0, &b, 1).unwrap();
        prop_assert_eq!(j.column_count(), a.column_count() + b.column_count());
    }
}
