//! Criterion: the full online pipeline (CS → JGS → M → 4C) per query, over
//! ChEMBL-like and WDC-like corpora — the end-to-end numbers of Fig. 4(b)
//! and Fig. 7, measured with statistical rigour.

use criterion::{criterion_group, criterion_main, Criterion};
use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_qbe::{ExampleQuery, ViewSpec};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));

    let chembl = generate_chembl(&ChemblConfig {
        n_compounds: 100,
        n_tables: 30,
        seed: 5,
    })
    .unwrap();
    let ver = Ver::build(chembl, VerConfig::fast()).unwrap();
    let name0 = ver
        .catalog()
        .table_by_name("compounds")
        .unwrap()
        .cell(0, 1)
        .unwrap()
        .to_string();
    let name1 = ver
        .catalog()
        .table_by_name("compounds")
        .unwrap()
        .cell(1, 1)
        .unwrap()
        .to_string();
    let spec = ViewSpec::Qbe(
        ExampleQuery::from_rows(&[vec![name0.as_str()], vec![name1.as_str()]]).unwrap(),
    );
    group.bench_function("chembl_compound_query", |b| {
        b.iter(|| ver.run(&spec).unwrap())
    });

    let wdc = generate_wdc(&WdcConfig {
        n_tables: 120,
        ..Default::default()
    })
    .unwrap();
    let ver_wdc = Ver::build(wdc, VerConfig::fast()).unwrap();
    let spec_wdc = ViewSpec::Qbe(
        ExampleQuery::from_rows(&[vec!["Philippines", "2644000"], vec!["Vietnam", "3055000"]])
            .unwrap(),
    );
    group.bench_function("wdc_population_query", |b| {
        b.iter(|| ver_wdc.run(&spec_wdc).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
