//! Criterion: 4C distillation scaling in the number of candidate views —
//! the measurement behind Fig. 3's "4C Runtime" series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ver_common::ids::ViewId;
use ver_common::value::Value;
use ver_distill::{distill, DistillConfig};
use ver_engine::view::{Provenance, View};
use ver_store::table::TableBuilder;

/// Synthesise `n` views over a shared schema with controlled overlap:
/// compatibles (i % 7 == 1 duplicates its predecessor), containments and
/// contradictions mixed in.
fn views(n: usize, rows: usize) -> Vec<View> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut b = TableBuilder::new("v", &["k", "x"]);
        let base = if i % 7 == 1 { i - 1 } else { i };
        for r in 0..rows {
            let key = (base * 3 + r) % (rows * 2);
            // every 5th view disagrees on the value for shared keys
            let val = if i % 5 == 0 { key * 10 } else { key * 10 + 1 };
            b.push_row(vec![Value::Int(key as i64), Value::Int(val as i64)])
                .unwrap();
        }
        out.push(View::new(
            ViewId(i as u32),
            b.build(),
            Provenance::default(),
        ));
    }
    out
}

fn bench_distill(c: &mut Criterion) {
    let mut group = c.benchmark_group("distill_4c");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    for n in [50usize, 200, 500] {
        let vs = views(n, 40);
        group.bench_with_input(BenchmarkId::new("views", n), &n, |b, _| {
            b.iter(|| distill(&vs, &DistillConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distill);
criterion_main!(benches);
