//! Criterion: per-question latency of VIEW-PRESENTATION — the paper
//! reports < 0.5 ms per question (interactive requirement).

use criterion::{criterion_group, criterion_main, Criterion};
use ver_common::ids::ViewId;
use ver_common::value::Value;
use ver_distill::{distill, DistillConfig};
use ver_engine::view::{Provenance, View};
use ver_present::{OracleUser, PresentationConfig, PresentationSession};
use ver_qbe::ExampleQuery;
use ver_store::table::TableBuilder;

fn views(n: usize) -> Vec<View> {
    (0..n)
        .map(|i| {
            let mut b = TableBuilder::new("v", &["state", "pop"]);
            for r in 0..20 {
                b.push_row(vec![
                    Value::text(format!("s{}", (i + r) % 40)),
                    Value::Int((i * 100 + r) as i64),
                ])
                .unwrap();
            }
            View::new(ViewId(i as u32), b.build(), Provenance::default())
        })
        .collect()
}

fn bench_presentation(c: &mut Criterion) {
    let vs = views(100);
    let d = distill(&vs, &DistillConfig::default());
    let query = ExampleQuery::from_rows(&[vec!["s1", "100"]]).unwrap();

    let mut group = c.benchmark_group("presentation");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("full_session_oracle", |b| {
        b.iter(|| {
            let mut session =
                PresentationSession::new(&vs, &d, &query, PresentationConfig::default());
            let mut user = OracleUser::new(ViewId(42));
            session.run(&mut user)
        })
    });
    group.bench_function("fasttopk_rank_100_views", |b| {
        b.iter(|| ver_present::fasttopk_rank(&vs, &query))
    });
    group.finish();
}

criterion_group!(benches, bench_presentation);
criterion_main!(benches);
