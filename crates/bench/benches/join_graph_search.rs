//! Criterion: join-graph enumeration (combinations, joinable groups,
//! non-joinable cache, ranking) without materialization — the JGS bar of
//! Fig. 4(b).

use criterion::{criterion_group, criterion_main, Criterion};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_index::{build_index, IndexConfig};
use ver_qbe::ExampleQuery;
use ver_search::enumerate::enumerate_combinations;
use ver_select::{column_selection, SelectionConfig};

fn bench_join_graph_search(c: &mut Criterion) {
    let cat = generate_wdc(&WdcConfig {
        n_tables: 150,
        ..Default::default()
    })
    .unwrap();
    let idx = build_index(
        &cat,
        IndexConfig {
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let query =
        ExampleQuery::from_rows(&[vec!["Philippines", "2644000"], vec!["Vietnam", "3055000"]])
            .unwrap();
    let selection = column_selection(&idx, &query, &SelectionConfig::default());

    let mut group = c.benchmark_group("join_graph_search");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("enumerate_rho2", |b| {
        b.iter(|| enumerate_combinations(&idx, &selection, 2, 20_000))
    });
    group.bench_function("enumerate_rho1", |b| {
        b.iter(|| enumerate_combinations(&idx, &selection, 1, 20_000))
    });
    group.bench_function("generate_join_graphs_pairwise", |b| {
        let tables: Vec<_> = (0..cat.table_count().min(4))
            .map(|i| ver_common::ids::TableId(i as u32))
            .collect();
        b.iter(|| idx.generate_join_graphs(&tables[..2], 2))
    });
    group.finish();
}

criterion_group!(benches, bench_join_graph_search);
criterion_main!(benches);
