//! Criterion: offline discovery-index construction (profiles + MinHash +
//! LSH + hypergraph) across corpus shapes — the cost amortised by the
//! paper's offline stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_index::{build_index, IndexConfig};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));

    let chembl = generate_chembl(&ChemblConfig {
        n_compounds: 100,
        n_tables: 30,
        seed: 1,
    })
    .unwrap();
    group.bench_function(BenchmarkId::new("chembl", "30t"), |b| {
        b.iter(|| {
            build_index(
                &chembl,
                IndexConfig {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });

    let wdc = generate_wdc(&WdcConfig {
        n_tables: 150,
        ..Default::default()
    })
    .unwrap();
    group.bench_function(BenchmarkId::new("wdc", "150t"), |b| {
        b.iter(|| {
            build_index(
                &wdc,
                IndexConfig {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });

    // Exact verification: every LSH candidate pair is checked against the
    // true distinct sets — the path the allocation diet (profile-stored
    // sorted hash vectors, merge-based containment) targets.
    group.bench_function(BenchmarkId::new("wdc_verify_exact", "150t"), |b| {
        b.iter(|| {
            build_index(
                &wdc,
                IndexConfig {
                    threads: 1,
                    verify_exact: true,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });

    // Parallel speed-up checks: fixed worker count and the `0 = auto`
    // convention (one worker per hardware thread).
    group.bench_function(BenchmarkId::new("wdc_parallel", "150t"), |b| {
        b.iter(|| {
            build_index(
                &wdc,
                IndexConfig {
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("wdc_auto_threads", "150t"), |b| {
        b.iter(|| {
            build_index(
                &wdc,
                IndexConfig {
                    threads: 0,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
