//! Criterion: COLUMN-SELECTION vs the SELECT-ALL / SELECT-BEST baselines —
//! the per-query retrieval cost behind Fig. 7's CS bars.

use criterion::{criterion_group, criterion_main, Criterion};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_index::{build_index, IndexConfig};
use ver_qbe::ExampleQuery;
use ver_select::baselines::{select_all, select_best};
use ver_select::{column_selection, SelectionConfig};

fn bench_column_selection(c: &mut Criterion) {
    let cat = generate_wdc(&WdcConfig {
        n_tables: 200,
        ..Default::default()
    })
    .unwrap();
    let idx = build_index(
        &cat,
        IndexConfig {
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let query = ExampleQuery::from_rows(&[
        vec!["Indiana", "Georgia"],
        vec!["Virginia", "Illinois"],
        vec!["Texas", "Ohio"],
    ])
    .unwrap();

    let mut group = c.benchmark_group("column_selection");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("column_selection", |b| {
        b.iter(|| column_selection(&idx, &query, &SelectionConfig::default()))
    });
    group.bench_function("select_all", |b| b.iter(|| select_all(&idx, &query)));
    group.bench_function("select_best", |b| b.iter(|| select_best(&idx, &query)));
    group.finish();
}

criterion_group!(benches, bench_column_selection);
criterion_main!(benches);
