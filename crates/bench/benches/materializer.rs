//! Criterion: the MATERIALIZER (hash join + projection + dedup) — the
//! dominant cost of Fig. 4(b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ver_common::value::Value;
use ver_engine::dedup::dedup_rows;
use ver_engine::join::hash_join;
use ver_engine::rowhash::table_hash_set;
use ver_store::table::{Table, TableBuilder};

fn table(name: &str, rows: usize, key_mod: usize) -> Table {
    let mut b = TableBuilder::new(name, &["k", "v"]);
    for i in 0..rows {
        b.push_row(vec![
            Value::Int((i % key_mod) as i64),
            Value::text(format!("val{i}")),
        ])
        .unwrap();
    }
    b.build()
}

fn bench_materializer(c: &mut Criterion) {
    let mut group = c.benchmark_group("materializer");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    for rows in [1_000usize, 10_000] {
        let left = table("l", rows, rows / 2);
        let right = table("r", rows, rows / 2);
        group.bench_with_input(BenchmarkId::new("hash_join", rows), &rows, |b, _| {
            b.iter(|| hash_join(&left, 0, &right, 0).unwrap())
        });
        let joined = hash_join(&left, 0, &right, 0).unwrap();
        group.bench_with_input(BenchmarkId::new("dedup", rows), &rows, |b, _| {
            b.iter(|| dedup_rows(&joined))
        });
        group.bench_with_input(BenchmarkId::new("rowhash_set", rows), &rows, |b, _| {
            b.iter(|| table_hash_set(&joined))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_materializer);
criterion_main!(benches);
