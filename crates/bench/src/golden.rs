//! The shared golden-snapshot workload and renderer.
//!
//! Two integration suites pin the online path's output against
//! `tests/golden/online_snapshot.txt`: `tests/golden_online.rs` (the
//! rebuild path, `Ver::run`) and `tests/serve_warm_start.rs` (the
//! persisted-index serving path). Both must render **the same workload the
//! same way** for "bit-identical" to mean anything, so the corpus, the
//! queries, and the renderer live here once.

use std::fmt::Write as _;
use ver_core::QueryResult;
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::wdc_ground_truths;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;
use ver_store::catalog::TableCatalog;

/// Repo-relative path of the golden snapshot file.
pub const SNAPSHOT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/online_snapshot.txt"
);

/// The fixed seeded corpus behind the snapshot: a 60-table WDC-style
/// collection.
pub fn golden_catalog() -> TableCatalog {
    generate_wdc(&WdcConfig {
        n_tables: 60,
        ..Default::default()
    })
    .expect("wdc generation")
}

/// The fixed workload: the five WDC ground-truth queries at zero noise with
/// pinned per-query seeds, as named `(label, spec)` pairs.
pub fn golden_queries(catalog: &TableCatalog) -> Vec<(String, ViewSpec)> {
    let gts = wdc_ground_truths(catalog).expect("ground truths");
    gts.iter()
        .enumerate()
        .map(|(qi, gt)| {
            let query = generate_noisy_query(catalog, gt, NoiseLevel::Zero, 3, 7 + qi as u64)
                .expect("query generation");
            (gt.name.clone(), ViewSpec::Qbe(query))
        })
        .collect()
}

/// Render the observable online-path output for one query.
pub fn render_query(out: &mut String, name: &str, result: &QueryResult) {
    let s = &result.search_stats;
    let _ = writeln!(out, "# query {name}");
    let _ = writeln!(
        out,
        "stats combinations={} groups={} graphs={} views={}",
        s.combinations, s.joinable_groups, s.join_graphs, s.views
    );
    for v in &result.views {
        let tables: Vec<String> = v
            .provenance
            .source_tables
            .iter()
            .map(|t| t.to_string())
            .collect();
        let _ = writeln!(
            out,
            "view {} score={:.6} rows={} cols={} hops={} tables={}",
            v.id,
            v.provenance.join_score,
            v.row_count(),
            v.table.column_count(),
            v.provenance.hops(),
            tables.join(",")
        );
    }
    let survivors: Vec<String> = result
        .distill
        .survivors_c2
        .iter()
        .map(|v| v.to_string())
        .collect();
    let _ = writeln!(out, "survivors_c2 {}", survivors.join(" "));
    let ranked: Vec<String> = result
        .ranked
        .iter()
        .map(|(v, score)| format!("{v}:{score}"))
        .collect();
    let _ = writeln!(out, "ranked {}", ranked.join(" "));
    let _ = writeln!(out);
}

/// Render the full snapshot by driving each golden query through `run` —
/// the rebuild path passes `Ver::run` (owned results), the serving path
/// passes `ServeEngine::query` (shared `Arc` results).
pub fn snapshot_with<T, E>(
    queries: &[(String, ViewSpec)],
    mut run: impl FnMut(&ViewSpec) -> Result<T, E>,
) -> String
where
    T: std::borrow::Borrow<QueryResult>,
    E: std::fmt::Debug,
{
    let mut out = String::new();
    let _ = writeln!(out, "# golden online-path snapshot (see golden_online.rs)");
    let _ = writeln!(out);
    for (name, spec) in queries {
        let result = run(spec).expect("pipeline run");
        render_query(&mut out, name, result.borrow());
    }
    out
}
