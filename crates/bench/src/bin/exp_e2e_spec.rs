//! §VI-C1 — alternative VIEW-SPECIFICATION implementations: QBE vs keyword
//! vs attribute search, end to end, plus the simulated-user question count
//! needed to pinpoint the target among the distilled views.
//!
//! Paper shape: keyword/attribute interfaces yield broader (more columns,
//! slower) results than QBE; the presentation loop identifies the target
//! with a modest number of questions; question generation stays fast.

use std::time::Instant;
use ver_bench::{print_table, setup_opendata};
use ver_present::OracleUser;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;

fn main() {
    let setup = setup_opendata(0.5);
    // Keyword/attribute specs retrieve far broader column sets than QBE
    // (the paper's point); cap the search so the comparison completes in
    // harness time. The caps apply equally to all three interfaces.
    let mut config = setup.ver.config().clone();
    config.search.k = 500;
    config.search.max_combinations = 2_000;
    let ver = ver_core::Ver::build(setup.ver.catalog().clone(), config).expect("rebuild with caps");
    let ver = &ver;
    let mut rows = Vec::new();

    for gt in setup.gts.iter().take(10) {
        // Build the three specs for this ground truth.
        let qbe =
            generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 0xE2E).expect("query");
        let keywords: Vec<String> = qbe
            .columns
            .iter()
            .filter_map(|c| c.non_null().next().map(|v| v.normalized()))
            .collect();
        let attributes: Vec<String> = gt
            .columns
            .iter()
            .map(|cref| {
                let t = ver.catalog().table(cref.table).expect("table");
                t.schema.columns[cref.ordinal as usize].display_name(cref.ordinal as usize)
            })
            .collect();
        let specs = [
            ViewSpec::Qbe(qbe),
            ViewSpec::Keyword(keywords),
            ViewSpec::Attribute(attributes),
        ];

        for spec in specs {
            let start = Instant::now();
            let Ok(result) = ver.run(&spec) else { continue };
            let pipeline_ms = start.elapsed();
            if result.distill.survivors_c2.is_empty() {
                rows.push(vec![
                    gt.name.clone(),
                    spec.interface_name().to_string(),
                    "0".into(),
                    ver_bench::ms(pipeline_ms),
                    "-".into(),
                ]);
                continue;
            }
            // Simulated correct-answering user hunts the top survivor.
            let target = result.distill.survivors_c2[0];
            let mut user = OracleUser::new(target);
            let (_, outcome) = ver.run_interactive(&spec, &mut user).expect("interactive");
            rows.push(vec![
                gt.name.clone(),
                spec.interface_name().to_string(),
                result.distill.survivors_c2.len().to_string(),
                ver_bench::ms(pipeline_ms),
                outcome.interactions().to_string(),
            ]);
        }
    }
    print_table(
        "§VI-C1: view-specification implementations, end to end",
        &[
            "Query",
            "Interface",
            "#Views",
            "Pipeline ms",
            "Questions to target",
        ],
        &rows,
    );
    println!(
        "\npaper shape check: QBE pipelines are the fastest per view; the \
         simulated user needs far fewer questions than there are views."
    );
}
