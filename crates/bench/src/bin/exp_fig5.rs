//! Fig. 5 — search-space sizes on ChEMBL: number of joinable groups, join
//! graphs and generated views per query (Q1-Q5) × noise level × strategy
//! (Select-All / Select-Best / Column-Selection).
//!
//! Paper shape: SELECT-ALL always produces the largest search space
//! (sometimes 4× the join graphs); SELECT-BEST the smallest (and misses
//! ground truth under noise — marked by hit=0); COLUMN-SELECTION sits in
//! between while keeping hit=1.

use ver_bench::{eval_search_config, print_table, run_strategy, setup_chembl, EvalSetup, Strategy};
use ver_datagen::workload::{find_ground_truth_view, materialize_ground_truth};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};

fn main() {
    run_for(
        setup_chembl(),
        "Fig. 5: #joinable groups / join graphs / views on ChEMBL",
    );
}

/// Shared between Fig. 5 (ChEMBL) and Fig. 6 (WDC).
pub fn run_for(setup: EvalSetup, title: &str) {
    let search = eval_search_config();
    let EvalSetup { ver, gts, .. } = &setup;
    let mut rows = Vec::new();
    for gt in gts {
        let gt_view = materialize_ground_truth(ver.catalog(), ver.index(), gt, 2).ok();
        for level in NoiseLevel::all() {
            let query = match generate_noisy_query(ver.catalog(), gt, level, 3, 0xF165) {
                Ok(q) => q,
                Err(_) => continue,
            };
            for strat in Strategy::all() {
                let out = run_strategy(ver, &query, strat, &search);
                let hit = gt_view
                    .as_ref()
                    .map(|g| find_ground_truth_view(&out.views, g).is_some());
                rows.push(vec![
                    gt.name.clone(),
                    level.label().to_string(),
                    strat.label().to_string(),
                    out.stats.joinable_groups.to_string(),
                    out.stats.join_graphs.to_string(),
                    out.stats.views.to_string(),
                    hit.map(|h| if h { "1" } else { "0" }.to_string())
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
        }
    }
    print_table(
        title,
        &[
            "Query",
            "Noise",
            "Strategy",
            "JoinableGroups",
            "JoinGraphs",
            "Views",
            "GT hit",
        ],
        &rows,
    );
    println!(
        "\npaper shape check: SA rows dominate CS rows on all three counts; \
         SB loses GT hits at Med/High noise."
    );
}
