//! Fig. 2 — number of views left at each contradiction-resolution step,
//! best case (correct side = smallest group) vs worst case (largest group),
//! per noise level, for a contradiction-light query (ChEMBL Q4-like) and a
//! contradiction-heavy one (WDC Q3-like).
//!
//! Paper shape: ChEMBL prunes ~1 view per step in the worst case (each
//! signal covers only two views); WDC Q3 prunes many views per step even in
//! the worst case (discriminative signals).

use ver_bench::{eval_search_config, print_table, run_strategy, setup_chembl, setup_wdc, Strategy};
use ver_distill::strategy::{contradiction_steps, CaseChoice};
use ver_distill::{distill, DistillConfig};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};

fn main() {
    let search = eval_search_config();
    let chembl = setup_chembl();
    let wdc = setup_wdc();
    let targets = [(&chembl, 3usize, "ChEMBL Q4"), (&wdc, 2usize, "WDC Q3")];
    let mut rows = Vec::new();
    for (setup, gt_idx, label) in targets {
        let gt = &setup.gts[gt_idx];
        for level in NoiseLevel::all() {
            let query = generate_noisy_query(setup.ver.catalog(), gt, level, 3, 0xF16)
                .expect("query generation");
            let out = run_strategy(&setup.ver, &query, Strategy::ColumnSelection, &search);
            let d = distill(&out.views, &DistillConfig::default());
            for (case, case_label) in [(CaseChoice::Worst, "worst"), (CaseChoice::Best, "best")] {
                let steps = contradiction_steps(&d, case, 10);
                rows.push(vec![
                    label.to_string(),
                    level.label().to_string(),
                    case_label.to_string(),
                    format!("{steps:?}"),
                ]);
            }
        }
    }
    print_table(
        "Fig. 2: Views left per contradiction-resolution step",
        &["Query", "Noise", "Case", "Views left per step"],
        &rows,
    );
    println!(
        "\npaper shape check: best-case series fall at least as fast as \
         worst-case; the WDC Q3 worst case still prunes multiple views per \
         step while ChEMBL's worst case prunes ~1."
    );
}
