//! Table I — characteristics of the (synthetic) evaluation datasets.
//!
//! Paper columns: #Tables, #Columns, ~#Joinable Columns, ~Total #Rows, Size.
//! Absolute numbers are scaled down (see DESIGN.md §2); the *relationships*
//! hold: ChEMBL has few tables/joinable pairs but many rows; WDC has many
//! tiny tables and a joinable-pair count that dwarfs its table count.

use ver_bench::{print_table, setup_chembl, setup_opendata, setup_wdc};

fn main() {
    let mut rows = Vec::new();
    for setup in [setup_chembl(), setup_wdc(), setup_opendata(1.0)] {
        let cat = setup.ver.catalog();
        rows.push(vec![
            setup.label.to_string(),
            cat.table_count().to_string(),
            cat.column_count().to_string(),
            setup.ver.index().joinable_pairs().to_string(),
            cat.total_rows().to_string(),
            format!("{:.1} MB", cat.approx_bytes() as f64 / 1e6),
        ]);
    }
    print_table(
        "Table I: Characteristics of Datasets",
        &[
            "Dataset",
            "#Tables",
            "#Columns",
            "#Joinable Pairs",
            "#Rows",
            "Size",
        ],
        &rows,
    );
    println!(
        "\npaper shape check: WDC joinable pairs ≫ WDC tables; \
         ChEMBL joinable pairs ≈ same order as columns."
    );
}
