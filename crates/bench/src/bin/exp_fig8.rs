//! Fig. 8 — microbenchmarks (Appendix C).
//!
//! (a) Join-graph counts under different index containment thresholds
//!     t ∈ {0.8, 0.7, 0.6, 0.5} — lower thresholds admit more (noisier)
//!     joinable pairs → more join graphs.
//! (b) Search-space size vs number of example rows (2..10) — the paper's
//!     counter-intuitive result: more rows do *not* monotonically shrink
//!     the space in pathless collections.
//! (c) Column-selection internals vs example rows: total columns,
//!     clusters, clusters selected, columns selected.
//! (§C-3) Search-space vs number of query columns (2..4) — more columns ⇒
//!     more join graphs and views.

use ver_bench::{eval_search_config, print_table, run_strategy, Strategy};
use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::workload::chembl_ground_truths;
use ver_index::IndexConfig;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::query::{ExampleQuery, QueryColumn};
use ver_select::{column_selection, SelectionConfig};

fn build_ver(threshold: f64) -> Ver {
    let cat = generate_chembl(&ChemblConfig {
        n_compounds: 150,
        n_tables: 70,
        seed: 0xC4EB,
    })
    .expect("chembl generation");
    let config = VerConfig {
        index: IndexConfig {
            threads: 4,
            verify_exact: true,
            containment_threshold: threshold,
            ..Default::default()
        },
        ..VerConfig::default()
    };
    Ver::build(cat, config).expect("index build")
}

fn main() {
    let search = eval_search_config();

    // ── (a) threshold sweep ──────────────────────────────────────────────
    let mut rows = Vec::new();
    for t in [0.8, 0.7, 0.6, 0.5] {
        let ver = build_ver(t);
        let gts = chembl_ground_truths(ver.catalog()).expect("gt");
        let mut cells = vec![format!("t={t}"), ver.index().joinable_pairs().to_string()];
        let mut total_graphs = 0usize;
        for gt in &gts {
            let q = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 0xF168)
                .expect("query");
            let out = run_strategy(&ver, &q, Strategy::ColumnSelection, &search);
            total_graphs += out.stats.join_graphs;
        }
        cells.push(total_graphs.to_string());
        rows.push(cells);
    }
    print_table(
        "Fig. 8(a): joinable pairs & join graphs vs containment threshold",
        &["Threshold", "Joinable pairs", "Σ join graphs (Q1-Q5)"],
        &rows,
    );

    // ── (b) + (c): example-row sweep ────────────────────────────────────
    // Uses the WDC corpus: its state/city/country homonyms are what make
    // extra example rows pull in (or rule out) whole clusters, the paper's
    // non-monotone effect.
    let wdc = ver_bench::setup_wdc();
    let wdc_gt = &wdc.gts[0]; // airports (state, iata)
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for rows_n in [2usize, 4, 6, 8, 10] {
        let q = generate_noisy_query(wdc.ver.catalog(), wdc_gt, NoiseLevel::Zero, rows_n, 0xF169)
            .expect("query");
        let sel = column_selection(wdc.ver.index(), &q, &SelectionConfig::default());
        let out = run_strategy(&wdc.ver, &q, Strategy::ColumnSelection, &search);
        rows_b.push(vec![
            rows_n.to_string(),
            out.stats.joinable_groups.to_string(),
            out.stats.join_graphs.to_string(),
            out.stats.views.to_string(),
        ]);
        let total_cols: usize = sel.per_attribute.iter().map(|a| a.total_columns).sum();
        let clusters: usize = sel.per_attribute.iter().map(|a| a.num_clusters).sum();
        let selected: usize = sel.per_attribute.iter().map(|a| a.clusters_selected).sum();
        rows_c.push(vec![
            rows_n.to_string(),
            total_cols.to_string(),
            clusters.to_string(),
            selected.to_string(),
            sel.total_selected().to_string(),
        ]);
    }
    print_table(
        "Fig. 8(b): search space vs #example rows",
        &["Rows", "JoinableGroups", "JoinGraphs", "Views"],
        &rows_b,
    );
    print_table(
        "Fig. 8(c): column selection vs #example rows",
        &[
            "Rows",
            "TotalColumns",
            "Clusters",
            "ClustersSelected",
            "ColumnsSelected",
        ],
        &rows_c,
    );

    // ── (§C-3) query-column sweep ────────────────────────────────────────
    let ver = build_ver(0.8);
    let gts = chembl_ground_truths(ver.catalog()).expect("gt");
    let gt = &gts[1]; // compound_name × standard_value
    let search = ver_search::SearchConfig {
        k: 3_000,
        max_combinations: 3_000,
        ..ver_search::SearchConfig::default()
    };
    let mut rows_d = Vec::new();
    for arity in [2usize, 3, 4] {
        // Extend Q2 with additional attributes drawn from joined tables.
        let base =
            generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 0xF16A).expect("query");
        let mut columns: Vec<QueryColumn> = base.columns.clone();
        let extras = [
            ("compounds", "mw", 2usize),
            ("activities", "assay_id", 2usize),
        ];
        for (t, c, ord) in extras.iter().take(arity - 2) {
            let table = ver.catalog().table_by_name(t).expect("table");
            let col = table.column(*ord).expect("column");
            let _ = c;
            let vals: Vec<ver_common::value::Value> = col.non_null().take(3).cloned().collect();
            columns.push(QueryColumn::of_values(vals));
        }
        let q = ExampleQuery::new(columns).expect("valid query");
        let out = run_strategy(&ver, &q, Strategy::ColumnSelection, &search);
        rows_d.push(vec![
            arity.to_string(),
            out.stats.joinable_groups.to_string(),
            out.stats.join_graphs.to_string(),
            out.stats.views.to_string(),
        ]);
    }
    print_table(
        "Appendix C-3: search space vs #query columns",
        &["Columns", "JoinableGroups", "JoinGraphs", "Views"],
        &rows_d,
    );
    println!(
        "\npaper shape checks: (a) lower threshold ⇒ more pairs & graphs; \
         (b) non-monotone in #rows; (c) clusters selected shrinks as rows \
         grow; (C-3) more columns ⇒ larger space."
    );
}
