//! Table IV — effect of view distillation (4C signals) on view counts:
//! Original → C1 (compatible) → C2 (contained) → C3 worst/best
//! (complementary union under worst/best key), per query × noise level.
//!
//! Paper shape: counts weakly decrease left to right; compatible-heavy
//! queries (ChEMBL Q3-like) drop sharply at C1; coverage-style corpora
//! (WDC) union well at C3.

use ver_bench::{eval_search_config, print_table, run_strategy, setup_chembl, setup_wdc, Strategy};
use ver_distill::strategy::distill_counts;
use ver_distill::{distill, DistillConfig};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};

fn main() {
    let search = eval_search_config();
    let mut rows = Vec::new();
    for setup in [setup_chembl(), setup_wdc()] {
        for gt in &setup.gts {
            for level in NoiseLevel::all() {
                let query = generate_noisy_query(
                    setup.ver.catalog(),
                    gt,
                    level,
                    3,
                    0x7AB4 ^ gt.name.len() as u64,
                )
                .expect("query generation");
                let out = run_strategy(&setup.ver, &query, Strategy::ColumnSelection, &search);
                let d = distill(&out.views, &DistillConfig::default());
                let counts = distill_counts(&out.views, &d);
                rows.push(vec![
                    gt.name.clone(),
                    level.label().to_string(),
                    counts.original.to_string(),
                    counts.c1.to_string(),
                    counts.c2.to_string(),
                    counts.c3_worst.to_string(),
                    counts.c3_best.to_string(),
                ]);
            }
        }
    }
    print_table(
        "Table IV: Effect of view distillation (4C) on number of views",
        &[
            "Query", "Noise", "Original", "C1", "C2", "C3 worst", "C3 best",
        ],
        &rows,
    );
    println!(
        "\npaper shape check: Original ≥ C1 ≥ C2 ≥ C3-worst ≥ C3-best on \
         every row; median reduction ratio > 0."
    );
}
