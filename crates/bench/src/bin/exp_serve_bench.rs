//! `exp_serve_bench` — the serving-layer perf datapoint (`BENCH_4.json`).
//!
//! Measures what `ver-serve` exists to deliver:
//!
//! * **cold build vs. warm start** — building the discovery index in
//!   process vs. loading the persisted artifact (`ver-index::persist`);
//! * **replay throughput** — queries/sec over a multi-client noisy QBE
//!   workload (`ver-datagen::workload`) at per-query thread budgets of
//!   1 / 2 / auto, on a first (cache-cold) and a repeat (cache-warm) pass;
//! * **cache effectiveness** — hit rates of the whole-result LRU, the
//!   materialized-view LRU, and the signature/containment score memo;
//! * **concurrency** — wall-clock throughput with 4 client threads
//!   hammering one shared engine.
//!
//! ```text
//! cargo run --release --bin exp_serve_bench                 # full corpus → BENCH_4.json
//! cargo run --release --bin exp_serve_bench -- --smoke      # reduced corpus (CI)
//! cargo run --release --bin exp_serve_bench -- --out p.json # custom output path
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use ver_bench::hardware_json;
use ver_core::VerConfig;
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::{generate_workload, wdc_ground_truths};
use ver_index::persist::{load_index, save_index};
use ver_index::{build_index, IndexConfig};
use ver_qbe::ViewSpec;
use ver_serve::{ServeConfig, ServeEngine};
use ver_store::catalog::TableCatalog;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
    }
    best
}

struct ReplayPoint {
    threads_label: &'static str,
    first_pass_ms: f64,
    first_pass_qps: f64,
    repeat_pass_ms: f64,
    repeat_pass_qps: f64,
    result_hit_rate: String,
    view_hit_rate: String,
    score_hit_rate: String,
}

/// JSON value for a cache hit rate. A disabled cache observes zero
/// lookups, so a numeric rate would be a lie — render `"disabled"`.
fn hit_rate_json(stats: &ver_common::cache::CacheStats) -> String {
    if stats.disabled {
        "\"disabled\"".to_string()
    } else {
        format!("{:.4}", stats.hit_rate())
    }
}

/// Replay the workload twice on a fresh warm-started engine pinned to
/// `threads` workers per query; report per-pass latency/throughput and the
/// engine's final cache hit rates.
fn replay(
    catalog: &Arc<TableCatalog>,
    index: &Arc<ver_index::DiscoveryIndex>,
    specs: &[ViewSpec],
    threads: usize,
    threads_label: &'static str,
) -> ReplayPoint {
    let config = ServeConfig {
        pipeline: VerConfig::default(),
        view_cache_capacity: 16_384,
        ..ServeConfig::default()
    }
    .with_query_threads(threads);
    let engine = ServeEngine::warm_start(Arc::clone(catalog), Arc::clone(index), config)
        .expect("warm start");

    let t = Instant::now();
    for spec in specs {
        engine.query(spec).expect("query");
    }
    let first_pass_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    for spec in specs {
        engine.query(spec).expect("query");
    }
    let repeat_pass_ms = t.elapsed().as_secs_f64() * 1e3;

    let stats = engine.stats();
    ReplayPoint {
        threads_label,
        first_pass_ms,
        first_pass_qps: specs.len() as f64 / (first_pass_ms / 1e3),
        repeat_pass_ms,
        repeat_pass_qps: specs.len() as f64 / (repeat_pass_ms / 1e3),
        result_hit_rate: hit_rate_json(&stats.result_cache),
        view_hit_rate: hit_rate_json(&stats.view_cache),
        score_hit_rate: hit_rate_json(&stats.score_memo),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_4.json".to_string());
    let reps = if smoke { 1 } else { 3 };
    let hw = ver_common::pool::resolve_threads(0);
    let (n_tables, per_gt) = if smoke { (40, 1) } else { (150, 2) };
    let clients = 4usize;

    eprintln!("exp_serve_bench: hardware_threads={hw} smoke={smoke} reps={reps}");

    // Corpus + multi-client workload: every ground truth at every noise
    // level, `per_gt` reps each — the §VI-B noisy-workload generator.
    let catalog = Arc::new(
        generate_wdc(&WdcConfig {
            n_tables,
            ..Default::default()
        })
        .expect("wdc generation"),
    );
    let gts = wdc_ground_truths(&catalog).expect("ground truths");
    let workload =
        generate_workload(&catalog, &gts, per_gt, 3, 0x5E87E).expect("workload generation");
    let specs: Vec<ViewSpec> = workload
        .iter()
        .map(|w| ViewSpec::Qbe(w.query.clone()))
        .collect();

    // Cold build vs. persist + warm-start load.
    let index_config = IndexConfig::default();
    let cold_build_ms = best_ms(reps, || {
        build_index(&catalog, index_config.clone()).expect("build")
    });
    let index = Arc::new(build_index(&catalog, index_config).expect("build"));
    let dir = std::env::temp_dir().join(format!("ver_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("index.bin");
    let persist_ms = best_ms(reps, || save_index(&index, &path).expect("save"));
    let persist_bytes = std::fs::metadata(&path).expect("artifact").len();
    let warm_start_ms = best_ms(reps, || load_index(&path).expect("load"));
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();

    // Throughput at per-query thread budgets (fresh engine per point so
    // cache state never leaks between budgets; output is bit-identical
    // across budgets, so the times are comparable).
    let points = [
        replay(&catalog, &index, &specs, 1, "threads_1"),
        replay(&catalog, &index, &specs, 2, "threads_2"),
        replay(&catalog, &index, &specs, 0, "threads_auto"),
    ];

    // Concurrent clients over one shared, pre-warmed engine.
    let engine = Arc::new(
        ServeEngine::warm_start(
            Arc::clone(&catalog),
            Arc::clone(&index),
            ServeConfig {
                pipeline: VerConfig::default(),
                view_cache_capacity: 16_384,
                ..ServeConfig::default()
            },
        )
        .expect("warm start"),
    );
    for spec in &specs {
        engine.query(spec).expect("pre-warm");
    }
    let t = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let engine = Arc::clone(&engine);
            let specs = &specs;
            scope.spawn(move || {
                // Round-robin offset so clients interleave the key space.
                for i in 0..specs.len() {
                    let spec = &specs[(i + c * specs.len() / clients) % specs.len()];
                    engine.query(spec).expect("query");
                }
            });
        }
    });
    let concurrent_ms = t.elapsed().as_secs_f64() * 1e3;
    let concurrent_qps = (clients * specs.len()) as f64 / (concurrent_ms / 1e3);
    let concurrent_hit_rate = hit_rate_json(&engine.stats().result_cache);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"exp_serve_bench\",");
    let _ = writeln!(json, "  \"pr\": 4,");
    let _ = writeln!(json, "  \"hardware\": {},", hardware_json());
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"name\": \"WDC\", \"tables\": {}, \"columns\": {}, \"rows\": {}}},",
        catalog.table_count(),
        catalog.column_count(),
        catalog.total_rows()
    );
    let _ = writeln!(json, "  \"workload_queries\": {},", specs.len());
    let _ = writeln!(
        json,
        "  \"startup\": {{\"cold_build_ms\": {cold_build_ms:.3}, \"persist_ms\": {persist_ms:.3}, \"persist_bytes\": {persist_bytes}, \"warm_start_ms\": {warm_start_ms:.3}, \"warm_vs_cold_speedup\": {:.3}}},",
        cold_build_ms / warm_start_ms
    );
    json.push_str("  \"replay\": {\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"first_pass_ms\": {:.3}, \"first_pass_qps\": {:.3}, \"repeat_pass_ms\": {:.3}, \"repeat_pass_qps\": {:.3}, \"result_hit_rate\": {}, \"view_hit_rate\": {}, \"score_hit_rate\": {}}}{}",
            p.threads_label,
            p.first_pass_ms,
            p.first_pass_qps,
            p.repeat_pass_ms,
            p.repeat_pass_qps,
            p.result_hit_rate,
            p.view_hit_rate,
            p.score_hit_rate,
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"concurrent\": {{\"clients\": {clients}, \"total_queries\": {}, \"wall_ms\": {concurrent_ms:.3}, \"qps\": {concurrent_qps:.3}, \"result_hit_rate\": {concurrent_hit_rate}}}",
        clients * specs.len()
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    eprintln!("wrote {out_path}");

    assert!(
        warm_start_ms < cold_build_ms,
        "warm start ({warm_start_ms:.1} ms) must beat the cold build ({cold_build_ms:.1} ms)"
    );
}
