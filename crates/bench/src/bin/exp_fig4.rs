//! Fig. 4 — runtime breakdowns.
//!
//! (a) 4C phases at the 100% sample: schema partition / hash+C1 / C2 /
//!     C3+C4 — paper shape: hashing dominates, schema partition is trivial.
//! (b) End-to-end stages over 50 queries: COLUMN-SELECTION /
//!     JOIN-GRAPH-SEARCH / MATERIALIZER / VD-IO / 4C — paper shape: the
//!     MATERIALIZER and view IO dominate; CS and JGS are sub-second.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ver_bench::{print_table, setup_opendata};
use ver_common::stats::Summary;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;

fn main() {
    let setup = setup_opendata(1.0);
    let mut config = setup.ver.config().clone();
    config.simulate_view_io = true;
    config.search.k = 1_000; // bound per-query materialization (shape, not scale)
    let ver = ver_core::Ver::build(setup.ver.catalog().clone(), config)
        .expect("rebuild with IO simulation");

    let mut rng = StdRng::seed_from_u64(0xF164);
    let phases = ["cs", "jgs", "materialize", "vd_io", "4c"];
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); phases.len()];
    let mut fourc_phases: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let queries = 20;
    for _ in 0..queries {
        let gt = &setup.gts[rng.gen_range(0..setup.gts.len())];
        let Ok(q) = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, rng.gen()) else {
            continue;
        };
        let Ok(result) = ver.run(&ViewSpec::Qbe(q)) else {
            continue;
        };
        for (i, p) in phases.iter().enumerate() {
            samples[i].push(result.timer.get(p).as_secs_f64() * 1e3);
        }
        for (i, p) in ["schema_partition", "hash_c1", "c2", "c3_c4"]
            .iter()
            .enumerate()
        {
            fourc_phases[i].push(result.distill.timer.get(p).as_secs_f64() * 1e3);
        }
    }

    let fmt = |v: &[f64]| {
        Summary::of(v)
            .map(|s| format!("{:.3}/{:.3}/{:.3}", s.min, s.median, s.max))
            .unwrap_or_else(|| "-".into())
    };

    let rows_a: Vec<Vec<String>> = ["SP", "Hash+C1", "C2", "C3+C4"]
        .iter()
        .zip(&fourc_phases)
        .map(|(label, v)| vec![label.to_string(), fmt(v)])
        .collect();
    print_table(
        "Fig. 4(a): 4C phase runtimes, 100% sample (ms, min/med/max)",
        &["Phase", "Runtime"],
        &rows_a,
    );

    let rows_b: Vec<Vec<String>> = ["CS", "JGS", "M", "VD-IO", "4C"]
        .iter()
        .zip(&samples)
        .map(|(label, v)| vec![label.to_string(), fmt(v)])
        .collect();
    print_table(
        "Fig. 4(b): End-to-end stage runtimes over 50 queries (ms, min/med/max)",
        &["Stage", "Runtime"],
        &rows_b,
    );
    println!(
        "\npaper shape check: (a) hashing (Hash+C1) dominates 4C, SP ≈ 0; \
         (b) M and VD-IO dominate, CS/JGS are small."
    );
}
