//! Table III — the user study, with simulated participants.
//!
//! 18 personas (diverse per-interface answer probabilities and error rates,
//! mirroring "different users preferred different interface designs") each
//! solve a task with both systems:
//!
//! * **Ver**: the bandit presentation loop;
//! * **FastTopK**: scanning the overlap-ranked list with a patience budget.
//!
//! Reported: found / not-found per system (the paper's Q1: 16/18 vs 6/18),
//! plus median interactions (paper: 3) — the study's measurable outcomes.
//! Subjective survey rows (Q2-Q5) have no mechanical analogue and are
//! recorded as not-reproducible in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ver_bench::{eval_search_config, print_table, run_strategy, setup_wdc, Strategy};
use ver_common::fxhash::FxHashMap;
use ver_present::{fasttopk_rank, simulate_scan, InterfaceKind, PersonaUser};
use ver_qbe::query::ExampleQuery;
use ver_qbe::ViewSpec;

fn main() {
    let setup = setup_wdc();
    let search = eval_search_config();
    let tasks = [
        ExampleQuery::from_rows(&[vec!["Philippines", "2644000"], vec!["Vietnam", "3055000"]])
            .unwrap(),
        ExampleQuery::from_rows(&[vec!["Indiana"], vec!["Georgia"], vec!["Virginia"]]).unwrap(),
    ];

    let mut rng = StdRng::seed_from_u64(1803);
    let scan_budget = 4; // patience: how many ranked views a user inspects
    let mut ver_found = 0usize;
    let mut ft_found = 0usize;
    let mut ver_interactions: Vec<f64> = Vec::new();
    let mut ft_inspected: Vec<f64> = Vec::new();
    let participants = 18usize;

    for p in 0..participants {
        let task = &tasks[p % tasks.len()];
        let result = setup
            .ver
            .run(&ViewSpec::Qbe(task.clone()))
            .expect("pipeline");
        if result.distill.survivors_c2.is_empty() {
            continue;
        }
        // The participant's desired view: drawn among survivors (each
        // participant wants something different — semantic ambiguity).
        let survivors = &result.distill.survivors_c2;
        let target = survivors[rng.gen_range(0..survivors.len())];

        // Persona: random per-interface ability, small error rate.
        let mut probs = FxHashMap::default();
        for k in InterfaceKind::all() {
            probs.insert(k, 0.35 + rng.gen::<f64>() * 0.6);
        }
        let error = rng.gen::<f64>() * 0.08;

        // — Ver —
        let mut user = PersonaUser::with_profile(target, probs, error, 7000 + p as u64);
        let (_, outcome) = setup
            .ver
            .run_interactive(&ViewSpec::Qbe(task.clone()), &mut user)
            .expect("interactive run");
        if outcome.found_view() == Some(target) {
            ver_found += 1;
            ver_interactions.push(outcome.interactions() as f64);
        }

        // — FastTopK — (rank the same strategy universe the study used)
        let ft = run_strategy(&setup.ver, task, Strategy::SelectAll, &search);
        let ranked = fasttopk_rank(&ft.views, task);
        // Target equivalence: the FastTopK list contains different view ids;
        // match by row-set identity.
        let target_view = result
            .views
            .iter()
            .find(|v| v.id == target)
            .expect("target");
        let target_hashes = target_view.hash_set();
        let ft_target = ft.views.iter().find(|v| v.hash_set() == target_hashes);
        match ft_target {
            Some(t) => {
                let scan = simulate_scan(&ranked, t.id, scan_budget);
                if scan.found {
                    ft_found += 1;
                    ft_inspected.push(scan.inspected as f64);
                }
            }
            None => { /* target never surfaces in FastTopK's universe */ }
        }
    }

    print_table(
        "Table III (Q1): Does the user find a relevant view?",
        &["Outcome", "Ver", "FastTopK"],
        &[
            vec!["Found".into(), ver_found.to_string(), ft_found.to_string()],
            vec![
                "Not Found".into(),
                (participants - ver_found).to_string(),
                (participants - ft_found).to_string(),
            ],
        ],
    );
    let med = |v: &[f64]| {
        ver_common::stats::median(v)
            .map(|m| format!("{m:.0}"))
            .unwrap_or_else(|| "-".into())
    };
    print_table(
        "Median effort",
        &["Metric", "Ver", "FastTopK"],
        &[vec![
            "median interactions / inspections".into(),
            med(&ver_interactions),
            med(&ft_inspected),
        ]],
    );
    println!(
        "\npaper shape check: Ver finds the view for more participants \
         (paper 16 vs 6 of 18) with few interactions (paper median 3)."
    );
}
