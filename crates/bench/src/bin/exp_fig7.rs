//! Fig. 7 — runtime of COLUMN-SELECTION + JOIN-GRAPH-SEARCH + MATERIALIZER
//! per query × noise level × strategy on both corpora.
//!
//! Paper shape: the COLUMN-SELECTION pipeline is up to an order of
//! magnitude faster than SELECT-ALL's because the materialiser processes
//! far fewer join graphs.

use std::time::Instant;
use ver_bench::{eval_search_config, print_table, run_strategy, setup_chembl, setup_wdc, Strategy};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};

fn main() {
    let search = eval_search_config();
    let mut rows = Vec::new();
    for setup in [setup_chembl(), setup_wdc()] {
        for gt in &setup.gts {
            for level in NoiseLevel::all() {
                let query = match generate_noisy_query(setup.ver.catalog(), gt, level, 3, 0xF167) {
                    Ok(q) => q,
                    Err(_) => continue,
                };
                let mut cells = vec![gt.name.clone(), level.label().to_string()];
                for strat in Strategy::all() {
                    let start = Instant::now();
                    let out = run_strategy(&setup.ver, &query, strat, &search);
                    let elapsed = start.elapsed();
                    cells.push(format!(
                        "{} ({} views)",
                        ver_bench::ms(elapsed),
                        out.stats.views
                    ));
                }
                rows.push(cells);
            }
        }
    }
    print_table(
        "Fig. 7: CS+JGS+M runtime per query (ms)",
        &["Query", "Noise", "SA", "SB", "CS"],
        &rows,
    );
    println!(
        "\npaper shape check: the SA column dominates the CS column, \
         increasingly so for noisy queries with broad matches."
    );
}
