//! `exp_load_bench` — the network-serving perf datapoint (`BENCH_9.json`).
//!
//! Closed-loop load over a live `verd` server: N client threads, each
//! with its own TCP connection, each issuing M requests back-to-back and
//! recording per-request wall latency. Three traffic shapes:
//!
//! * **hot_cache** — a pre-warmed workload replayed; every query is a
//!   server-side result-LRU hit, so this measures the wire itself
//!   (framing + codec + socket) plus result encoding;
//! * **mixed** — 50% warm hits, 50% never-seen-before keyword specs that
//!   run the full pipeline server-side (result-cache misses);
//! * **paginated** — the warm workload fetched at a small page size, so
//!   every query costs one head + several `FetchPage` round trips and
//!   exercises the server-side cursor table.
//!
//! Reported per scenario: QPS and p50/p95/p99 latency. The run also
//! asserts invariant 12 in-line: a paginated reassembly must equal the
//! single-shot fetch of the same query, and the load run must finish
//! with zero protocol errors and zero dropped connections.
//!
//! With `--route`, the server under load is instead a **router** fanning
//! every query out to two shard-leg servers over loopback TCP
//! (`BENCH_10.json`): one hot-cache scenario, one full-scatter scenario
//! with both legs healthy, then the same scatter with one leg stopped —
//! measuring what a dead leg costs in QPS/p99 once retries, backoff, and
//! the circuit breaker absorb it (every answer degrades to partial;
//! none may error).
//!
//! ```text
//! cargo run --release --bin exp_load_bench                 # full corpus → BENCH_9.json
//! cargo run --release --bin exp_load_bench -- --route      # router + legs → BENCH_10.json
//! cargo run --release --bin exp_load_bench -- --smoke      # reduced corpus (CI)
//! cargo run --release --bin exp_load_bench -- --out p.json # custom output path
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use ver_bench::hardware_json;
use ver_core::VerConfig;
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::{generate_workload, wdc_ground_truths};
use ver_index::{build_index, IndexConfig};
use ver_qbe::ViewSpec;
use ver_serve::net::{Backend, Client, NetConfig, RetryPolicy, Server, ServerHandle};
use ver_serve::{RouterEngine, ServeConfig, ServeEngine};

/// Latency percentile over a sorted sample, in milliseconds.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct ScenarioResult {
    name: &'static str,
    requests: usize,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Run one closed-loop scenario: `clients` threads, each issuing every
/// request `make(client_idx, i)` yields, measuring per-request latency.
fn run_scenario(
    name: &'static str,
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    page_size: u32,
    make: impl Fn(usize, usize) -> ViewSpec + Sync,
) -> ScenarioResult {
    let wall = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let make = &make;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let spec = make(c, i);
                        let t = Instant::now();
                        let result = client.query(&spec, page_size, 0).expect("wire query");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        std::hint::black_box(&result);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies.len();
    ScenarioResult {
        name,
        requests,
        wall_ms,
        qps: requests as f64 / (wall_ms / 1e3),
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

fn spawn_backend(backend: Backend) -> ServerHandle {
    let config = NetConfig {
        addr: "127.0.0.1:0".parse().expect("addr"),
        max_conns: 0, // the bench saturates; admission is the engine's job
        ..NetConfig::default()
    };
    Server::bind(backend, config).expect("bind").spawn()
}

fn spawn_server(engine: ServeEngine) -> ServerHandle {
    spawn_backend(Backend::Single(Arc::new(engine)))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let route = args.iter().any(|a| a == "--route");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if route {
                "BENCH_10.json".to_string()
            } else {
                "BENCH_9.json".to_string()
            }
        });
    let hw = ver_common::pool::resolve_threads(0);
    let (n_tables, per_gt) = if smoke { (40, 1) } else { (120, 2) };
    let clients = 4usize;
    let per_client = if smoke { 20 } else { 120 };
    let page_size = 16u32;

    eprintln!("exp_load_bench: hardware_threads={hw} smoke={smoke} route={route} clients={clients} per_client={per_client}");

    // Corpus + workload, same generators as the in-process serving bench.
    let catalog = Arc::new(
        generate_wdc(&WdcConfig {
            n_tables,
            ..Default::default()
        })
        .expect("wdc generation"),
    );
    let gts = wdc_ground_truths(&catalog).expect("ground truths");
    let workload =
        generate_workload(&catalog, &gts, per_gt, 3, 0x10AD).expect("workload generation");
    let specs: Vec<ViewSpec> = workload
        .iter()
        .map(|w| ViewSpec::Qbe(w.query.clone()))
        .collect();
    let index = Arc::new(build_index(&catalog, IndexConfig::default()).expect("index build"));

    let serve_config = ServeConfig {
        pipeline: VerConfig::default(),
        view_cache_capacity: 16_384,
        // The hot workload must fit the result LRU, or "hot_cache"
        // silently measures pipeline re-runs.
        result_cache_capacity: specs.len().max(64),
        ..ServeConfig::default()
    };

    if route {
        return route_bench(RouteBench {
            catalog,
            index,
            specs,
            serve_config,
            clients,
            per_client,
            smoke,
            out_path,
            hw,
        });
    }

    let engine = ServeEngine::warm_start(Arc::clone(&catalog), Arc::clone(&index), serve_config)
        .expect("warm start");
    let handle = spawn_server(engine);
    let addr = handle.addr();

    // Pre-warm every workload spec through the wire, and pin invariant
    // 12 while we're here: paginated reassembly ≡ single-shot fetch.
    {
        let mut client = Client::connect(addr).expect("connect");
        for spec in &specs {
            let whole = client.query(spec, 0, 0).expect("pre-warm query");
            let paged = client.query(spec, page_size, 0).expect("paginated query");
            assert_eq!(
                paged, whole,
                "paginated reassembly diverged from the single-shot result"
            );
        }
    }

    // Scenario 1: pure result-cache hits.
    let hot = run_scenario("hot_cache", addr, clients, per_client, 0, |c, i| {
        specs[(i + c * specs.len() / clients) % specs.len()].clone()
    });
    eprintln!(
        "  hot_cache: {} req, {:.1} qps, p50 {:.2} ms, p99 {:.2} ms",
        hot.requests, hot.qps, hot.p50_ms, hot.p99_ms
    );

    // Scenario 2: 50% hits, 50% fresh keyword specs (pipeline misses —
    // every term is new, so the result LRU can never have seen it).
    let mixed = run_scenario("mixed", addr, clients, per_client, 0, |c, i| {
        if i % 2 == 0 {
            specs[(i + c * specs.len() / clients) % specs.len()].clone()
        } else {
            ViewSpec::Keyword(vec![format!("nonexistent_term_{c}_{i}")])
        }
    });
    eprintln!(
        "  mixed: {} req, {:.1} qps, p50 {:.2} ms, p99 {:.2} ms",
        mixed.requests, mixed.qps, mixed.p50_ms, mixed.p99_ms
    );

    // Scenario 3: warm workload, paginated delivery.
    let paginated = run_scenario("paginated", addr, clients, per_client, page_size, |c, i| {
        specs[(i + c * specs.len() / clients) % specs.len()].clone()
    });
    eprintln!(
        "  paginated: {} req, {:.1} qps, p50 {:.2} ms, p99 {:.2} ms",
        paginated.requests, paginated.qps, paginated.p50_ms, paginated.p99_ms
    );

    // Health of the run: the load must not have tripped the failure paths.
    let (serve_stats, net_stats) = {
        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats().expect("stats");
        client.shutdown().expect("shutdown");
        (stats.serve, stats.net)
    };
    assert_eq!(
        net_stats.protocol_errors, 0,
        "clean load run: {net_stats:?}"
    );
    assert_eq!(net_stats.dropped_conns, 0, "clean load run: {net_stats:?}");
    assert_eq!(net_stats.handler_panics, 0, "clean load run: {net_stats:?}");
    assert!(
        net_stats.pages_served > 0,
        "the paginated scenario must serve follow-up pages"
    );

    let scenarios = [hot, mixed, paginated];
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"exp_load_bench\",");
    let _ = writeln!(json, "  \"pr\": 9,");
    let _ = writeln!(json, "  \"hardware\": {},", hardware_json());
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"name\": \"WDC\", \"tables\": {}, \"columns\": {}, \"rows\": {}}},",
        catalog.table_count(),
        catalog.column_count(),
        catalog.total_rows()
    );
    let _ = writeln!(json, "  \"workload_queries\": {},", specs.len());
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests_per_client\": {per_client},");
    let _ = writeln!(json, "  \"page_size\": {page_size},");
    json.push_str("  \"scenarios\": {\n");
    for (i, s) in scenarios.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"requests\": {}, \"wall_ms\": {:.3}, \"qps\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}",
            s.name,
            s.requests,
            s.wall_ms,
            s.qps,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            if i + 1 == scenarios.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"server\": {{\"queries\": {}, \"result_cache_hits\": {}, \"frames_in\": {}, \"frames_out\": {}, \"pages_served\": {}, \"accepted_conns\": {}}}",
        serve_stats.queries,
        serve_stats.result_cache.hits,
        net_stats.frames_in,
        net_stats.frames_out,
        net_stats.pages_served,
        net_stats.accepted
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

struct RouteBench {
    catalog: Arc<ver_store::catalog::TableCatalog>,
    index: Arc<ver_index::DiscoveryIndex>,
    specs: Vec<ViewSpec>,
    serve_config: ServeConfig,
    clients: usize,
    per_client: usize,
    smoke: bool,
    out_path: String,
    hw: usize,
}

/// The `--route` datapoint: a router server fanning out to two shard-leg
/// servers over loopback, measured healthy and with one leg stopped.
fn route_bench(b: RouteBench) {
    const LEGS: usize = 2;

    // Two shard-leg servers, each a plain single engine answering
    // `ShardQuery`, plus the router over their addresses.
    let mut leg_handles: Vec<ServerHandle> = (0..LEGS)
        .map(|_| {
            let leg = ServeEngine::warm_start(
                Arc::clone(&b.catalog),
                Arc::clone(&b.index),
                b.serve_config.clone(),
            )
            .expect("leg warm start");
            spawn_server(leg)
        })
        .collect();
    let addrs: Vec<std::net::SocketAddr> = leg_handles.iter().map(|h| h.addr()).collect();
    let spawn_router = || {
        let router = RouterEngine::warm_start(
            Arc::clone(&b.catalog),
            Arc::clone(&b.index),
            b.serve_config.clone(),
            &addrs,
            RetryPolicy::default(),
        )
        .expect("router warm start");
        spawn_backend(Backend::Router(Arc::new(router)))
    };
    let mut handle = spawn_router();
    let addr = handle.addr();

    // Pre-warm the workload through the router so hot_cache measures the
    // wire + result LRU, exactly like the single-server bench.
    {
        let mut client = Client::connect(addr).expect("connect");
        for spec in &b.specs {
            let result = client.query(spec, 0, 0).expect("pre-warm routed query");
            assert!(!result.partial, "healthy fan-out must answer completely");
        }
    }

    let specs = &b.specs;
    let (clients, per_client) = (b.clients, b.per_client);

    // Scenario 1: result-cache hits through the router front end.
    let hot = run_scenario("routed_hot_cache", addr, clients, per_client, 0, |c, i| {
        specs[(i + c * specs.len() / clients) % specs.len()].clone()
    });
    eprintln!(
        "  routed_hot_cache: {} req, {:.1} qps, p50 {:.2} ms, p99 {:.2} ms",
        hot.requests, hot.qps, hot.p50_ms, hot.p99_ms
    );

    // Scenario 2: never-seen keyword specs — every request scatters to
    // both legs and merges centrally.
    let scatter = run_scenario("routed_scatter", addr, clients, per_client, 0, |c, i| {
        ViewSpec::Keyword(vec![format!("fresh_term_{c}_{i}")])
    });
    eprintln!(
        "  routed_scatter: {} req, {:.1} qps, p50 {:.2} ms, p99 {:.2} ms",
        scatter.requests, scatter.qps, scatter.p50_ms, scatter.p99_ms
    );

    // Healthy-phase health check before the controlled failure.
    let (healthy_serve, healthy_net) = {
        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats().expect("stats");
        client.shutdown().expect("shutdown");
        (stats.serve, stats.net)
    };
    assert_eq!(healthy_net.protocol_errors, 0, "clean run: {healthy_net:?}");
    assert_eq!(healthy_net.handler_panics, 0, "clean run: {healthy_net:?}");
    assert_eq!(
        healthy_serve.partial_results, 0,
        "no degradation while both legs are up: {healthy_serve:?}"
    );
    handle.stop();

    // Scenario 3: stop one leg for good, then the same scatter load
    // through a fresh router (fresh leg connections — a stopped accept
    // loop cannot refuse the pooled connections the first router already
    // holds). Every request must still be answered — degraded to partial
    // by the retry/backoff/breaker envelope, never an error. The first
    // few queries pay the full retry budget against the refused port;
    // once the breaker opens the dead leg costs one fast rejection (plus
    // a probe per cooldown).
    leg_handles[1].stop();
    let mut handle = spawn_router();
    let addr = handle.addr();
    let one_dead = run_scenario(
        "routed_scatter_one_dead",
        addr,
        clients,
        per_client,
        0,
        |c, i| ViewSpec::Keyword(vec![format!("dead_term_{c}_{i}")]),
    );
    eprintln!(
        "  routed_scatter_one_dead: {} req, {:.1} qps, p50 {:.2} ms, p99 {:.2} ms",
        one_dead.requests, one_dead.qps, one_dead.p50_ms, one_dead.p99_ms
    );

    let (serve_stats, net_stats, router_legs) = {
        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats().expect("stats");
        client.shutdown().expect("shutdown");
        (stats.serve, stats.net, stats.router)
    };
    handle.stop();
    // The router's own front end must have stayed clean through the leg
    // death; the casualties live in the per-leg stats.
    assert_eq!(net_stats.protocol_errors, 0, "clean run: {net_stats:?}");
    assert_eq!(net_stats.dropped_conns, 0, "clean run: {net_stats:?}");
    assert_eq!(net_stats.handler_panics, 0, "clean run: {net_stats:?}");
    assert!(
        serve_stats.partial_results as usize >= clients * per_client,
        "every dead-leg answer must be partial: {serve_stats:?}"
    );
    assert!(
        router_legs[1].failovers > 0,
        "the stopped leg must show failovers: {router_legs:?}"
    );

    let scenarios = [hot, scatter, one_dead];
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"exp_load_bench\",");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(json, "  \"mode\": \"router\",");
    let _ = writeln!(json, "  \"legs\": {LEGS},");
    let _ = writeln!(json, "  \"hardware\": {},", hardware_json());
    let _ = writeln!(json, "  \"hardware_threads\": {},", b.hw);
    let _ = writeln!(json, "  \"smoke\": {},", b.smoke);
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"name\": \"WDC\", \"tables\": {}, \"columns\": {}, \"rows\": {}}},",
        b.catalog.table_count(),
        b.catalog.column_count(),
        b.catalog.total_rows()
    );
    let _ = writeln!(json, "  \"workload_queries\": {},", specs.len());
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests_per_client\": {per_client},");
    json.push_str("  \"scenarios\": {\n");
    for (i, s) in scenarios.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"requests\": {}, \"wall_ms\": {:.3}, \"qps\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}",
            s.name,
            s.requests,
            s.wall_ms,
            s.qps,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            if i + 1 == scenarios.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"router_legs\": [\n");
    for (i, leg) in router_legs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"addr\": \"{}\", \"attempts\": {}, \"retries\": {}, \"failures\": {}, \"failovers\": {}, \"breaker\": {}}}{}",
            leg.addr,
            leg.attempts,
            leg.retries,
            leg.failures,
            leg.failovers,
            leg.breaker,
            if i + 1 == router_legs.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"router_healthy\": {{\"queries\": {}, \"result_cache_hits\": {}, \"partial_results\": {}, \"frames_in\": {}, \"frames_out\": {}}},",
        healthy_serve.queries,
        healthy_serve.result_cache.hits,
        healthy_serve.partial_results,
        healthy_net.frames_in,
        healthy_net.frames_out
    );
    let _ = writeln!(
        json,
        "  \"router_one_dead\": {{\"queries\": {}, \"result_cache_hits\": {}, \"partial_results\": {}, \"frames_in\": {}, \"frames_out\": {}}}",
        serve_stats.queries,
        serve_stats.result_cache.hits,
        serve_stats.partial_results,
        net_stats.frames_in,
        net_stats.frames_out
    );
    json.push_str("}\n");

    std::fs::write(&b.out_path, &json).expect("write bench report");
    println!("{json}");
    eprintln!("wrote {}", b.out_path);
}
