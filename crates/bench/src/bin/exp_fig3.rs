//! Fig. 3 — VIEW-DISTILLATION scalability: total runtime, get-views (IO)
//! time and 4C runtime vs corpus sample portion (25/50/75/100%), with the
//! number of views on the secondary axis.
//!
//! Runs 50 random queries per portion (the paper's setup) and reports the
//! min/median/max runtimes plus median view counts.
//!
//! Paper shape: total runtime grows roughly linearly with the number of
//! views; IO dominates; pure 4C time is comparatively small.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ver_bench::{print_table, setup_opendata};
use ver_common::stats::Summary;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::ViewSpec;

fn main() {
    let mut rows = Vec::new();
    for portion in [0.25, 0.5, 0.75, 1.0] {
        let setup = setup_opendata(portion);
        // Enable the CSV round-trip so VD-IO is a real disk cost.
        let mut config = setup.ver.config().clone();
        config.simulate_view_io = true;
        config.search.k = 1_000; // bound per-query materialization (shape, not scale)
        let ver = ver_core::Ver::build(setup.ver.catalog().clone(), config)
            .expect("rebuild with IO simulation");

        let mut rng = StdRng::seed_from_u64(0xF163); // same queries at every portion
        let mut totals = Vec::new();
        let mut io_times = Vec::new();
        let mut c4_times = Vec::new();
        let mut view_counts = Vec::new();
        let queries = 20;
        for _ in 0..queries {
            let gt = &setup.gts[rng.gen_range(0..setup.gts.len())];
            let q = match generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, rng.gen()) {
                Ok(q) => q,
                Err(_) => continue,
            };
            let result = match ver.run(&ViewSpec::Qbe(q)) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let io = result.timer.get("vd_io").as_secs_f64() * 1e3;
            let c4 = result.timer.get("4c").as_secs_f64() * 1e3;
            io_times.push(io);
            c4_times.push(c4);
            totals.push(io + c4);
            view_counts.push(result.views.len() as f64);
        }
        let fmt = |s: Option<Summary>| {
            s.map(|s| format!("{:.2}/{:.2}/{:.2}", s.min, s.median, s.max))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            format!("{:.0}%", portion * 100.0),
            fmt(Summary::of(&totals)),
            fmt(Summary::of(&io_times)),
            fmt(Summary::of(&c4_times)),
            Summary::of(&view_counts)
                .map(|s| format!("{:.0}", s.median))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print_table(
        "Fig. 3: Distillation scalability by sample portion (times in ms, min/med/max over 50 queries)",
        &["Portion", "Total", "Get Views (IO)", "4C", "median #Views"],
        &rows,
    );
    println!(
        "\npaper shape check: totals grow with portion (≈ linear in #views); \
         the IO component dominates the 4C component."
    );
}
