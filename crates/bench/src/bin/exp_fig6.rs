//! Fig. 6 — search-space sizes on WDC (same layout as Fig. 5).

use ver_bench::{eval_search_config, print_table, run_strategy, setup_wdc, EvalSetup, Strategy};
use ver_datagen::workload::{find_ground_truth_view, materialize_ground_truth};
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};

fn main() {
    let setup = setup_wdc();
    let search = eval_search_config();
    let EvalSetup { ver, gts, .. } = &setup;
    let mut rows = Vec::new();
    for gt in gts {
        let gt_view = materialize_ground_truth(ver.catalog(), ver.index(), gt, 2).ok();
        for level in NoiseLevel::all() {
            let query = match generate_noisy_query(ver.catalog(), gt, level, 3, 0xF166) {
                Ok(q) => q,
                Err(_) => continue,
            };
            for strat in Strategy::all() {
                let out = run_strategy(ver, &query, strat, &search);
                let hit = gt_view
                    .as_ref()
                    .map(|g| find_ground_truth_view(&out.views, g).is_some());
                rows.push(vec![
                    gt.name.clone(),
                    level.label().to_string(),
                    strat.label().to_string(),
                    out.stats.joinable_groups.to_string(),
                    out.stats.join_graphs.to_string(),
                    out.stats.views.to_string(),
                    hit.map(|h| if h { "1" } else { "0" }.to_string())
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
        }
    }
    print_table(
        "Fig. 6: #joinable groups / join graphs / views on WDC",
        &[
            "Query",
            "Noise",
            "Strategy",
            "JoinableGroups",
            "JoinGraphs",
            "Views",
            "GT hit",
        ],
        &rows,
    );
    println!(
        "\npaper shape check: SA rows dominate CS rows on all three counts \
         (WDC amplifies the gap — web tables make everything joinable)."
    );
}
