//! §VI-D — qualitative study: why SQuID-style abduction does not scale to
//! pathless collections. SQuID precomputes an abduction-ready database
//! (αDB); the paper observes a 5.9M-row table yields an 8.1M-row αDB.
//! We report the modelled αDB blow-up for each corpus next to the raw data.

use ver_bench::{print_table, setup_chembl, setup_opendata, setup_wdc};
use ver_select::baselines::squid_alpha_db_rows;

fn main() {
    let mut rows = Vec::new();
    for setup in [setup_chembl(), setup_wdc(), setup_opendata(1.0)] {
        let cat = setup.ver.catalog();
        let raw = cat.total_rows();
        let alpha = squid_alpha_db_rows(cat);
        rows.push(vec![
            setup.label.to_string(),
            raw.to_string(),
            alpha.to_string(),
            format!("{:.2}x", alpha as f64 / raw.max(1) as f64),
        ]);
    }
    print_table(
        "§VI-D: modelled SQuID αDB blow-up",
        &["Dataset", "Raw rows", "αDB rows", "Blow-up"],
        &rows,
    );
    println!(
        "\npaper shape check: αDB ≥ raw data on every corpus (paper: \
         5.9M → 8.1M on one ChEMBL table), making precomputation \
         impractical without human-curated key/attribute pairs."
    );
}
