//! Table V — Ground Truth Hit Ratio over the 150-query noisy workload,
//! split by noise level, for SELECT-ALL (SA), SELECT-BEST (SB) and
//! COLUMN-SELECTION (CS).
//!
//! Paper shape: all ≈ 1.0 at zero noise; SB collapses to ≈ 0 under
//! medium/high noise; SA and CS stay ≈ 1.0.

use ver_bench::{eval_search_config, print_table, run_strategy, EvalSetup, Strategy};
use ver_common::fxhash::FxHashMap;
use ver_datagen::workload::{find_ground_truth_view, generate_workload, materialize_ground_truth};
use ver_qbe::noise::NoiseLevel;

fn main() {
    let search = eval_search_config();
    // hits[(strategy, level)] = (hits, total)
    let mut tally: FxHashMap<(&'static str, &'static str), (usize, usize)> = FxHashMap::default();

    for setup in [ver_bench::setup_chembl(), ver_bench::setup_wdc()] {
        let EvalSetup { label, ver, gts } = &setup;
        let workload =
            generate_workload(ver.catalog(), gts, 5, 3, 0x150).expect("workload generation");
        eprintln!("[{label}] running {} workload queries…", workload.len());
        for wq in &workload {
            let gt_view = match materialize_ground_truth(ver.catalog(), ver.index(), &wq.gt, 2) {
                Ok(v) => v,
                Err(_) => continue,
            };
            for strat in Strategy::all() {
                let out = run_strategy(ver, &wq.query, strat, &search);
                let hit = find_ground_truth_view(&out.views, &gt_view).is_some();
                let cell = tally
                    .entry((strat.label(), wq.level.label()))
                    .or_insert((0, 0));
                cell.0 += usize::from(hit);
                cell.1 += 1;
            }
        }
    }

    let ratio = |s: &str, l: &str| {
        let (h, t) = tally
            .get(&(s_label(s), l_label(l)))
            .copied()
            .unwrap_or((0, 0));
        if t == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", h as f64 / t as f64)
        }
    };
    fn s_label(s: &str) -> &'static str {
        match s {
            "SA" => "SA",
            "SB" => "SB",
            _ => "CS",
        }
    }
    fn l_label(l: &str) -> &'static str {
        match l {
            "Zero" => "Zero",
            "Med" => "Med",
            _ => "High",
        }
    }

    let rows: Vec<Vec<String>> = NoiseLevel::all()
        .iter()
        .map(|lvl| {
            vec![
                lvl.label().to_string(),
                ratio("SA", lvl.label()),
                ratio("SB", lvl.label()),
                ratio("CS", lvl.label()),
            ]
        })
        .collect();
    print_table(
        "Table V: Ground Truth Hit Ratio (150 noisy queries)",
        &["Noise", "SA", "SB", "CS"],
        &rows,
    );
    println!(
        "\npaper shape check: row 'Zero' ≈ 1.0 everywhere; \
         SB crumbles at Med/High (paper: 0.08 / 0.02) while SA and CS stay ≈ 1.0."
    );
}
