//! `exp_bench_report` — the per-PR perf trajectory.
//!
//! Times the hot paths this repo optimises — offline index build
//! (1 / 2 / auto threads), the online query path (join-graph search,
//! view materialization, and the 4C distillation pass, each at 1 / 2 /
//! auto threads), the sketching kernels (MinHash signature, LSH band
//! hashing, containment merge — SIMD vs. scalar reference over the full
//! corpus), the shared sub-join DAG executor against the independent
//! per-candidate materializer (with the DAG's shared-edge hit counters),
//! and the hash-join micro-kernel — on the standard corpora, and
//! writes a machine-readable `BENCH_<n>.json` so successive PRs accumulate
//! a comparable perf series. Every report embeds the bench host's hardware
//! context (thread count, CPU features, active SIMD backend).
//!
//! ```text
//! cargo run --release --bin exp_bench_report                 # full corpora → BENCH_<pr>.json
//! cargo run --release --bin exp_bench_report -- --smoke      # reduced corpora (CI)
//! cargo run --release --bin exp_bench_report -- --pr 3       # label for PR 3 → BENCH_3.json
//! cargo run --release --bin exp_bench_report -- --out p.json # custom output path
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use ver_bench::{eval_search_config, hardware_json, run_strategy, verify_exact_for, Strategy};
use ver_common::fxhash::fx_hash_u64;
use ver_common::pool::resolve_threads;
use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::{chembl_ground_truths, wdc_ground_truths};
use ver_distill::{distill, DistillConfig};
use ver_engine::join::hash_join;
use ver_index::{
    build_index, hashed_containment, hashed_containment_scalar, IndexConfig, LshIndex, MinHasher,
};
use ver_qbe::groundtruth::GroundTruth;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_search::{MaterializeStats, SearchConfig};
use ver_store::catalog::TableCatalog;
use ver_store::table::{Table, TableBuilder};

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(ms);
    }
    best
}

/// One online pass over the ground-truth queries at a fixed worker count:
/// summed JGS, materialization, and 4C wall times (the Fig. 4b split plus
/// distillation).
#[derive(Debug, Clone, Copy, Default)]
struct OnlineTimes {
    jgs_ms: f64,
    materialize_ms: f64,
    distill_4c_ms: f64,
}

/// Shared sub-join DAG vs. independent per-candidate materialization over
/// one corpus's workload: accumulated DAG counters (PR 6) plus the
/// materialize-phase wall clock of both executors at one worker thread.
#[derive(Debug, Clone, Copy, Default)]
struct DagReport {
    stats: MaterializeStats,
    dag_ms: f64,
    independent_ms: f64,
}

impl DagReport {
    fn speedup(&self) -> f64 {
        self.independent_ms / self.dag_ms
    }
}

/// End-to-end query latency of the scatter/gather path at one shard count.
#[derive(Debug, Clone, Copy)]
struct ShardTimes {
    shards: usize,
    query_ms: f64,
}

/// PR 8's sharded serving section: the full pipeline run single-engine vs.
/// scattered over 1 / 2 / 4 logical shards, outputs asserted bit-identical
/// (determinism invariant 11) while timing.
#[derive(Debug, Clone, Default)]
struct ShardingReport {
    queries: usize,
    single_ms: f64,
    per_count: Vec<ShardTimes>,
}

struct CorpusReport {
    name: &'static str,
    tables: usize,
    columns: usize,
    rows: usize,
    build_ms_1: f64,
    build_ms_2: f64,
    build_ms_auto: f64,
    queries: usize,
    views: usize,
    online_1: OnlineTimes,
    online_2: OnlineTimes,
    online_auto: OnlineTimes,
    dag: DagReport,
    sharding: ShardingReport,
}

fn index_config(threads: usize, verify_exact: bool) -> IndexConfig {
    IndexConfig {
        threads,
        verify_exact,
        ..Default::default()
    }
}

/// Run every ground-truth query once with search + 4C pinned to `threads`
/// workers; returns summed stage times plus (queries, views) counters.
fn online_pass(ver: &Ver, gts: &[GroundTruth], threads: usize) -> (OnlineTimes, usize, usize) {
    let search_cfg = SearchConfig {
        threads,
        ..eval_search_config()
    };
    let distill_cfg = DistillConfig {
        threads,
        ..Default::default()
    };
    let mut t = OnlineTimes::default();
    let (mut queries, mut views) = (0usize, 0usize);
    for gt in gts {
        let Ok(query) = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 1) else {
            continue;
        };
        let out = run_strategy(ver, &query, Strategy::ColumnSelection, &search_cfg);
        t.jgs_ms += out.timer.get("jgs").as_secs_f64() * 1e3;
        t.materialize_ms += out.timer.get("materialize").as_secs_f64() * 1e3;
        let d = distill(&out.views, &distill_cfg);
        t.distill_4c_ms += d.timer.total().as_secs_f64() * 1e3;
        views += out.stats.views;
        queries += 1;
    }
    (t, queries, views)
}

/// Head-to-head materialization: every ground-truth query run through both
/// executors — the shared sub-join DAG (`dag_materialize: true`, the
/// default) and the independent per-candidate path — with the outputs
/// asserted bit-identical while timing. Best-of-`reps` materialize-phase
/// wall clock per query per arm, summed; DAG counters (distinct steps,
/// shared-edge hits, empty-pruned views) accumulated from the DAG arm.
fn dag_pass(ver: &Ver, gts: &[GroundTruth], reps: usize) -> DagReport {
    let dag_cfg = SearchConfig {
        threads: 1,
        ..eval_search_config()
    };
    let ind_cfg = SearchConfig {
        threads: 1,
        dag_materialize: false,
        ..eval_search_config()
    };
    let mut r = DagReport::default();
    for gt in gts {
        let Ok(query) = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 1) else {
            continue;
        };
        let (mut dag_best, mut ind_best) = (f64::INFINITY, f64::INFINITY);
        let (mut dag_out, mut ind_out) = (None, None);
        for _ in 0..reps.max(1) {
            let out = run_strategy(ver, &query, Strategy::ColumnSelection, &dag_cfg);
            dag_best = dag_best.min(out.timer.get("materialize").as_secs_f64() * 1e3);
            dag_out = Some(out);
            let out = run_strategy(ver, &query, Strategy::ColumnSelection, &ind_cfg);
            ind_best = ind_best.min(out.timer.get("materialize").as_secs_f64() * 1e3);
            ind_out = Some(out);
        }
        let (dag_out, ind_out) = (dag_out.unwrap(), ind_out.unwrap());
        // The invariant behind the timing: both executors produce the
        // identical ranked views — enforced even here.
        assert_eq!(dag_out.views.len(), ind_out.views.len());
        for (a, b) in dag_out.views.iter().zip(&ind_out.views) {
            assert!(
                a.same_contents(b),
                "DAG executor diverged from independent reference on {}",
                gt.name
            );
        }
        r.stats.accumulate(dag_out.dag);
        r.dag_ms += dag_best;
        r.independent_ms += ind_best;
    }
    r
}

/// Sharded scatter/gather vs. the single-engine pipeline over every
/// ground-truth query: best-of-`reps` end-to-end wall clock per query per
/// shard count, summed — with the merged output asserted bit-identical to
/// the single-engine run at every count (invariant 11), enforced even
/// here.
fn shard_pass(ver: &Ver, gts: &[GroundTruth], reps: usize) -> ShardingReport {
    let budget = ver_common::budget::QueryBudget::none();
    let mut report = ShardingReport {
        per_count: [1usize, 2, 4]
            .iter()
            .map(|&shards| ShardTimes {
                shards,
                query_ms: 0.0,
            })
            .collect(),
        ..Default::default()
    };
    for gt in gts {
        let Ok(query) = generate_noisy_query(ver.catalog(), gt, NoiseLevel::Zero, 3, 1) else {
            continue;
        };
        let spec = ver_qbe::ViewSpec::Qbe(query);
        let mut single = None;
        report.single_ms += best_ms(reps, || {
            single = Some(ver.run_budgeted(&spec, None, &budget).expect("single run"));
        });
        let single = single.unwrap();
        for entry in report.per_count.iter_mut() {
            let mut sharded = None;
            entry.query_ms += best_ms(reps, || {
                sharded = Some(
                    ver.run_sharded(&spec, None, &budget, entry.shards)
                        .expect("sharded run"),
                );
            });
            let sharded = sharded.unwrap();
            assert!(!sharded.partial, "{}: healthy scatter is complete", gt.name);
            assert_eq!(
                sharded.ranked, single.ranked,
                "{}: sharded ranking diverged at {} shards",
                gt.name, entry.shards
            );
            assert_eq!(sharded.views.len(), single.views.len());
            for (a, b) in sharded.views.iter().zip(&single.views) {
                assert!(
                    a.same_contents(b),
                    "{}: sharded view {} diverged at {} shards",
                    gt.name,
                    a.id,
                    entry.shards
                );
            }
        }
        report.queries += 1;
    }
    report
}

/// Time index builds (1/2/auto threads) and the online path (JGS +
/// materialization + 4C, likewise at 1/2/auto threads) over the corpus's
/// ground-truth queries.
fn report_corpus(
    name: &'static str,
    cat: TableCatalog,
    gts: Vec<GroundTruth>,
    reps: usize,
) -> CorpusReport {
    let verify_exact = verify_exact_for(&cat);
    let build_ms_1 = best_ms(reps, || {
        build_index(&cat, index_config(1, verify_exact)).unwrap()
    });
    let build_ms_2 = best_ms(reps, || {
        build_index(&cat, index_config(2, verify_exact)).unwrap()
    });
    let build_ms_auto = best_ms(reps, || {
        build_index(&cat, index_config(0, verify_exact)).unwrap()
    });

    let (tables, columns, rows) = (cat.table_count(), cat.column_count(), cat.total_rows());
    let config = VerConfig {
        index: index_config(0, verify_exact),
        ..VerConfig::default()
    };
    let ver = Ver::build(cat, config).expect("index build");

    let (online_1, queries, views) = online_pass(&ver, &gts, 1);
    let (online_2, ..) = online_pass(&ver, &gts, 2);
    let (online_auto, ..) = online_pass(&ver, &gts, 0);
    let dag = dag_pass(&ver, &gts, reps);
    let sharding = shard_pass(&ver, &gts, reps);

    CorpusReport {
        name,
        tables,
        columns,
        rows,
        build_ms_1,
        build_ms_2,
        build_ms_auto,
        queries,
        views,
        online_1,
        online_2,
        online_auto,
        dag,
        sharding,
    }
}

/// One kernel's scalar-vs-SIMD timing.
#[derive(Debug, Clone, Copy)]
struct KernelTimes {
    scalar_ms: f64,
    simd_ms: f64,
}

impl KernelTimes {
    fn speedup(&self) -> f64 {
        self.scalar_ms / self.simd_ms
    }
}

struct SketchKernelReport {
    columns: usize,
    values: usize,
    k: usize,
    minhash: KernelTimes,
    band_hash: KernelTimes,
    containment: KernelTimes,
}

/// Microbenchmark the three sketching kernels over every column of the
/// given corpora: the dispatched SIMD path against the scalar reference the
/// pre-SIMD builder ran. Outputs are asserted identical while timing — the
/// determinism invariant, enforced even here.
fn sketch_kernel_report(corpora: &[&TableCatalog], reps: usize) -> SketchKernelReport {
    let k = ver_index::minhash::DEFAULT_K;
    let hasher = MinHasher::new(k, 0x5eed);
    let hash_sets: Vec<Vec<u64>> = corpora
        .iter()
        .flat_map(|cat| cat.all_columns().map(|(_, cref)| cat.column(cref)))
        .map(|col| col.expect("registered column").distinct_hashes())
        .collect();
    let values: usize = hash_sets.iter().map(Vec::len).sum();

    // MinHash sketch: k seed lanes folded over every distinct value.
    let minhash = KernelTimes {
        scalar_ms: best_ms(reps, || {
            hash_sets
                .iter()
                .map(|h| hasher.signature_of_hashes_scalar(h.iter().copied(), h.len()))
                .collect::<Vec<_>>()
        }),
        simd_ms: best_ms(reps, || {
            hash_sets
                .iter()
                .map(|h| hasher.signature_of_hash_slice(h, h.len()))
                .collect::<Vec<_>>()
        }),
    };

    // LSH band hashing over the whole signature set (the builder's r = 1
    // containment-friendly banding: k bands of one row). The scalar arm is
    // the PR 4 insert path — one fx hash per band; the SIMD arm the batched
    // kernel. Both write a reused buffer so the hashing is what's timed.
    let signatures: Vec<_> = hash_sets
        .iter()
        .map(|h| hasher.signature_of_hash_slice(h, h.len()))
        .collect();
    let lsh = LshIndex::new(k, 1);
    let mut scratch: Vec<u64> = Vec::new();
    let band_hash = KernelTimes {
        scalar_ms: best_ms(reps, || {
            let mut acc = 0u64;
            for sig in &signatures {
                scratch.clear();
                scratch.extend((0..k).map(|band| fx_hash_u64(&sig.sig[band..band + 1])));
                acc ^= scratch[k - 1];
            }
            acc
        }),
        simd_ms: best_ms(reps, || {
            let mut acc = 0u64;
            for sig in &signatures {
                lsh.band_hashes_into(sig, &mut scratch);
                acc ^= scratch[k - 1];
            }
            acc
        }),
    };

    // Containment scoring over adjacent column pairs (mixed cardinality
    // skew, as verify_exact hypergraph construction sees it). The scalar
    // arm is the PR 4 builder's scoring — a full scalar merge per
    // direction; the SIMD arm is today's single shared merge with
    // galloping/block fast paths (`hashed_containment_max`).
    let pairs: Vec<(&[u64], &[u64])> = hash_sets
        .windows(2)
        .map(|w| (w[0].as_slice(), w[1].as_slice()))
        .collect();
    let containment = KernelTimes {
        scalar_ms: best_ms(reps, || {
            pairs
                .iter()
                .map(|(a, b)| hashed_containment_scalar(a, b).max(hashed_containment_scalar(b, a)))
                .sum::<f64>()
        }),
        simd_ms: best_ms(reps, || {
            pairs
                .iter()
                .map(|(a, b)| ver_index::hashed_containment_max(a, b))
                .sum::<f64>()
        }),
    };

    // The invariant behind all the timing: SIMD ≡ scalar, bit for bit.
    for (h, sig) in hash_sets.iter().zip(&signatures) {
        assert_eq!(
            &hasher.signature_of_hashes_scalar(h.iter().copied(), h.len()),
            sig,
            "SIMD sketch diverged from scalar reference"
        );
    }
    for (a, b) in &pairs {
        assert_eq!(
            hashed_containment_scalar(a, b).to_bits(),
            hashed_containment(a, b).to_bits(),
            "SIMD containment diverged from scalar reference"
        );
        assert_eq!(
            hashed_containment_scalar(a, b)
                .max(hashed_containment_scalar(b, a))
                .to_bits(),
            ver_index::hashed_containment_max(a, b).to_bits(),
            "symmetric-max containment diverged from two-call scalar form"
        );
    }

    SketchKernelReport {
        columns: hash_sets.len(),
        values,
        k,
        minhash,
        band_hash,
        containment,
    }
}

fn write_kernel(json: &mut String, label: &str, t: &KernelTimes, last: bool) {
    let _ = writeln!(
        json,
        "    \"{label}\": {{\"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \"speedup\": {:.3}}}{}",
        t.scalar_ms,
        t.simd_ms,
        t.speedup(),
        if last { "" } else { "," }
    );
}

fn join_table(name: &str, rows: usize) -> Table {
    let mut b = TableBuilder::new(name, &["k", "v"]);
    for i in 0..rows {
        b.push_row(vec![
            ver_common::value::Value::Int((i % (rows / 2).max(1)) as i64),
            ver_common::value::Value::text(format!("val{i}")),
        ])
        .unwrap();
    }
    b.build()
}

fn write_online(json: &mut String, label: &str, t: &OnlineTimes, last: bool) {
    let _ = writeln!(
        json,
        "        \"{label}\": {{\"jgs_ms\": {:.3}, \"materialize_ms\": {:.3}, \"distill_4c_ms\": {:.3}}}{}",
        t.jgs_ms,
        t.materialize_ms,
        t.distill_4c_ms,
        if last { "" } else { "," }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let pr: u32 = args
        .iter()
        .position(|a| a == "--pr")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--pr takes a number"))
        .unwrap_or(6);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("BENCH_{pr}.json"));
    let reps = if smoke { 1 } else { 3 };
    let hw = resolve_threads(0);

    let (wdc_tables, chembl_tables, chembl_compounds, join_rows) = if smoke {
        (60, 20, 60, 5_000)
    } else {
        (250, 70, 150, 20_000)
    };

    eprintln!("exp_bench_report: hardware_threads={hw} smoke={smoke} reps={reps}");

    let wdc = generate_wdc(&WdcConfig {
        n_tables: wdc_tables,
        ..Default::default()
    })
    .expect("wdc generation");
    let chembl = generate_chembl(&ChemblConfig {
        n_compounds: chembl_compounds,
        n_tables: chembl_tables,
        seed: 0xC4EB,
    })
    .expect("chembl generation");

    // Kernel microbenchmarks run over both corpora's columns before the
    // catalogs are consumed by the end-to-end passes.
    let kernels = sketch_kernel_report(&[&wdc, &chembl], reps.max(3));

    let wdc_gts = wdc_ground_truths(&wdc).expect("wdc ground truths");
    let wdc_report = report_corpus("WDC", wdc, wdc_gts, reps);
    let chembl_gts = chembl_ground_truths(&chembl).expect("chembl ground truths");
    let chembl_report = report_corpus("ChEMBL", chembl, chembl_gts, reps);

    let left = join_table("l", join_rows);
    let right = join_table("r", join_rows);
    let hash_join_ms = best_ms(reps.max(3), || hash_join(&left, 0, &right, 0).unwrap());

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"exp_bench_report\",");
    let _ = writeln!(json, "  \"pr\": {pr},");
    let _ = writeln!(json, "  \"hardware\": {},", hardware_json());
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    // Sketching kernels: dispatched SIMD path vs. the scalar reference the
    // pre-SIMD builder ran, over every column of both corpora.
    json.push_str("  \"sketch_kernels\": {\n");
    let _ = writeln!(
        json,
        "    \"k\": {}, \"columns\": {}, \"values\": {},",
        kernels.k, kernels.columns, kernels.values
    );
    write_kernel(&mut json, "minhash_signature", &kernels.minhash, false);
    write_kernel(&mut json, "lsh_band_hash", &kernels.band_hash, false);
    write_kernel(&mut json, "containment_merge", &kernels.containment, true);
    json.push_str("  },\n");
    json.push_str("  \"corpora\": [\n");
    for (i, r) in [&wdc_report, &chembl_report].iter().enumerate() {
        let speedup = r.build_ms_1 / r.build_ms_auto;
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"tables\": {},", r.tables);
        let _ = writeln!(json, "      \"columns\": {},", r.columns);
        let _ = writeln!(json, "      \"rows\": {},", r.rows);
        let _ = writeln!(
            json,
            "      \"index_build_ms\": {{\"threads_1\": {:.3}, \"threads_2\": {:.3}, \"threads_auto\": {:.3}}},",
            r.build_ms_1, r.build_ms_2, r.build_ms_auto
        );
        let _ = writeln!(json, "      \"auto_threads\": {hw},");
        let _ = writeln!(json, "      \"build_speedup_auto_vs_1\": {speedup:.3},");
        let _ = writeln!(json, "      \"search_queries\": {},", r.queries);
        let _ = writeln!(json, "      \"views_found\": {},", r.views);
        // Online query path (one pass over the ground-truth workload per
        // worker count; bit-identical output, so the times are comparable).
        json.push_str("      \"online\": {\n");
        write_online(&mut json, "threads_1", &r.online_1, false);
        write_online(&mut json, "threads_2", &r.online_2, false);
        write_online(&mut json, "threads_auto", &r.online_auto, true);
        json.push_str("      },\n");
        // Shared sub-join DAG vs. independent per-candidate execution
        // (both at one worker thread, outputs asserted bit-identical).
        json.push_str("      \"materialize_dag\": {\n");
        let _ = writeln!(
            json,
            "        \"candidates\": {}, \"total_steps\": {}, \"distinct_steps\": {}, \"shared_hits\": {}, \"empty_pruned\": {},",
            r.dag.stats.candidates,
            r.dag.stats.total_steps,
            r.dag.stats.distinct_steps,
            r.dag.stats.shared_hits,
            r.dag.stats.empty_pruned
        );
        let _ = writeln!(
            json,
            "        \"dag_ms\": {:.3}, \"independent_ms\": {:.3}, \"speedup\": {:.3}",
            r.dag.dag_ms,
            r.dag.independent_ms,
            r.dag.speedup()
        );
        json.push_str("      },\n");
        // Sharded scatter/gather: end-to-end pipeline latency per shard
        // count, outputs asserted bit-identical to the single-engine run
        // at every count (invariant 11).
        json.push_str("      \"sharding\": {\n");
        let _ = writeln!(
            json,
            "        \"queries\": {}, \"single_engine_ms\": {:.3},",
            r.sharding.queries, r.sharding.single_ms
        );
        let _ = writeln!(json, "        \"bit_identical\": true,");
        json.push_str("        \"per_shard_count\": [\n");
        for (j, t) in r.sharding.per_count.iter().enumerate() {
            let _ = writeln!(
                json,
                "          {{\"shards\": {}, \"query_ms\": {:.3}}}{}",
                t.shards,
                t.query_ms,
                if j + 1 == r.sharding.per_count.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        json.push_str("        ]\n");
        json.push_str("      }\n");
        json.push_str(if i == 0 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"hash_join\": {{\"rows_per_side\": {join_rows}, \"ms\": {hash_join_ms:.3}}}"
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
