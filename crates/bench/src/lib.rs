//! Shared harness for the experiment binaries (`src/bin/exp_*.rs`) and the
//! Criterion benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary that
//! regenerates its rows/series (see DESIGN.md §3 for the index). This
//! module centralises corpus construction, the three column-retrieval
//! strategies of RQ3, and plain-text table formatting so each binary stays
//! focused on its experiment.
//!
//! Layer 6 of the crate map in the repo-root `ARCHITECTURE.md`: the
//! experiment harness; also hosts the repo-root integration tests that
//! pin the determinism invariants.

pub mod golden;

use ver_core::{Ver, VerConfig};
use ver_datagen::chembl::{generate_chembl, ChemblConfig};
use ver_datagen::opendata::{generate_opendata, OpenDataConfig};
use ver_datagen::wdc::{generate_wdc, WdcConfig};
use ver_datagen::workload::{attach_noise_columns, chembl_ground_truths, wdc_ground_truths};
use ver_index::DiscoveryIndex;
use ver_qbe::groundtruth::GroundTruth;
use ver_qbe::query::ExampleQuery;
use ver_search::{SearchConfig, SearchContext, SearchOutput};
use ver_select::baselines::{select_all, select_best};
use ver_select::{column_selection, SelectionConfig};
use ver_store::catalog::TableCatalog;

/// The bench host's hardware context as a one-line JSON object:
/// hardware-thread count, detected CPU features, and the sketching-kernel
/// backend in use. Embedded in every `BENCH_*.json` so the perf trajectory
/// is machine-comparable — a "1-thread container" run or a forced-scalar
/// run identifies itself instead of relying on tribal knowledge.
pub fn hardware_json() -> String {
    let features = ver_common::simd::detected_cpu_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"hardware_threads\": {}, \"cpu_features\": [{}], \"simd_backend\": \"{}\", \"simd_forced_scalar\": {}}}",
        ver_common::pool::resolve_threads(0),
        features,
        ver_common::simd::active_backend().name(),
        ver_common::simd::forced_scalar(),
    )
}

/// A corpus prepared for evaluation: system + ground truths with attached
/// noise columns.
pub struct EvalSetup {
    /// Corpus label ("ChEMBL" / "WDC" / "OpenData").
    pub label: &'static str,
    /// The built system.
    pub ver: Ver,
    /// Ground-truth queries with noise columns attached.
    pub gts: Vec<GroundTruth>,
}

/// Standard evaluation scale for the ChEMBL-like corpus.
pub fn setup_chembl() -> EvalSetup {
    let cat = generate_chembl(&ChemblConfig {
        n_compounds: 150,
        n_tables: 70,
        seed: 0xC4EB,
    })
    .expect("chembl generation");
    build_setup("ChEMBL", cat, |cat| {
        chembl_ground_truths(cat).expect("gt resolve")
    })
}

/// Standard evaluation scale for the WDC-like corpus.
pub fn setup_wdc() -> EvalSetup {
    let cat = generate_wdc(&WdcConfig {
        n_tables: 250,
        ..Default::default()
    })
    .expect("wdc generation");
    build_setup("WDC", cat, |cat| {
        wdc_ground_truths(cat).expect("gt resolve")
    })
}

/// Open-data corpus at a sample portion (Fig. 3 / Fig. 4 setting).
pub fn setup_opendata(portion: f64) -> EvalSetup {
    let cat = generate_opendata(&OpenDataConfig {
        full_tables: 600,
        portion,
        seed: 0x0DA7A,
    })
    .expect("opendata generation");
    // Open-data ground truths: five state/city/country fact queries picked
    // from the generated templates (they exist at every portion because
    // portions are prefixes).
    build_setup("OpenData", cat, |cat| {
        let mut gts = Vec::new();
        for (i, t) in [
            "od_state_facts_0",
            "od_city_budget_1",
            "od_country_index_2",
            "od_state_facts_5",
            "od_city_budget_6",
        ]
        .iter()
        .enumerate()
        {
            if let Some(table) = cat.table_by_name(t) {
                gts.push(GroundTruth::new(
                    format!("OD-Q{}", i + 1),
                    vec![
                        ver_common::ids::ColumnRef {
                            table: table.id,
                            ordinal: 0,
                        },
                        ver_common::ids::ColumnRef {
                            table: table.id,
                            ordinal: 1,
                        },
                    ],
                ));
            }
        }
        gts
    })
}

/// Exact verification only for corpora small enough to afford it; the
/// open-data corpus relies on Lazo estimation (that is what the sketches
/// are for at scale). Shared by the eval setups and `exp_bench_report` so
/// the recorded perf trajectory times the same build mode the harness uses.
pub fn verify_exact_for(cat: &TableCatalog) -> bool {
    cat.table_count() <= 300
}

fn build_setup(
    label: &'static str,
    cat: TableCatalog,
    gts_fn: impl Fn(&TableCatalog) -> Vec<GroundTruth>,
) -> EvalSetup {
    let verify_exact = verify_exact_for(&cat);
    let config = VerConfig {
        index: ver_index::IndexConfig {
            threads: 0, // auto: one worker per hardware thread
            verify_exact,
            ..Default::default()
        },
        ..VerConfig::default()
    };
    let ver = Ver::build(cat, config).expect("index build");
    let gts = gts_fn(ver.catalog())
        .into_iter()
        .map(|g| attach_noise_columns(ver.catalog(), ver.index(), g, 0.75))
        .collect();
    EvalSetup { label, ver, gts }
}

/// The three column-retrieval strategies compared in RQ3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Ver's COLUMN-SELECTION (Algorithm 4).
    ColumnSelection,
    /// FastTopK-style SELECT-ALL.
    SelectAll,
    /// SQuID-style SELECT-BEST.
    SelectBest,
}

impl Strategy {
    /// All strategies in reporting order (SA, SB, CS — as in Table V).
    pub fn all() -> [Strategy; 3] {
        [
            Strategy::SelectAll,
            Strategy::SelectBest,
            Strategy::ColumnSelection,
        ]
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::ColumnSelection => "CS",
            Strategy::SelectAll => "SA",
            Strategy::SelectBest => "SB",
        }
    }
}

/// Run one strategy + join-graph search for a query.
pub fn run_strategy(
    ver: &Ver,
    query: &ExampleQuery,
    strategy: Strategy,
    search: &SearchConfig,
) -> SearchOutput {
    let index: &DiscoveryIndex = ver.index();
    let selection = match strategy {
        Strategy::ColumnSelection => column_selection(index, query, &SelectionConfig::default()),
        Strategy::SelectAll => select_all(index, query),
        Strategy::SelectBest => select_best(index, query),
    };
    SearchContext::new(ver.catalog(), index)
        .search(&selection, search)
        .expect("search succeeds")
}

/// Search configuration used by the experiments (paper defaults with a
/// combination cap so SELECT-ALL stays bounded).
pub fn eval_search_config() -> SearchConfig {
    SearchConfig {
        max_combinations: 20_000,
        ..SearchConfig::default()
    }
}

/// Plain-text table printer: pads cells, draws a header rule.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_qbe::noise::{generate_noisy_query, NoiseLevel};

    #[test]
    fn chembl_setup_is_ready_for_experiments() {
        let s = setup_chembl();
        assert_eq!(s.ver.catalog().table_count(), 70);
        assert_eq!(s.gts.len(), 5);
        // At least Q2 has a noise column (compound_synonyms).
        assert!(s
            .gts
            .iter()
            .any(|g| g.noise_columns.iter().any(Option::is_some)));
    }

    #[test]
    fn strategies_run_over_a_noisy_query() {
        let s = setup_chembl();
        let q = generate_noisy_query(s.ver.catalog(), &s.gts[4], NoiseLevel::Zero, 3, 1).unwrap();
        for strat in Strategy::all() {
            let out = run_strategy(&s.ver, &q, strat, &eval_search_config());
            assert!(out.stats.views >= 1, "{} found nothing", strat.label());
        }
    }

    #[test]
    fn opendata_portions_nest() {
        let quarter = setup_opendata(0.25);
        let half = setup_opendata(0.5);
        assert!(quarter.ver.catalog().table_count() < half.ver.catalog().table_count());
        assert!(!quarter.gts.is_empty());
    }
}
