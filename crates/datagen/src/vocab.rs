//! Deterministic vocabularies for the synthetic corpora.
//!
//! Real-world-flavoured word pools (US states, cities, countries) plus
//! synthesised pools (IATA codes, organisms, compound names) so generated
//! tables read like the paper's examples ("Find views containing IATA code
//! of airports in any of these states…").

/// The 50 US states.
pub const STATES: [&str; 50] = [
    "Alabama",
    "Alaska",
    "Arizona",
    "Arkansas",
    "California",
    "Colorado",
    "Connecticut",
    "Delaware",
    "Florida",
    "Georgia",
    "Hawaii",
    "Idaho",
    "Illinois",
    "Indiana",
    "Iowa",
    "Kansas",
    "Kentucky",
    "Louisiana",
    "Maine",
    "Maryland",
    "Massachusetts",
    "Michigan",
    "Minnesota",
    "Mississippi",
    "Missouri",
    "Montana",
    "Nebraska",
    "Nevada",
    "New Hampshire",
    "New Jersey",
    "New Mexico",
    "New York",
    "North Carolina",
    "North Dakota",
    "Ohio",
    "Oklahoma",
    "Oregon",
    "Pennsylvania",
    "Rhode Island",
    "South Carolina",
    "South Dakota",
    "Tennessee",
    "Texas",
    "Utah",
    "Vermont",
    "Virginia",
    "Washington",
    "West Virginia",
    "Wisconsin",
    "Wyoming",
];

/// 60 city names.
pub const CITIES: [&str; 60] = [
    "New York",
    "Los Angeles",
    "Chicago",
    "Houston",
    "Phoenix",
    "Philadelphia",
    "San Antonio",
    "San Diego",
    "Dallas",
    "San Jose",
    "Austin",
    "Jacksonville",
    "Fort Worth",
    "Columbus",
    "Charlotte",
    "San Francisco",
    "Indianapolis",
    "Seattle",
    "Denver",
    "Boston",
    "El Paso",
    "Nashville",
    "Detroit",
    "Oklahoma City",
    "Portland",
    "Las Vegas",
    "Memphis",
    "Louisville",
    "Baltimore",
    "Milwaukee",
    "Albuquerque",
    "Tucson",
    "Fresno",
    "Sacramento",
    "Kansas City",
    "Mesa",
    "Atlanta",
    "Omaha",
    "Colorado Springs",
    "Raleigh",
    "Miami",
    "Virginia Beach",
    "Oakland",
    "Minneapolis",
    "Tulsa",
    "Arlington",
    "Tampa",
    "New Orleans",
    "Wichita",
    "Cleveland",
    "Bakersfield",
    "Aurora",
    "Anaheim",
    "Honolulu",
    "Santa Ana",
    "Riverside",
    "Corpus Christi",
    "Lexington",
    "Indiana",
    "Virginia",
];

/// 60 country names.
pub const COUNTRIES: [&str; 60] = [
    "China",
    "India",
    "United States",
    "Indonesia",
    "Pakistan",
    "Brazil",
    "Nigeria",
    "Bangladesh",
    "Russia",
    "Mexico",
    "Japan",
    "Ethiopia",
    "Philippines",
    "Egypt",
    "Vietnam",
    "Congo",
    "Turkey",
    "Iran",
    "Germany",
    "Thailand",
    "France",
    "United Kingdom",
    "Italy",
    "South Africa",
    "Tanzania",
    "Myanmar",
    "Kenya",
    "South Korea",
    "Colombia",
    "Spain",
    "Uganda",
    "Argentina",
    "Algeria",
    "Sudan",
    "Ukraine",
    "Iraq",
    "Afghanistan",
    "Poland",
    "Canada",
    "Morocco",
    "Saudi Arabia",
    "Uzbekistan",
    "Peru",
    "Angola",
    "Malaysia",
    "Mozambique",
    "Ghana",
    "Yemen",
    "Nepal",
    "Venezuela",
    "Madagascar",
    "Cameroon",
    "Ivory Coast",
    "North Korea",
    "Australia",
    "Niger",
    "Taiwan",
    "Sri Lanka",
    "Georgia",
    "Mali",
];

/// Organism names for the ChEMBL-like corpus.
pub const ORGANISMS: [&str; 20] = [
    "Homo sapiens",
    "Mus musculus",
    "Rattus norvegicus",
    "Bos taurus",
    "Canis familiaris",
    "Gallus gallus",
    "Danio rerio",
    "Sus scrofa",
    "Macaca mulatta",
    "Oryctolagus cuniculus",
    "Cavia porcellus",
    "Escherichia coli",
    "Saccharomyces cerevisiae",
    "Plasmodium falciparum",
    "Mycobacterium tuberculosis",
    "Trypanosoma brucei",
    "Candida albicans",
    "Staphylococcus aureus",
    "Drosophila melanogaster",
    "Xenopus laevis",
];

/// Deterministically synthesise a pool of `n` pseudo-words from syllables
/// (used for compound names, church names, etc.). Stable across runs.
pub fn synth_words(prefix: &str, n: usize) -> Vec<String> {
    const SYLLABLES: [&str; 16] = [
        "ba", "cor", "dex", "fen", "gly", "hex", "lin", "mab", "nol", "pra", "quin", "rol", "sta",
        "tix", "vor", "zan",
    ];
    (0..n)
        .map(|i| {
            let a = SYLLABLES[i % 16];
            let b = SYLLABLES[(i / 16) % 16];
            let c = SYLLABLES[(i / 256) % 16];
            format!("{prefix}{a}{b}{c}{}", i / 4096)
        })
        .collect()
}

/// Synthesised 3-letter IATA-like codes, unique for `n ≤ 17576`.
pub fn iata_codes(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let a = (b'A' + (i / 676) as u8 % 26) as char;
            let b = (b'A' + (i / 26) as u8 % 26) as char;
            let c = (b'A' + (i % 26) as u8) as char;
            format!("{a}{b}{c}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn static_pools_have_no_duplicates() {
        assert_eq!(STATES.iter().collect::<HashSet<_>>().len(), 50);
        assert_eq!(CITIES.iter().collect::<HashSet<_>>().len(), 60);
        assert_eq!(COUNTRIES.iter().collect::<HashSet<_>>().len(), 60);
        assert_eq!(ORGANISMS.iter().collect::<HashSet<_>>().len(), 20);
    }

    #[test]
    fn synth_words_are_unique_and_stable() {
        let a = synth_words("cmp_", 5000);
        let b = synth_words("cmp_", 5000);
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<HashSet<_>>().len(), 5000);
        assert!(a[0].starts_with("cmp_"));
    }

    #[test]
    fn iata_codes_unique_up_to_limit() {
        let codes = iata_codes(2000);
        assert_eq!(codes.iter().collect::<HashSet<_>>().len(), 2000);
        assert!(codes.iter().all(|c| c.len() == 3));
    }
}
