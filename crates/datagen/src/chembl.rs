//! ChEMBL-like corpus: few tables, relational shape, FK-like join columns.
//!
//! Reproduces the structural causes behind the paper's ChEMBL insights:
//!
//! * **Compatible views** (Q3 insight): `assays` carries *both*
//!   `cell_name` and `cell_description`, which map one-to-one in
//!   `cell_dictionary`; join graphs through either key materialise
//!   identical views.
//! * **Contradictions from wrong join paths** (Q4 insight):
//!   `component_sequences.description` draws from the same value pool as
//!   `target_dictionary.pref_name` (containment ≥ 0.8), creating a spurious
//!   inclusion dependency next to the legitimate
//!   `target_components` bridge; the two paths disagree on
//!   `(organism, pref_name)`.
//! * **Noise columns** for the §VI-B noisy-query generator:
//!   `compound_synonyms.synonym` and `cell_aliases.alias_name` have ≥ 0.8
//!   containment w.r.t. their ground-truth columns plus genuinely novel
//!   values.
//!
//! Satellite tables pad the corpus to the paper's 70 tables while adding
//! realistic-but-benign join edges.

use crate::vocab::{synth_words, ORGANISMS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ver_common::error::Result;
use ver_common::value::Value;
use ver_store::catalog::TableCatalog;
use ver_store::table::TableBuilder;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ChemblConfig {
    /// Base entity row count (compounds; other tables scale off it).
    pub n_compounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Total tables to emit (core + satellites), paper: 70.
    pub n_tables: usize,
}

impl Default for ChemblConfig {
    fn default() -> Self {
        ChemblConfig {
            n_compounds: 300,
            seed: 0xC4EB,
            n_tables: 70,
        }
    }
}

/// Generate the ChEMBL-like catalog.
pub fn generate_chembl(config: &ChemblConfig) -> Result<TableCatalog> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cat = TableCatalog::new();

    let n_comp = config.n_compounds.max(50);
    let n_assay = n_comp;
    let n_cell = n_comp / 3;
    let n_target = n_comp / 2;
    let n_activities = n_comp * 2;

    let compound_names = synth_words("cmp", n_comp);
    let cell_names = synth_words("cell", n_cell);
    let cell_descriptions: Vec<String> = cell_names.iter().map(|n| format!("line {n}")).collect();
    // Shared pool: target names and component descriptions overlap heavily
    // (the wrong-join-path cause).
    let target_pool = synth_words("tgt", n_target + n_target / 4);

    // ── compounds ────────────────────────────────────────────────────────
    let mut b = TableBuilder::new("compounds", &["molregno", "compound_name", "mw"]);
    for (i, name) in compound_names.iter().enumerate() {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::text(name.clone()),
            Value::Int(150 + rng.gen_range(0..500)),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── compound_properties (molregno FK, full coverage) ────────────────
    let mut b = TableBuilder::new("compound_properties", &["molregno", "alogp", "psa"]);
    for i in 0..n_comp {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(-3..8)),
            Value::Int(rng.gen_range(10..140)),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── compound_synonyms: the noise column for compound_name ───────────
    // 80% existing names + 20% novel synonyms → containment 0.8.
    let mut b = TableBuilder::new("compound_synonyms", &["synonym", "syn_type"]);
    let n_syn = n_comp;
    for i in 0..n_syn {
        let name = if i < n_syn * 4 / 5 {
            compound_names[i].clone()
        } else {
            format!("{}-alt", compound_names[i % n_comp])
        };
        b.push_row(vec![
            Value::text(name),
            Value::text(if i % 2 == 0 { "trade" } else { "inn" }),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── cell_dictionary: 1:1 cell_name ↔ cell_description ────────────────
    let mut b = TableBuilder::new(
        "cell_dictionary",
        &["cell_id", "cell_name", "cell_description"],
    );
    for i in 0..n_cell {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::text(cell_names[i].clone()),
            Value::text(cell_descriptions[i].clone()),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── cell_aliases: noise column for cell_name ─────────────────────────
    let mut b = TableBuilder::new("cell_aliases", &["alias_name", "source"]);
    for i in 0..n_cell {
        let name = if i < n_cell * 4 / 5 {
            cell_names[i].clone()
        } else {
            format!("{}-v2", cell_names[i % n_cell])
        };
        b.push_row(vec![Value::text(name), Value::text("atlas")])?;
    }
    cat.add_table(b.build())?;

    // ── assays: carries BOTH cell_name and cell_description ─────────────
    let mut b = TableBuilder::new(
        "assays",
        &["assay_id", "cell_name", "cell_description", "assay_type"],
    );
    for i in 0..n_assay {
        let cell = rng.gen_range(0..n_cell);
        b.push_row(vec![
            Value::Int(i as i64),
            Value::text(cell_names[cell].clone()),
            Value::text(cell_descriptions[cell].clone()),
            Value::text(["B", "F", "A"][i % 3]),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── target_dictionary ────────────────────────────────────────────────
    let mut b = TableBuilder::new("target_dictionary", &["tid", "pref_name", "organism"]);
    for i in 0..n_target {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::text(target_pool[i].clone()),
            Value::text(ORGANISMS[i % ORGANISMS.len()]),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── component_sequences: description overlaps pref_name pool ────────
    // organism assignment deliberately *disagrees* with target_dictionary
    // so the wrong join path contradicts the right one.
    let mut b = TableBuilder::new(
        "component_sequences",
        &["component_id", "description", "organism"],
    );
    for i in 0..n_target {
        let desc_idx = if i < n_target * 9 / 10 {
            i
        } else {
            n_target + (i % (n_target / 4))
        };
        b.push_row(vec![
            Value::Int(i as i64),
            Value::text(target_pool[desc_idx].clone()),
            Value::text(ORGANISMS[(i + 7) % ORGANISMS.len()]),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── target_components bridge ─────────────────────────────────────────
    let mut b = TableBuilder::new("target_components", &["tid", "component_id"]);
    for i in 0..n_target {
        b.push_row(vec![Value::Int(i as i64), Value::Int(i as i64)])?;
    }
    cat.add_table(b.build())?;

    // ── activities ───────────────────────────────────────────────────────
    let mut b = TableBuilder::new(
        "activities",
        &["activity_id", "molregno", "assay_id", "standard_value"],
    );
    for i in 0..n_activities {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..n_comp) as i64),
            Value::Int(rng.gen_range(0..n_assay) as i64),
            Value::Int(rng.gen_range(1..10_000)),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── satellites to reach n_tables ─────────────────────────────────────
    // Each satellite references one entity key with fresh payload columns;
    // payload values are namespaced per table so satellites do not create
    // new text join edges among themselves.
    let entity_specs: [(&str, usize); 5] = [
        ("molregno", n_comp),
        ("assay_id", n_assay),
        ("tid", n_target),
        ("component_id", n_target),
        ("cell_id", n_cell),
    ];
    let core = cat.table_count();
    let mut sat = 0usize;
    while cat.table_count() < config.n_tables.max(core) {
        let (key_name, key_span) = entity_specs[sat % entity_specs.len()];
        let name = format!("satellite_{sat}_{key_name}");
        let payload = format!("attr_{sat}");
        let mut b = TableBuilder::new(name.as_str(), &[key_name, &payload, "recorded"]);
        let rows = key_span / 2 + rng.gen_range(0..key_span / 2).max(1);
        for r in 0..rows {
            b.push_row(vec![
                Value::Int(rng.gen_range(0..key_span) as i64),
                Value::text(format!("{name}_v{r}")),
                // Namespaced numeric payload: satellites join the spine via
                // their key column only (keeps joinable-pair counts in the
                // paper's few-hundred range for ~70 tables).
                Value::Int((sat as i64) * 1_000_000 + rng.gen_range(0..10_000)),
            ])?;
        }
        cat.add_table(b.build())?;
        sat += 1;
    }

    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_table_count() {
        let cat = generate_chembl(&ChemblConfig::default()).unwrap();
        assert_eq!(cat.table_count(), 70);
        assert!(cat.total_rows() > 1_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChemblConfig {
            n_compounds: 60,
            n_tables: 12,
            seed: 9,
        };
        let a = generate_chembl(&cfg).unwrap();
        let b = generate_chembl(&cfg).unwrap();
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table_by_name("assays").unwrap();
        let tb = b.table_by_name("assays").unwrap();
        assert_eq!(ta.cell(5, 1), tb.cell(5, 1));
    }

    #[test]
    fn cell_name_description_is_one_to_one() {
        let cat = generate_chembl(&ChemblConfig::default()).unwrap();
        let cd = cat.table_by_name("cell_dictionary").unwrap();
        let names = cd.column(1).unwrap();
        let descs = cd.column(2).unwrap();
        assert_eq!(names.distinct_count(), descs.distinct_count());
        assert_eq!(names.distinct_count(), cd.row_count());
    }

    #[test]
    fn synonym_noise_column_has_high_containment_and_novel_values() {
        let cat = generate_chembl(&ChemblConfig::default()).unwrap();
        let compounds = cat.table_by_name("compounds").unwrap();
        let syn = cat.table_by_name("compound_synonyms").unwrap();
        let c = ver_index::minhash::exact_containment(
            syn.column(0).unwrap(),
            compounds.column(1).unwrap(),
        );
        assert!((0.75..1.0).contains(&c), "containment {c} should be ≈ 0.8");
    }

    #[test]
    fn component_description_overlaps_target_names() {
        let cat = generate_chembl(&ChemblConfig::default()).unwrap();
        let td = cat.table_by_name("target_dictionary").unwrap();
        let cs = cat.table_by_name("component_sequences").unwrap();
        let c = ver_index::minhash::exact_containment(cs.column(1).unwrap(), td.column(1).unwrap());
        assert!(
            c >= 0.8,
            "wrong-join-path containment {c} must pass threshold"
        );
        // And the organisms disagree on shared names (contradiction fuel).
        assert_ne!(td.cell(0, 2), cs.cell(0, 2));
    }

    #[test]
    fn assays_carry_both_cell_keys() {
        let cat = generate_chembl(&ChemblConfig::default()).unwrap();
        let assays = cat.table_by_name("assays").unwrap();
        assert_eq!(assays.schema.ordinal_of("cell_name"), Some(1));
        assert_eq!(assays.schema.ordinal_of("cell_description"), Some(2));
    }
}
