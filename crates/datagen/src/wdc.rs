//! WDC-like corpus: thousands of tiny web tables over shared vocabularies.
//!
//! Structural properties preserved from the paper's WDC sample:
//!
//! * tables are tiny (≈ 4 columns × ≈ 14 rows on average in the real WDC);
//! * enormous joinable-pair count relative to table count (everything draws
//!   from the same state/city/country pools);
//! * **complementary unions** (Q2 insight): one shared `newspapers` table
//!   `(newspaper_title, state)` joins many `state_subset_*` tables with
//!   *different coverage* of states, so candidate `(state, newspaper_title)`
//!   views are pairwise complementary under the `state` key;
//! * **discriminative contradictions** (Q3 insight / Fig. 2): population
//!   tables come from two "camps" of sources that agree within a camp and
//!   disagree across camps for the same countries, so one contradiction
//!   signal covers many views at once.

use crate::vocab::{iata_codes, synth_words, CITIES, COUNTRIES, STATES};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ver_common::error::Result;
use ver_common::value::Value;
use ver_store::catalog::TableCatalog;
use ver_store::table::TableBuilder;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WdcConfig {
    /// Total tables (the real sample has 10 000; tests use fewer).
    pub n_tables: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of state-subset coverage tables (complementary fuel).
    pub n_state_subsets: usize,
    /// Number of population sources per camp (contradiction fuel).
    pub n_population_sources: usize,
}

impl Default for WdcConfig {
    fn default() -> Self {
        WdcConfig {
            n_tables: 800,
            seed: 0x3DC,
            n_state_subsets: 8,
            n_population_sources: 4,
        }
    }
}

/// Generate the WDC-like catalog.
pub fn generate_wdc(config: &WdcConfig) -> Result<TableCatalog> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cat = TableCatalog::new();

    let codes = iata_codes(STATES.len() * 3);
    let churches = synth_words("st_", 120);
    let papers = synth_words("gazette_", 80);

    // ── airports: (state, iata, city) — user-study Q1 ground truth ──────
    let mut b = TableBuilder::new("airports", &["state", "iata", "city"]);
    for (i, s) in STATES.iter().enumerate() {
        for j in 0..3 {
            b.push_row(vec![
                Value::text(*s),
                Value::text(codes[i * 3 + j].clone()),
                Value::text(CITIES[(i * 3 + j) % CITIES.len()]),
            ])?;
        }
    }
    cat.add_table(b.build())?;

    // ── churches: (state, church_name) — Q2-study ground truth ──────────
    let mut b = TableBuilder::new("churches", &["state", "church_name"]);
    for (i, c) in churches.iter().enumerate() {
        b.push_row(vec![
            Value::text(STATES[i % STATES.len()]),
            Value::text(c.clone()),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── newspapers: (newspaper_title, state) — shared side of Q2 ────────
    let mut b = TableBuilder::new("newspapers", &["newspaper_title", "state"]);
    for (i, p) in papers.iter().enumerate() {
        b.push_row(vec![
            Value::text(p.clone()),
            Value::text(STATES[i % STATES.len()]),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── state_subset_k: varying coverage of states (complementary) ──────
    for k in 0..config.n_state_subsets {
        let mut states: Vec<&str> = STATES.to_vec();
        states.shuffle(&mut rng);
        let coverage = 20 + rng.gen_range(0..25);
        let mut b = TableBuilder::new(
            format!("state_subset_{k}"),
            &["state", &format!("rank_{k}")],
        );
        for (i, s) in states.into_iter().take(coverage).enumerate() {
            b.push_row(vec![Value::text(s), Value::Int(i as i64 + 1)])?;
        }
        cat.add_table(b.build())?;
    }

    // ── population camps: (country, population) — contradictions ────────
    // Camp values are deterministic per (country, camp) so tables inside a
    // camp agree and camps disagree. Each source covers a *rotating window*
    // of countries: within-camp views overlap without being identical or
    // nested (so C1/C2 cannot collapse them), which makes each
    // contradiction signal cover many views — the paper's WDC Q3 insight.
    const POP_COUNTRIES: usize = 40;
    const WINDOW: usize = 30;
    for camp in 0..2 {
        for src in 0..config.n_population_sources {
            let mut b = TableBuilder::new(
                format!("population_camp{camp}_src{src}"),
                &["country", "population"],
            );
            let start = src * 5;
            for w in 0..WINDOW {
                let i = (start + w) % POP_COUNTRIES;
                // Camps agree on 80% of countries (real sources agree on
                // most entries). The ~0.8 containment between camp pop
                // columns puts both camps in one selection cluster, so
                // queries retrieve views from both camps — which then
                // contradict on the 20% of disagreeing countries.
                let disagree = i64::from(i % 5 == 4);
                let pop = 1_000_000 + (i as i64) * 137_000 + (camp as i64) * 911_333 * disagree;
                b.push_row(vec![Value::text(COUNTRIES[i]), Value::Int(pop)])?;
            }
            cat.add_table(b.build())?;
        }
    }

    // ── births per 1000: (country, births) — Q5-study ground truth ──────
    let mut b = TableBuilder::new("births_rates", &["country", "births_per_1000"]);
    for (i, c) in COUNTRIES.iter().take(40).enumerate() {
        b.push_row(vec![Value::text(*c), Value::Int(8 + (i as i64) % 30)])?;
    }
    cat.add_table(b.build())?;

    // ── country list (noise column for country: ~82% real + novel) ──────
    // Covers countries inside src0's window so containment w.r.t. the
    // ground-truth population column stays ≥ 0.8.
    let mut b = TableBuilder::new("country_codes", &["country", "code"]);
    for (i, c) in COUNTRIES.iter().take(28).enumerate() {
        b.push_row(vec![Value::text(*c), Value::Int(i as i64)])?;
    }
    for i in 0..6 {
        b.push_row(vec![
            Value::text(format!("Terra Nova {i}")),
            Value::Int(100 + i),
        ])?;
    }
    cat.add_table(b.build())?;

    // ── filler web tables: small, vocab-mixed, heavily joinable ─────────
    // Every other filler table is a *complete* entity list (full state /
    // city / country column) — web crawls are full of them, and complete
    // lists are what make the real WDC's joinable-pair count dwarf its
    // table count (every partial column is contained in every full list).
    let mut filler = 0usize;
    while cat.table_count() < config.n_tables {
        let rows = 6 + rng.gen_range(0..18);
        let complete = filler.is_multiple_of(2);
        let kind = (filler / 2) % 3;
        let name = format!("webtable_{filler}");
        let (col, pool): (&str, &[&str]) = match kind {
            0 => ("state", &STATES),
            1 => ("city", &CITIES),
            _ => ("country", &COUNTRIES),
        };
        let metric = ["value", "metric", "score"][kind];
        let mut b = TableBuilder::new(name.as_str(), &[col, metric]);
        if complete {
            for (i, v) in pool.iter().enumerate() {
                b.push_row(vec![
                    Value::text(*v),
                    Value::Int((filler * 1000 + i) as i64),
                ])?;
            }
        } else {
            for _ in 0..rows {
                b.push_row(vec![
                    Value::text(*pool.choose(&mut rng).expect("non-empty")),
                    Value::Int(rng.gen_range(0..1000)),
                ])?;
            }
        }
        cat.add_table(b.build())?;
        filler += 1;
    }

    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WdcConfig {
        WdcConfig {
            n_tables: 60,
            ..Default::default()
        }
    }

    #[test]
    fn reaches_requested_table_count_with_small_tables() {
        let cat = generate_wdc(&small()).unwrap();
        assert_eq!(cat.table_count(), 60);
        let avg_rows = cat.total_rows() as f64 / cat.table_count() as f64;
        assert!(avg_rows < 60.0, "web tables are small, avg = {avg_rows}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_wdc(&small()).unwrap();
        let b = generate_wdc(&small()).unwrap();
        assert_eq!(a.total_rows(), b.total_rows());
    }

    #[test]
    fn population_camps_conflict_across_but_agree_within() {
        let cat = generate_wdc(&small()).unwrap();
        let a0 = cat.table_by_name("population_camp0_src0").unwrap();
        let a1 = cat.table_by_name("population_camp0_src1").unwrap();
        let b0 = cat.table_by_name("population_camp1_src0").unwrap();
        // Look up a disagreeing country by value (index 9, 9 % 5 == 4;
        // sources cover rotated windows so search by value, not position).
        let country = a0.cell(9, 0).unwrap().clone();
        let find = |t: &ver_store::table::Table| -> Option<ver_common::value::Value> {
            (0..t.row_count())
                .find(|&r| t.cell(r, 0) == Some(&country))
                .and_then(|r| t.cell(r, 1).cloned())
        };
        let in_a0 = find(a0).expect("country in a0");
        let in_a1 = find(a1).expect("rotating windows share most countries");
        let in_b0 = find(b0).expect("camps cover the same windows");
        assert_eq!(in_a0, in_a1, "within-camp agreement");
        assert_ne!(in_a0, in_b0, "across-camp conflict");
    }

    #[test]
    fn within_camp_sources_are_not_nested() {
        let cat = generate_wdc(&small()).unwrap();
        let a0 = cat.table_by_name("population_camp0_src0").unwrap();
        let a1 = cat.table_by_name("population_camp0_src1").unwrap();
        let c01 =
            ver_index::minhash::exact_containment(a0.column(0).unwrap(), a1.column(0).unwrap());
        assert!(c01 < 1.0, "src0 not contained in src1 ({c01})");
        assert!(c01 > 0.5, "but they overlap substantially ({c01})");
    }

    #[test]
    fn state_subsets_have_varying_coverage() {
        let cat = generate_wdc(&small()).unwrap();
        let c0 = cat.table_by_name("state_subset_0").unwrap().row_count();
        let c1 = cat.table_by_name("state_subset_1").unwrap().row_count();
        assert!((20..50).contains(&c0));
        assert!((20..50).contains(&c1));
    }

    #[test]
    fn country_noise_column_has_high_containment() {
        let cat = generate_wdc(&small()).unwrap();
        let pop = cat.table_by_name("population_camp0_src0").unwrap();
        let codes = cat.table_by_name("country_codes").unwrap();
        let c =
            ver_index::minhash::exact_containment(codes.column(0).unwrap(), pop.column(0).unwrap());
        assert!((0.8..1.0).contains(&c), "containment {c}");
    }

    #[test]
    fn study_ground_truth_tables_exist() {
        let cat = generate_wdc(&small()).unwrap();
        for t in ["airports", "churches", "newspapers", "births_rates"] {
            assert!(cat.table_by_name(t).is_some(), "{t} missing");
        }
    }
}
