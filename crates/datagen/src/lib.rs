//! Synthetic pathless table collections for the Ver evaluation.
//!
//! The paper evaluates on ChEMBL, a WDC web-table sample, and 69K open-data
//! tables — none of which ship with this repository. Per the substitution
//! policy in DESIGN.md §2, this crate generates corpora that preserve the
//! *structural* properties each experiment depends on:
//!
//! * [`chembl`] — ~70 relational tables with shared FK-like key columns, a
//!   one-to-one alias pair (`cell_name`/`cell_description`, the paper's
//!   compatible-view cause), and ambiguous description columns that create
//!   wrong join paths (the contradiction cause in ChEMBL Q4's insight);
//! * [`wdc`] — thousands of tiny web tables over shared vocabularies
//!   (states, cities, countries) with varying key coverage (the
//!   complementary-union cause) and conflicting fact tables (census-style
//!   contradictions);
//! * [`opendata`] — a size-parameterised corpus with *nested* 25/50/75/100%
//!   subsamples for the scalability experiments (Fig. 3);
//! * [`vocab`] — the deterministic vocabularies behind all generators;
//! * [`workload`] — ground-truth queries, noise-column discovery via the
//!   index, noisy workloads (150-query Table V setup), and ground-truth
//!   view identification for hit-ratio measurement.
//!
//! Layer 5 of the crate map in the repo-root `ARCHITECTURE.md`:
//! evaluation infrastructure, not product code.

pub mod chembl;
pub mod opendata;
pub mod vocab;
pub mod wdc;
pub mod workload;

pub use chembl::{generate_chembl, ChemblConfig};
pub use opendata::{generate_opendata, OpenDataConfig};
pub use wdc::{generate_wdc, WdcConfig};
pub use workload::{
    attach_noise_columns, find_ground_truth_view, generate_workload, materialize_ground_truth,
    WorkloadQuery,
};
