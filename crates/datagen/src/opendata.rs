//! Open-Data-like corpus for the scalability experiments (Fig. 3 / Fig. 4).
//!
//! The paper subsamples its 69K-table Open Data corpus at 25/50/75/100%
//! with the guarantee that "all datasets present in a smaller size version
//! are also present in the larger sample". We reproduce that by generating
//! a deterministic full table list and taking prefixes, so
//! `generate_opendata(portion = 0.25)` ⊂ `generate_opendata(portion = 0.5)`
//! table-for-table.

use crate::vocab::{synth_words, CITIES, COUNTRIES, STATES};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ver_common::error::Result;
use ver_common::value::Value;
use ver_store::catalog::TableCatalog;
use ver_store::table::TableBuilder;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct OpenDataConfig {
    /// Table count at 100% (the paper: 69 407; default keeps experiments
    /// laptop-fast while preserving growth shape).
    pub full_tables: usize,
    /// Portion of the full corpus to emit, in `(0, 1]`.
    pub portion: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OpenDataConfig {
    fn default() -> Self {
        OpenDataConfig {
            full_tables: 1200,
            portion: 1.0,
            seed: 0x0DA7A,
        }
    }
}

/// Generate the Open-Data-like catalog at the configured portion.
pub fn generate_opendata(config: &OpenDataConfig) -> Result<TableCatalog> {
    assert!(
        config.portion > 0.0 && config.portion <= 1.0,
        "portion must be in (0, 1]"
    );
    let n = ((config.full_tables as f64) * config.portion).round() as usize;
    let mut cat = TableCatalog::new();
    let entity_pool = synth_words("od", 400);

    // Per-table RNG keyed by (seed, table index) so prefixes are identical
    // across portions.
    for t in 0..n {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
        let rows = 10 + rng.gen_range(0..60);
        match t % 5 {
            0 => {
                let mut b =
                    TableBuilder::new(format!("od_state_facts_{t}"), &["state", "measure", "year"]);
                for _ in 0..rows {
                    b.push_row(vec![
                        Value::text(*STATES.choose(&mut rng).expect("non-empty")),
                        Value::Int(rng.gen_range(0..100_000)),
                        // Bucketed years: a fabric that joins *some*
                        // unrelated tables (realistic for open data)
                        // without connecting all of them.
                        Value::Int(1700 + ((t % 100) as i64) * 3 + rng.gen_range(0..3)),
                    ])?;
                }
                cat.add_table(b.build())?;
            }
            1 => {
                let mut b = TableBuilder::new(
                    format!("od_city_budget_{t}"),
                    &["city", "department", "amount"],
                );
                for r in 0..rows {
                    b.push_row(vec![
                        Value::text(*CITIES.choose(&mut rng).expect("non-empty")),
                        Value::text(format!("dept_{}", r % 7)),
                        Value::Int(rng.gen_range(1_000..9_000_000)),
                    ])?;
                }
                cat.add_table(b.build())?;
            }
            2 => {
                let mut b =
                    TableBuilder::new(format!("od_country_index_{t}"), &["country", "indicator"]);
                for _ in 0..rows {
                    b.push_row(vec![
                        Value::text(*COUNTRIES.choose(&mut rng).expect("non-empty")),
                        Value::Int(rng.gen_range(0..1000)),
                    ])?;
                }
                cat.add_table(b.build())?;
            }
            3 => {
                let mut b =
                    TableBuilder::new(format!("od_entities_{t}"), &["entity", "category", "count"]);
                for _ in 0..rows {
                    b.push_row(vec![
                        Value::text(entity_pool.choose(&mut rng).expect("non-empty").clone()),
                        Value::text(format!("cat_{}", rng.gen_range(0..5))),
                        Value::Int(rng.gen_range(0..500)),
                    ])?;
                }
                cat.add_table(b.build())?;
            }
            _ => {
                // Headerless numeric logs — the noisy-schema case.
                let schema = ver_store::schema::TableSchema::new(
                    format!("od_log_{t}"),
                    vec![
                        ver_store::schema::ColumnMeta::anonymous(
                            ver_common::value::DataType::Unknown,
                        ),
                        ver_store::schema::ColumnMeta::anonymous(
                            ver_common::value::DataType::Unknown,
                        ),
                    ],
                );
                let mut b = TableBuilder::with_schema(schema);
                for _ in 0..rows {
                    b.push_row(vec![
                        Value::Int(rng.gen_range(0..10_000)),
                        Value::Int(rng.gen_range(0..10_000)),
                    ])?;
                }
                cat.add_table(b.build())?;
            }
        }
    }
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portions_scale_table_count() {
        let full = OpenDataConfig {
            full_tables: 100,
            portion: 1.0,
            ..Default::default()
        };
        let half = OpenDataConfig {
            portion: 0.5,
            ..full.clone()
        };
        assert_eq!(generate_opendata(&full).unwrap().table_count(), 100);
        assert_eq!(generate_opendata(&half).unwrap().table_count(), 50);
    }

    #[test]
    fn smaller_portion_is_a_prefix_of_larger() {
        let base = OpenDataConfig {
            full_tables: 80,
            portion: 1.0,
            ..Default::default()
        };
        let quarter = OpenDataConfig {
            portion: 0.25,
            ..base.clone()
        };
        let full = generate_opendata(&base).unwrap();
        let part = generate_opendata(&quarter).unwrap();
        for t in part.tables() {
            let big = full
                .table_by_name(t.name())
                .expect("subset table exists in full");
            assert_eq!(big.row_count(), t.row_count());
            assert_eq!(big.cell(0, 0), t.cell(0, 0));
        }
    }

    #[test]
    fn includes_noisy_headerless_tables() {
        let cat = generate_opendata(&OpenDataConfig {
            full_tables: 20,
            ..Default::default()
        })
        .unwrap();
        let log = cat.table_by_name("od_log_4").unwrap();
        assert!(log.schema.columns[0].name.is_none());
    }

    #[test]
    #[should_panic(expected = "portion")]
    fn zero_portion_panics() {
        let _ = generate_opendata(&OpenDataConfig {
            portion: 0.0,
            ..Default::default()
        });
    }
}
