//! Ground-truth queries and noisy workloads (§VI-B).
//!
//! The evaluation pipeline is: pick a ground-truth PJ-query → materialise
//! its ground-truth view → generate noisy example queries from its columns
//! (and their noise columns) → run a system → check whether the
//! ground-truth view appears among the candidates (Ground Truth Hit Ratio).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ver_common::error::{Result, VerError};
use ver_common::ids::ColumnRef;
use ver_engine::rowhash::table_hash_set;
use ver_engine::view::View;
use ver_index::DiscoveryIndex;
use ver_qbe::groundtruth::GroundTruth;
use ver_qbe::noise::{generate_noisy_query, NoiseLevel};
use ver_qbe::query::ExampleQuery;
use ver_store::catalog::TableCatalog;

/// One generated workload entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadQuery {
    /// Name ("ChEMBL-Q3/med/2").
    pub name: String,
    /// The ground truth it was generated from.
    pub gt: GroundTruth,
    /// Noise level.
    pub level: NoiseLevel,
    /// The noisy example query.
    pub query: ExampleQuery,
}

/// Resolve `(table, column)` names into a [`ColumnRef`].
pub fn resolve_column(catalog: &TableCatalog, table: &str, column: &str) -> Result<ColumnRef> {
    let t = catalog
        .table_by_name(table)
        .ok_or_else(|| VerError::NotFound(format!("table '{table}'")))?;
    let ordinal = t
        .schema
        .ordinal_of(column)
        .ok_or_else(|| VerError::NotFound(format!("column '{table}.{column}'")))?;
    Ok(ColumnRef {
        table: t.id,
        ordinal: ordinal as u16,
    })
}

/// The five ChEMBL ground-truth queries (2 attributes each, per §VI-B).
pub fn chembl_ground_truths(catalog: &TableCatalog) -> Result<Vec<GroundTruth>> {
    let gt = |name: &str, cols: [(&str, &str); 2]| -> Result<GroundTruth> {
        Ok(GroundTruth::new(
            name,
            vec![
                resolve_column(catalog, cols[0].0, cols[0].1)?,
                resolve_column(catalog, cols[1].0, cols[1].1)?,
            ],
        ))
    };
    Ok(vec![
        gt(
            "ChEMBL-Q1",
            [("assays", "cell_name"), ("assays", "assay_type")],
        )?,
        gt(
            "ChEMBL-Q2",
            [
                ("compounds", "compound_name"),
                ("activities", "standard_value"),
            ],
        )?,
        gt(
            "ChEMBL-Q3",
            [("cell_dictionary", "cell_name"), ("assays", "assay_type")],
        )?,
        gt(
            "ChEMBL-Q4",
            [
                ("component_sequences", "organism"),
                ("target_dictionary", "pref_name"),
            ],
        )?,
        gt(
            "ChEMBL-Q5",
            [("compounds", "compound_name"), ("compounds", "mw")],
        )?,
    ])
}

/// The five WDC ground-truth queries (mirroring Table II's tasks).
pub fn wdc_ground_truths(catalog: &TableCatalog) -> Result<Vec<GroundTruth>> {
    let gt = |name: &str, cols: [(&str, &str); 2]| -> Result<GroundTruth> {
        Ok(GroundTruth::new(
            name,
            vec![
                resolve_column(catalog, cols[0].0, cols[0].1)?,
                resolve_column(catalog, cols[1].0, cols[1].1)?,
            ],
        ))
    };
    Ok(vec![
        gt("WDC-Q1", [("airports", "state"), ("airports", "iata")])?,
        gt(
            "WDC-Q2",
            [
                ("state_subset_0", "state"),
                ("newspapers", "newspaper_title"),
            ],
        )?,
        gt(
            "WDC-Q3",
            [
                ("population_camp0_src0", "country"),
                ("population_camp0_src0", "population"),
            ],
        )?,
        gt(
            "WDC-Q4",
            [("churches", "state"), ("churches", "church_name")],
        )?,
        gt(
            "WDC-Q5",
            [
                ("births_rates", "country"),
                ("births_rates", "births_per_1000"),
            ],
        )?,
    ])
}

/// Find a noise column for every ground-truth attribute: a different column
/// with Jaccard containment ≥ `threshold` w.r.t. the ground-truth column
/// that also carries at least one novel value (otherwise sampling noise
/// from it is impossible). Leaves the slot `None` when no such column
/// exists — the noisy-query generator then falls back to clean sampling.
pub fn attach_noise_columns(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    mut gt: GroundTruth,
    threshold: f64,
) -> GroundTruth {
    for (i, cref) in gt.columns.clone().iter().enumerate() {
        let Ok(cid) = catalog.column_id(*cref) else {
            continue;
        };
        let Ok(gt_col) = catalog.column(*cref) else {
            continue;
        };
        // Borrow the ground-truth column's values instead of cloning them
        // into an owned set (`distinct_values()` clones every `Value`).
        let gt_values: ver_common::fxhash::FxHashSet<&ver_common::value::Value> =
            gt_col.non_null().collect();
        let mut best: Option<(f32, ColumnRef)> = None;
        for (ncid, score) in index.neighbors(cid, threshold) {
            let Ok(ncref) = catalog.column_ref(ncid) else {
                continue;
            };
            let Ok(ncol) = catalog.column(ncref) else {
                continue;
            };
            let has_novel = ncol.non_null().any(|v| !gt_values.contains(v));
            if !has_novel {
                continue;
            }
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, ncref));
            }
        }
        if let Some((_, ncref)) = best {
            gt = gt.with_noise_column(i, ncref);
        }
    }
    gt
}

/// Materialise the ground-truth view: take the best-scoring join graph over
/// the ground truth's tables and project its columns.
pub fn materialize_ground_truth(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    gt: &GroundTruth,
    rho: usize,
) -> Result<View> {
    let graphs = index.generate_join_graphs(&gt.tables, rho);
    let best = graphs
        .iter()
        .max_by(|a, b| {
            let sa = a.mean_score() / (1.0 + a.hops() as f64);
            let sb = b.mean_score() / (1.0 + b.hops() as f64);
            sa.partial_cmp(&sb).expect("finite")
        })
        .ok_or_else(|| {
            VerError::JoinError(format!(
                "ground truth '{}' tables are not joinable",
                gt.name
            ))
        })?;
    let plan = ver_search_plan(catalog, index, best, &gt.columns)?;
    ver_engine::exec::execute_plan(catalog, &plan, 1.0)
}

// Local copy of the plan linearisation (avoids a datagen → search
// dependency cycle: search depends on qbe which datagen also uses).
fn ver_search_plan(
    catalog: &TableCatalog,
    _index: &DiscoveryIndex,
    graph: &ver_index::JoinGraph,
    projection: &[ColumnRef],
) -> Result<ver_engine::PjPlan> {
    use ver_engine::plan::{JoinStep, PjPlan};
    let base = projection
        .first()
        .ok_or_else(|| VerError::InvalidQuery("empty projection".into()))?
        .table;
    if graph.edges.is_empty() {
        return Ok(PjPlan::single(base, projection.to_vec()));
    }
    let mut joins = Vec::new();
    let mut present = vec![base];
    let mut remaining: Vec<(ColumnRef, ColumnRef)> = graph
        .edges
        .iter()
        .map(|e| -> Result<(ColumnRef, ColumnRef)> {
            Ok((catalog.column_ref(e.left)?, catalog.column_ref(e.right)?))
        })
        .collect::<Result<_>>()?;
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|(a, b)| present.contains(&a.table) != present.contains(&b.table))
            .ok_or_else(|| VerError::JoinError("disconnected join graph".into()))?;
        let (a, b) = remaining.remove(pos);
        let (left, right) = if present.contains(&a.table) {
            (a, b)
        } else {
            (b, a)
        };
        joins.push(JoinStep { left, right });
        present.push(right.table);
    }
    Ok(PjPlan {
        base,
        joins,
        projection: projection.to_vec(),
    })
}

/// Does any candidate view *hit* the ground truth? A hit is a candidate
/// whose row set equals — or is a superset of — the ground-truth view's
/// rows with the same arity (supersets arise when a candidate was built
/// from a broader but correct join).
pub fn find_ground_truth_view(views: &[View], gt_view: &View) -> Option<ver_common::ids::ViewId> {
    let gt_set = table_hash_set(&gt_view.table);
    if gt_set.is_empty() {
        return None;
    }
    let arity = gt_view.table.column_count();
    // Prefer exact row-set equality, then superset containment.
    let mut superset: Option<ver_common::ids::ViewId> = None;
    for v in views {
        if v.table.column_count() != arity {
            continue;
        }
        let set = v.hash_set();
        if set == gt_set {
            return Some(v.id);
        }
        if superset.is_none() && gt_set.iter().all(|h| set.contains(h)) {
            superset = Some(v.id);
        }
    }
    superset
}

/// Generate the §VI-B workload: `per_gt` noisy queries per ground truth per
/// noise level (the paper: 5 GT × 3 levels × 5 queries × 2 corpora = 150).
pub fn generate_workload(
    catalog: &TableCatalog,
    gts: &[GroundTruth],
    per_gt: usize,
    rows: usize,
    seed: u64,
) -> Result<Vec<WorkloadQuery>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(gts.len() * 3 * per_gt);
    for gt in gts {
        for level in NoiseLevel::all() {
            for rep in 0..per_gt {
                let qseed = rng.gen::<u64>();
                let query = generate_noisy_query(catalog, gt, level, rows, qseed)?;
                out.push(WorkloadQuery {
                    name: format!("{}/{}/{}", gt.name, level.label(), rep),
                    gt: gt.clone(),
                    level,
                    query,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chembl::{generate_chembl, ChemblConfig};
    use crate::wdc::{generate_wdc, WdcConfig};
    use ver_index::{build_index, IndexConfig};

    fn chembl_small() -> (TableCatalog, DiscoveryIndex) {
        let cat = generate_chembl(&ChemblConfig {
            n_compounds: 80,
            n_tables: 14,
            seed: 5,
        })
        .unwrap();
        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        (cat, idx)
    }

    #[test]
    fn chembl_ground_truths_resolve() {
        let (cat, _) = chembl_small();
        let gts = chembl_ground_truths(&cat).unwrap();
        assert_eq!(gts.len(), 5);
        assert!(gts.iter().all(|g| g.arity() == 2));
    }

    #[test]
    fn wdc_ground_truths_resolve() {
        let cat = generate_wdc(&WdcConfig {
            n_tables: 40,
            ..Default::default()
        })
        .unwrap();
        let gts = wdc_ground_truths(&cat).unwrap();
        assert_eq!(gts.len(), 5);
    }

    #[test]
    fn noise_columns_attach_where_available() {
        let (cat, idx) = chembl_small();
        let gts = chembl_ground_truths(&cat).unwrap();
        // Q2 gt[0] = compounds.compound_name; compound_synonyms.synonym is
        // its designated noise column (containment ≈ 0.8, novel values).
        let q2 = attach_noise_columns(&cat, &idx, gts[1].clone(), 0.75);
        let syn = resolve_column(&cat, "compound_synonyms", "synonym").unwrap();
        assert_eq!(q2.noise_columns[0], Some(syn));
    }

    #[test]
    fn ground_truth_view_materialises() {
        let (cat, idx) = chembl_small();
        let gts = chembl_ground_truths(&cat).unwrap();
        for gt in &gts {
            let v = materialize_ground_truth(&cat, &idx, gt, 2).unwrap();
            assert!(v.row_count() > 0, "{} produced empty view", gt.name);
            assert_eq!(v.table.column_count(), 2);
        }
    }

    #[test]
    fn hit_detection_accepts_equal_and_superset() {
        let (cat, idx) = chembl_small();
        let gts = chembl_ground_truths(&cat).unwrap();
        let gt_view = materialize_ground_truth(&cat, &idx, &gts[4], 2).unwrap();
        // Identity: the gt view hits itself.
        assert!(find_ground_truth_view(std::slice::from_ref(&gt_view), &gt_view).is_some());
        // A disjoint view misses.
        let other = materialize_ground_truth(&cat, &idx, &gts[3], 2).unwrap();
        assert!(find_ground_truth_view(std::slice::from_ref(&other), &gt_view).is_none());
    }

    #[test]
    fn workload_has_expected_shape() {
        let (cat, idx) = chembl_small();
        let gts: Vec<GroundTruth> = chembl_ground_truths(&cat)
            .unwrap()
            .into_iter()
            .map(|g| attach_noise_columns(&cat, &idx, g, 0.75))
            .collect();
        let wl = generate_workload(&cat, &gts, 5, 3, 42).unwrap();
        assert_eq!(
            wl.len(),
            5 * 3 * 5,
            "5 GT × 3 levels × 5 reps = 75 per corpus"
        );
        assert!(wl
            .iter()
            .all(|w| w.query.arity() == 2 && w.query.rows() == 3));
        // Deterministic.
        let wl2 = generate_workload(&cat, &gts, 5, 3, 42).unwrap();
        assert_eq!(wl[10].query, wl2[10].query);
    }
}
