//! View specification for Ver.
//!
//! The VIEW-SPECIFICATION component is the human-facing entry of the
//! reference architecture. Ver's default interface is **query-by-example**
//! (Definition 3: a noisy example table χ of `l` tuples over `τ`
//! attributes), but the architecture supports keyword and attribute-name
//! interfaces too — the paper's §VI-C1 evaluates all three. This crate
//! models:
//!
//! * [`query`] — the QBE example table [`ExampleQuery`];
//! * [`spec`] — the [`ViewSpec`] enum covering QBE, keyword
//!   and attribute interfaces;
//! * [`noise`] — the paper's noisy-query generator (§VI-B): sample example
//!   values from ground-truth columns and, for medium/high noise, from a
//!   *noise column* (a column with Jaccard containment ≥ 0.8 w.r.t. the
//!   ground-truth column);
//! * [`groundtruth`] — ground-truth bookkeeping shared by workload
//!   generation and the experiment harness.
//!
//! Layer 4 of the crate map in the repo-root `ARCHITECTURE.md`: the
//! query vocabulary shared by selection, search, serving and datagen.

pub mod groundtruth;
pub mod noise;
pub mod query;
pub mod spec;

pub use groundtruth::GroundTruth;
pub use noise::{generate_noisy_query, NoiseLevel};
pub use query::{ExampleQuery, QueryColumn};
pub use spec::ViewSpec;
