//! The VIEW-SPECIFICATION input types.
//!
//! The reference architecture supports multiple discovery interfaces
//! (spreadsheet-style QBE, keyword search, attribute search, ...). Ver
//! implements QBE by default; the paper's §VI-C1 compares all three
//! implementations end-to-end.

use crate::query::ExampleQuery;
use serde::{Deserialize, Serialize};

/// A view specification submitted by the user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewSpec {
    /// Query-by-example: an example table (Ver's default interface).
    Qbe(ExampleQuery),
    /// Keyword search: terms matched against values and table names.
    Keyword(Vec<String>),
    /// Attribute search: terms matched against attribute (header) names.
    Attribute(Vec<String>),
}

impl ViewSpec {
    /// Number of output attributes the specification implies.
    ///
    /// QBE fixes the output arity at `τ`; keyword and attribute interfaces
    /// request one output column per term (the paper notes their results
    /// "contain a large number of columns as compared to QBE").
    pub fn arity(&self) -> usize {
        match self {
            ViewSpec::Qbe(q) => q.arity(),
            ViewSpec::Keyword(terms) | ViewSpec::Attribute(terms) => terms.len(),
        }
    }

    /// Human-readable interface label (reporting).
    pub fn interface_name(&self) -> &'static str {
        match self {
            ViewSpec::Qbe(_) => "QBE",
            ViewSpec::Keyword(_) => "Keyword",
            ViewSpec::Attribute(_) => "Attribute",
        }
    }

    /// The search terms this spec contributes for column retrieval, one
    /// group per output attribute.
    pub fn term_groups(&self) -> Vec<Vec<String>> {
        match self {
            ViewSpec::Qbe(q) => q
                .columns
                .iter()
                .map(|c| {
                    let mut terms: Vec<String> = c.non_null().map(|v| v.normalized()).collect();
                    terms.sort();
                    terms.dedup();
                    terms
                })
                .collect(),
            ViewSpec::Keyword(terms) | ViewSpec::Attribute(terms) => terms
                .iter()
                .map(|t| vec![t.trim().to_lowercase()])
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qbe() -> ViewSpec {
        ViewSpec::Qbe(
            ExampleQuery::from_rows(&[vec!["Indiana", "IND"], vec!["Georgia", "ATL"]]).unwrap(),
        )
    }

    #[test]
    fn arity_per_interface() {
        assert_eq!(qbe().arity(), 2);
        assert_eq!(ViewSpec::Keyword(vec!["population".into()]).arity(), 1);
        assert_eq!(
            ViewSpec::Attribute(vec!["state".into(), "iata".into()]).arity(),
            2
        );
    }

    #[test]
    fn term_groups_qbe_are_normalized_values() {
        let groups = qbe().term_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec!["georgia", "indiana"]);
        assert_eq!(groups[1], vec!["atl", "ind"]);
    }

    #[test]
    fn term_groups_keyword_one_per_term() {
        let spec = ViewSpec::Keyword(vec![" Population ".into(), "Country".into()]);
        assert_eq!(
            spec.term_groups(),
            vec![vec!["population".to_string()], vec!["country".to_string()]]
        );
    }

    #[test]
    fn interface_names() {
        assert_eq!(qbe().interface_name(), "QBE");
        assert_eq!(ViewSpec::Keyword(vec![]).interface_name(), "Keyword");
        assert_eq!(ViewSpec::Attribute(vec![]).interface_name(), "Attribute");
    }
}
