//! The query-by-example table χ (Definition 3).
//!
//! A noisy query is `l` example tuples over `τ` attributes. Values may or
//! may not exist in the collection — the user's best guess. Each query
//! column may also carry an optional attribute-name hint (users sometimes
//! know a header even without example values).

use serde::{Deserialize, Serialize};
use ver_common::error::{Result, VerError};
use ver_common::value::Value;

/// One attribute of the example table: optional name hint plus examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryColumn {
    /// Optional attribute-name hint.
    pub name_hint: Option<String>,
    /// Example values the user expects in this output column.
    pub examples: Vec<Value>,
}

impl QueryColumn {
    /// Column from example values only.
    pub fn of_values(examples: Vec<Value>) -> Self {
        QueryColumn {
            name_hint: None,
            examples,
        }
    }

    /// Column from string examples (parsed with CSV-style inference).
    pub fn of_strs(examples: &[&str]) -> Self {
        QueryColumn {
            name_hint: None,
            examples: examples.iter().map(|s| Value::parse(s)).collect(),
        }
    }

    /// Attach a name hint.
    pub fn named(mut self, hint: impl Into<String>) -> Self {
        self.name_hint = Some(hint.into());
        self
    }

    /// Non-null examples.
    pub fn non_null(&self) -> impl Iterator<Item = &Value> {
        self.examples.iter().filter(|v| !v.is_null())
    }
}

/// The PJ-example-query χ: `τ` columns of example values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExampleQuery {
    /// Query attributes, in output order.
    pub columns: Vec<QueryColumn>,
}

impl ExampleQuery {
    /// Build and validate a query.
    pub fn new(columns: Vec<QueryColumn>) -> Result<Self> {
        if columns.is_empty() {
            return Err(VerError::InvalidQuery(
                "query must have at least one column".into(),
            ));
        }
        if columns
            .iter()
            .any(|c| c.non_null().count() == 0 && c.name_hint.is_none())
        {
            return Err(VerError::InvalidQuery(
                "every query column needs at least one example value or a name hint".into(),
            ));
        }
        Ok(ExampleQuery { columns })
    }

    /// Build a query from rows of string examples (the spreadsheet-style
    /// input of the paper's user study). `rows` are equal-length tuples.
    pub fn from_rows(rows: &[Vec<&str>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(VerError::InvalidQuery(
                "query needs at least one example row".into(),
            ));
        }
        let arity = rows[0].len();
        if rows.iter().any(|r| r.len() != arity) {
            return Err(VerError::InvalidQuery("ragged example rows".into()));
        }
        let columns = (0..arity)
            .map(|c| QueryColumn::of_values(rows.iter().map(|r| Value::parse(r[c])).collect()))
            .collect();
        ExampleQuery::new(columns)
    }

    /// τ — number of query attributes.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// l — number of example tuples (max column length).
    pub fn rows(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.examples.len())
            .max()
            .unwrap_or(0)
    }

    /// All distinct non-null example values across columns (normalized).
    pub fn all_example_strings(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .columns
            .iter()
            .flat_map(|c| c.non_null().map(Value::normalized))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_builds_columns() {
        let q = ExampleQuery::from_rows(&[
            vec!["Indiana", "IND"],
            vec!["Georgia", "ATL"],
            vec!["Illinois", "ORD"],
        ])
        .unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.rows(), 3);
        assert_eq!(q.columns[0].examples[1], Value::text("Georgia"));
        assert_eq!(q.columns[1].examples[2], Value::text("ORD"));
    }

    #[test]
    fn numeric_examples_parse_as_numbers() {
        let q = ExampleQuery::from_rows(&[vec!["China", "1400000000"]]).unwrap();
        assert_eq!(q.columns[1].examples[0], Value::Int(1_400_000_000));
    }

    #[test]
    fn empty_query_rejected() {
        assert!(ExampleQuery::new(vec![]).is_err());
        assert!(ExampleQuery::from_rows(&[]).is_err());
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(ExampleQuery::from_rows(&[vec!["a", "b"], vec!["c"]]).is_err());
    }

    #[test]
    fn all_null_column_without_hint_rejected() {
        let col = QueryColumn::of_values(vec![Value::Null, Value::Null]);
        assert!(ExampleQuery::new(vec![col]).is_err());
    }

    #[test]
    fn all_null_column_with_hint_allowed() {
        let col = QueryColumn::of_values(vec![Value::Null]).named("population");
        let q = ExampleQuery::new(vec![col]).unwrap();
        assert_eq!(q.columns[0].name_hint.as_deref(), Some("population"));
    }

    #[test]
    fn example_strings_are_sorted_distinct_normalized() {
        let q = ExampleQuery::from_rows(&[vec!["B", "A"], vec!["b", "C"]]).unwrap();
        assert_eq!(q.all_example_strings(), vec!["a", "b", "c"]);
    }
}
