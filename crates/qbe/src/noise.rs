//! Noisy-query generation (§VI-B of the paper).
//!
//! Each generated query is a `τ`-column × `l`-row example table. Values are
//! sampled from the ground-truth columns and, depending on the noise level,
//! from a *noise column* per attribute:
//!
//! * **Zero** — all values from the ground-truth column;
//! * **Medium** — ⅔ from the ground-truth column, ⅓ from the noise column;
//! * **High** — ⅓ from the ground-truth column, ⅔ from the noise column.
//!
//! Noise values are drawn from the noise column's values *outside* the
//! ground-truth column (otherwise they would not be noise). When an
//! attribute has no noise column the ground-truth column fills the gap —
//! matching the paper's setup where noise columns are found per ground-truth
//! column.

use crate::groundtruth::GroundTruth;
use crate::query::{ExampleQuery, QueryColumn};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ver_common::error::{Result, VerError};
use ver_common::fxhash::FxHashSet;
use ver_common::value::Value;
use ver_store::catalog::TableCatalog;

/// The three noise levels of the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoiseLevel {
    /// All example values from ground-truth columns.
    Zero,
    /// One third of example values from noise columns.
    Medium,
    /// Two thirds of example values from noise columns.
    High,
}

impl NoiseLevel {
    /// Fraction of example values drawn from the noise column.
    pub fn noise_fraction(self) -> f64 {
        match self {
            NoiseLevel::Zero => 0.0,
            NoiseLevel::Medium => 1.0 / 3.0,
            NoiseLevel::High => 2.0 / 3.0,
        }
    }

    /// All levels, in the paper's reporting order.
    pub fn all() -> [NoiseLevel; 3] {
        [NoiseLevel::Zero, NoiseLevel::Medium, NoiseLevel::High]
    }

    /// Label used in tables ("Zero", "Med", "High").
    pub fn label(self) -> &'static str {
        match self {
            NoiseLevel::Zero => "Zero",
            NoiseLevel::Medium => "Med",
            NoiseLevel::High => "High",
        }
    }
}

/// Generate a noisy `rows`-row query for `gt` at `level`.
///
/// Deterministic in `seed`. Errors when a ground-truth column has no
/// non-null values.
pub fn generate_noisy_query(
    catalog: &TableCatalog,
    gt: &GroundTruth,
    level: NoiseLevel,
    rows: usize,
    seed: u64,
) -> Result<ExampleQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns = Vec::with_capacity(gt.arity());
    for (i, cref) in gt.columns.iter().enumerate() {
        let gt_col = catalog.column(*cref)?;
        let gt_values: Vec<Value> = distinct_sorted(gt_col.non_null());
        if gt_values.is_empty() {
            return Err(VerError::InvalidQuery(format!(
                "ground-truth column {cref} has no values"
            )));
        }

        let noise_values: Vec<Value> = match gt.noise_columns[i] {
            Some(ncref) => {
                let ncol = catalog.column(ncref)?;
                let gt_set: FxHashSet<&Value> = gt_col.non_null().collect();
                distinct_sorted(ncol.non_null().filter(|v| !gt_set.contains(*v)))
            }
            None => Vec::new(),
        };

        // Noise count: floor(rows · fraction) — 3-row queries give 0/1/2.
        let n_noise = ((rows as f64) * level.noise_fraction()).round() as usize;
        let n_noise = n_noise.min(noise_values.len());
        let n_gt = rows - n_noise;

        let mut examples = Vec::with_capacity(rows);
        examples.extend(sample(&gt_values, n_gt, &mut rng));
        examples.extend(sample(&noise_values, n_noise, &mut rng));
        examples.shuffle(&mut rng);
        columns.push(QueryColumn::of_values(examples));
    }
    ExampleQuery::new(columns)
}

/// Distinct values in deterministic order (sort), for seed-stable sampling.
fn distinct_sorted<'a>(values: impl Iterator<Item = &'a Value>) -> Vec<Value> {
    let mut set: Vec<Value> = values
        .collect::<FxHashSet<_>>()
        .into_iter()
        .cloned()
        .collect();
    set.sort();
    set
}

/// Sample `n` values, without replacement while the pool lasts, then with.
fn sample(pool: &[Value], n: usize, rng: &mut StdRng) -> Vec<Value> {
    if pool.is_empty() || n == 0 {
        return Vec::new();
    }
    if n <= pool.len() {
        pool.choose_multiple(rng, n).cloned().collect()
    } else {
        let mut out: Vec<Value> = pool.to_vec();
        while out.len() < n {
            out.push(pool.choose(rng).expect("non-empty pool").clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::ids::{ColumnRef, TableId};
    use ver_store::table::TableBuilder;

    /// gt column = t0.c0 with values g0..g9; noise column = t1.c0 with
    /// g0..g7 plus n0..n3 (containment 8/12 ≈ 0.67 — containment is checked
    /// upstream; here we only exercise sampling mechanics).
    fn setup() -> (TableCatalog, GroundTruth) {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("gt", &["v"]);
        for i in 0..10 {
            b.push_row(vec![Value::text(format!("g{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("noise", &["v"]);
        for i in 0..8 {
            b.push_row(vec![Value::text(format!("g{i}"))]).unwrap();
        }
        for i in 0..4 {
            b.push_row(vec![Value::text(format!("n{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let gt = GroundTruth::new(
            "q",
            vec![ColumnRef {
                table: TableId(0),
                ordinal: 0,
            }],
        )
        .with_noise_column(
            0,
            ColumnRef {
                table: TableId(1),
                ordinal: 0,
            },
        );
        (cat, gt)
    }

    fn count_noise(q: &ExampleQuery) -> usize {
        q.columns[0]
            .examples
            .iter()
            .filter(|v| v.to_string().starts_with('n'))
            .count()
    }

    #[test]
    fn zero_noise_draws_only_ground_truth() {
        let (cat, gt) = setup();
        let q = generate_noisy_query(&cat, &gt, NoiseLevel::Zero, 3, 1).unwrap();
        assert_eq!(q.rows(), 3);
        assert_eq!(count_noise(&q), 0);
    }

    #[test]
    fn medium_noise_is_one_third() {
        let (cat, gt) = setup();
        let q = generate_noisy_query(&cat, &gt, NoiseLevel::Medium, 3, 2).unwrap();
        assert_eq!(count_noise(&q), 1);
    }

    #[test]
    fn high_noise_is_two_thirds() {
        let (cat, gt) = setup();
        let q = generate_noisy_query(&cat, &gt, NoiseLevel::High, 3, 3).unwrap();
        assert_eq!(count_noise(&q), 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let (cat, gt) = setup();
        let a = generate_noisy_query(&cat, &gt, NoiseLevel::High, 3, 7).unwrap();
        let b = generate_noisy_query(&cat, &gt, NoiseLevel::High, 3, 7).unwrap();
        let c = generate_noisy_query(&cat, &gt, NoiseLevel::High, 3, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn noise_values_never_come_from_ground_truth_set() {
        let (cat, gt) = setup();
        for seed in 0..20 {
            let q = generate_noisy_query(&cat, &gt, NoiseLevel::High, 3, seed).unwrap();
            // 2 noise values per query, all from {n0..n3}.
            assert_eq!(count_noise(&q), 2, "seed {seed}");
        }
    }

    #[test]
    fn missing_noise_column_falls_back_to_ground_truth() {
        let (cat, _) = setup();
        let gt = GroundTruth::new(
            "q",
            vec![ColumnRef {
                table: TableId(0),
                ordinal: 0,
            }],
        );
        let q = generate_noisy_query(&cat, &gt, NoiseLevel::High, 3, 1).unwrap();
        assert_eq!(q.rows(), 3);
        assert_eq!(count_noise(&q), 0);
    }

    #[test]
    fn oversampling_small_pools_repeats_values() {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("tiny", &["v"]);
        b.push_row(vec![Value::text("only")]).unwrap();
        cat.add_table(b.build()).unwrap();
        let gt = GroundTruth::new(
            "q",
            vec![ColumnRef {
                table: TableId(0),
                ordinal: 0,
            }],
        );
        let q = generate_noisy_query(&cat, &gt, NoiseLevel::Zero, 5, 1).unwrap();
        assert_eq!(q.rows(), 5);
        assert!(q.columns[0]
            .examples
            .iter()
            .all(|v| v.to_string() == "only"));
    }

    #[test]
    fn noise_fractions_match_paper() {
        assert_eq!(NoiseLevel::Zero.noise_fraction(), 0.0);
        assert!((NoiseLevel::Medium.noise_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((NoiseLevel::High.noise_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(NoiseLevel::Medium.label(), "Med");
    }
}
