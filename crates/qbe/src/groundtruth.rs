//! Ground-truth bookkeeping for workload generation and evaluation.
//!
//! The paper's evaluation (§VI-B "Noisy Query Generation") starts from a
//! *ground-truth PJ-query* whose result is the ground-truth PJ-view; its
//! projected columns are the *ground-truth columns*. Noisy user queries are
//! then sampled from those columns (and from designated *noise columns*).
//! Evaluation asks whether the ground-truth view appears among a system's
//! candidate views (Ground Truth Hit Ratio, Table V).

use serde::{Deserialize, Serialize};
use ver_common::ids::{ColumnRef, TableId};

/// Ground truth for one evaluation query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Descriptive name (e.g. "ChEMBL-Q3").
    pub name: String,
    /// The ground-truth columns (the projection of the ground-truth view).
    pub columns: Vec<ColumnRef>,
    /// Per-attribute noise column, when one exists: a column with Jaccard
    /// containment ≥ 0.8 w.r.t. the ground-truth column (§VI-B).
    pub noise_columns: Vec<Option<ColumnRef>>,
    /// Tables of the ground-truth join graph.
    pub tables: Vec<TableId>,
}

impl GroundTruth {
    /// Create ground truth with no noise columns assigned yet.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnRef>) -> Self {
        let mut tables: Vec<TableId> = columns.iter().map(|c| c.table).collect();
        tables.sort_unstable();
        tables.dedup();
        let n = columns.len();
        GroundTruth {
            name: name.into(),
            columns,
            noise_columns: vec![None; n],
            tables,
        }
    }

    /// Attach a noise column for attribute `i`.
    pub fn with_noise_column(mut self, i: usize, noise: ColumnRef) -> Self {
        self.noise_columns[i] = Some(noise);
        self
    }

    /// τ of the implied query.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cref(t: u32, o: u16) -> ColumnRef {
        ColumnRef {
            table: TableId(t),
            ordinal: o,
        }
    }

    #[test]
    fn tables_are_deduped_and_sorted() {
        let gt = GroundTruth::new("q", vec![cref(3, 0), cref(1, 2), cref(3, 1)]);
        assert_eq!(gt.tables, vec![TableId(1), TableId(3)]);
        assert_eq!(gt.arity(), 3);
        assert_eq!(gt.noise_columns, vec![None, None, None]);
    }

    #[test]
    fn noise_columns_attach_per_attribute() {
        let gt =
            GroundTruth::new("q", vec![cref(0, 0), cref(1, 0)]).with_noise_column(1, cref(2, 0));
        assert_eq!(gt.noise_columns[0], None);
        assert_eq!(gt.noise_columns[1], Some(cref(2, 0)));
    }
}
