//! Compact per-column profiles consumed by discovery-index construction.
//!
//! Profiling is the first pass of the offline DISCOVERY-ENGINE stage: for
//! every column we record its inferred type, cardinalities and a bounded
//! sample of normalized values. MinHash signatures are built from the full
//! value stream separately (in `ver-index`); the profile carries the exact
//! distinct cardinality that Lazo-style containment estimation requires.

use crate::catalog::TableCatalog;
use crate::column::Column;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashSet;
use ver_common::ids::{ColumnId, ColumnRef};
use ver_common::pool::par_map;
use ver_common::value::DataType;

/// Statistics and a bounded sample for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Global column id.
    pub id: ColumnId,
    /// Fully qualified reference.
    pub cref: ColumnRef,
    /// Inferred logical type.
    pub dtype: DataType,
    /// Total rows in the column.
    pub rows: usize,
    /// Null cells.
    pub nulls: usize,
    /// Exact distinct count of non-null values (needed by Lazo containment).
    pub distinct: usize,
    /// Up to `sample_cap` distinct normalized values.
    pub sample: Vec<String>,
    /// Sorted, deduplicated Fx hashes of the distinct value set
    /// ([`Column::distinct_hashes`]), computed **once** here and reused by
    /// every downstream consumer: MinHash sketching feeds from it and exact
    /// containment verification is a linear merge over two of these vectors
    /// — replacing the per-call `FxHashSet<Value>` clones that made
    /// `verify_exact` quadratic in allocations.
    pub hashes: Vec<u64>,
}

impl ColumnProfile {
    /// Profile a single column.
    pub fn of(id: ColumnId, cref: ColumnRef, col: &Column, sample_cap: usize) -> Self {
        let mut seen: FxHashSet<String> = FxHashSet::default();
        let mut sample = Vec::new();
        for v in col.non_null() {
            if sample.len() >= sample_cap {
                break;
            }
            let n = v.normalized();
            if seen.insert(n.clone()) {
                sample.push(n);
            }
        }
        ColumnProfile {
            id,
            cref,
            dtype: col.inferred_type(),
            rows: col.len(),
            nulls: col.null_count(),
            distinct: col.distinct_count(),
            sample,
            hashes: col.distinct_hashes(),
        }
    }

    /// Distinct ratio (1.0 ⇒ candidate key).
    pub fn distinct_ratio(&self) -> f64 {
        let non_null = self.rows - self.nulls;
        if non_null == 0 {
            0.0
        } else {
            self.distinct as f64 / non_null as f64
        }
    }
}

/// Profile every column of a catalog. Sample cap bounds memory on wide
/// collections (Open Data has millions of columns).
///
/// Profiling hashes and sorts each column's distinct set, so it is the
/// second-heaviest offline pass after signature computation; the work is
/// spread over `threads` workers (`0` = auto) with results in `ColumnId`
/// order regardless of thread count.
pub fn profile_catalog_parallel(
    catalog: &TableCatalog,
    sample_cap: usize,
    threads: usize,
) -> Vec<ColumnProfile> {
    let crefs: Vec<(ColumnId, ColumnRef)> = catalog.all_columns().collect();
    par_map(&crefs, threads, |&(cid, cref)| {
        let col = catalog.column(cref).expect("catalog column refs are valid");
        ColumnProfile::of(cid, cref, col, sample_cap)
    })
}

/// Sequential [`profile_catalog_parallel`] (kept for callers that profile
/// tiny catalogs where spawning workers is not worth it).
pub fn profile_catalog(catalog: &TableCatalog, sample_cap: usize) -> Vec<ColumnProfile> {
    profile_catalog_parallel(catalog, sample_cap, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ver_common::ids::TableId;
    use ver_common::value::Value;

    fn profiled() -> Vec<ColumnProfile> {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("t", &["k", "v"]);
        for i in 0..10 {
            b.push_row(vec![Value::Int(i), Value::text(format!("x{}", i % 3))])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        profile_catalog(&cat, 100)
    }

    #[test]
    fn profiles_cover_all_columns() {
        let ps = profiled();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].cref.table, TableId(0));
        assert_eq!(ps[0].distinct, 10);
        assert_eq!(ps[1].distinct, 3);
    }

    #[test]
    fn key_detection_via_distinct_ratio() {
        let ps = profiled();
        assert_eq!(ps[0].distinct_ratio(), 1.0);
        assert!(ps[1].distinct_ratio() < 1.0);
    }

    #[test]
    fn sample_is_bounded_and_distinct() {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("t", &["v"]);
        for i in 0..100 {
            b.push_row(vec![Value::Int(i % 7)]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let ps = profile_catalog(&cat, 5);
        assert_eq!(ps[0].sample.len(), 5);
        assert_eq!(ps[0].distinct, 7);
        let set: FxHashSet<&String> = ps[0].sample.iter().collect();
        assert_eq!(set.len(), 5, "sample values are distinct");
    }

    #[test]
    fn hashes_cover_the_distinct_set() {
        let ps = profiled();
        assert_eq!(ps[0].hashes.len(), ps[0].distinct);
        assert_eq!(ps[1].hashes.len(), ps[1].distinct);
        assert!(ps[0].hashes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parallel_profiling_matches_sequential() {
        let mut cat = TableCatalog::new();
        for t in 0..6 {
            let mut b = TableBuilder::new(format!("t{t}"), &["a", "b"]);
            for i in 0..(20 + t * 13) {
                b.push_row(vec![Value::Int(i as i64), Value::text(format!("s{i}"))])
                    .unwrap();
            }
            cat.add_table(b.build()).unwrap();
        }
        let seq = profile_catalog(&cat, 16);
        let par = profile_catalog_parallel(&cat, 16, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.cref, b.cref);
            assert_eq!(a.distinct, b.distinct);
            assert_eq!(a.sample, b.sample);
            assert_eq!(a.hashes, b.hashes);
        }
    }

    #[test]
    fn nulls_counted_not_sampled() {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("t", &["v"]);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Int(1)]).unwrap();
        cat.add_table(b.build()).unwrap();
        let ps = profile_catalog(&cat, 10);
        assert_eq!(ps[0].nulls, 1);
        assert_eq!(ps[0].sample, vec!["1".to_string()]);
    }
}
