//! Table schemas for noisy data.
//!
//! Definition 1 (noisy structured data) allows `Ai = φ` — missing header
//! values — so [`ColumnMeta::name`] is optional. Components that need a
//! printable name use [`ColumnMeta::display_name`], which falls back to a
//! positional placeholder.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use ver_common::value::DataType;

/// Metadata of a single column in a (possibly noisy) schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Header name; `None` models the paper's missing header (`Ai = φ`).
    pub name: Option<Arc<str>>,
    /// Inferred logical type.
    pub dtype: DataType,
}

impl ColumnMeta {
    /// Named column of the given type.
    pub fn named(name: impl Into<Arc<str>>, dtype: DataType) -> Self {
        ColumnMeta {
            name: Some(name.into()),
            dtype,
        }
    }

    /// Headerless column (`Ai = φ`).
    pub fn anonymous(dtype: DataType) -> Self {
        ColumnMeta { name: None, dtype }
    }

    /// Printable name: the header if present, otherwise `_col<ordinal>`.
    pub fn display_name(&self, ordinal: usize) -> String {
        match &self.name {
            Some(n) => n.to_string(),
            None => format!("_col{ordinal}"),
        }
    }
}

/// Schema of a table: its name plus per-column metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table (dataset/file) name.
    pub name: Arc<str>,
    /// Column metadata in ordinal order.
    pub columns: Vec<ColumnMeta>,
}

impl TableSchema {
    /// Build a schema from a table name and column metadata.
    pub fn new(name: impl Into<Arc<str>>, columns: Vec<ColumnMeta>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Number of columns (`m` in the paper).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Ordinal of the first column whose header equals `name`
    /// (case-insensitive); `None` if absent.
    pub fn ordinal_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| {
            c.name
                .as_deref()
                .is_some_and(|n| n.eq_ignore_ascii_case(name))
        })
    }

    /// The *schema signature* used by SCHEMA-BASED-BLOCKS in view
    /// distillation: the ordered list of display names, joined. Two views
    /// compare under 4C only if their signatures match (Algorithm 3 line 2).
    pub fn signature(&self) -> String {
        let mut sig = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                sig.push('\u{1f}');
            }
            sig.push_str(&c.display_name(i).to_lowercase());
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "airports",
            vec![
                ColumnMeta::named("State", DataType::Text),
                ColumnMeta::anonymous(DataType::Int),
                ColumnMeta::named("IATA", DataType::Text),
            ],
        )
    }

    #[test]
    fn display_name_falls_back_for_missing_headers() {
        let s = schema();
        assert_eq!(s.columns[0].display_name(0), "State");
        assert_eq!(s.columns[1].display_name(1), "_col1");
    }

    #[test]
    fn ordinal_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.ordinal_of("state"), Some(0));
        assert_eq!(s.ordinal_of("IATA"), Some(2));
        assert_eq!(s.ordinal_of("missing"), None);
        // Anonymous columns are not addressable by name.
        assert_eq!(s.ordinal_of("_col1"), None);
    }

    #[test]
    fn signature_depends_on_names_and_order() {
        let a = schema();
        let mut b = schema();
        assert_eq!(a.signature(), b.signature());
        b.columns.swap(0, 2);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn signature_is_case_insensitive() {
        let a = TableSchema::new("t", vec![ColumnMeta::named("STATE", DataType::Text)]);
        let b = TableSchema::new("u", vec![ColumnMeta::named("state", DataType::Text)]);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn arity_counts_columns() {
        assert_eq!(schema().arity(), 3);
    }
}
