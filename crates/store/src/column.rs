//! Column-major value storage with lazily computed statistics.

use serde::{Deserialize, Serialize};
use ver_common::fxhash::{fx_hash_u64, FxHashSet};
use ver_common::value::{DataType, Value};

/// A single column of values.
///
/// Statistics (distinct count, null count, inferred type) are computed once
/// on demand and cached; mutation goes through [`Column::push`], which
/// invalidates the cache.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Column {
    values: Vec<Value>,
    #[serde(skip)]
    stats: std::sync::OnceLock<ColumnStats>,
}

/// Cached column statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColumnStats {
    distinct: usize,
    nulls: usize,
    dtype: DataType,
}

impl Column {
    /// Empty column.
    pub fn new() -> Self {
        Column::default()
    }

    /// Column from a vector of values.
    pub fn from_values(values: Vec<Value>) -> Self {
        Column {
            values,
            stats: std::sync::OnceLock::new(),
        }
    }

    /// Append a value (invalidates cached statistics).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
        self.stats = std::sync::OnceLock::new();
    }

    /// All values, in row order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> Option<&Value> {
        self.values.get(row)
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn stats(&self) -> &ColumnStats {
        self.stats.get_or_init(|| {
            let mut distinct: FxHashSet<&Value> = FxHashSet::default();
            let mut nulls = 0usize;
            let mut dtype = DataType::Unknown;
            for v in &self.values {
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                distinct.insert(v);
                // Type inference: promote Int → Float when mixed; any text
                // makes the whole column Text (pandas `object` behaviour).
                dtype = match (dtype, v.data_type()) {
                    (DataType::Unknown, t) => t,
                    (t, u) if t == u => t,
                    (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                        DataType::Float
                    }
                    _ => DataType::Text,
                };
            }
            ColumnStats {
                distinct: distinct.len(),
                nulls,
                dtype,
            }
        })
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        self.stats().distinct
    }

    /// Number of null values.
    pub fn null_count(&self) -> usize {
        self.stats().nulls
    }

    /// Inferred logical type of the column.
    pub fn inferred_type(&self) -> DataType {
        self.stats().dtype
    }

    /// Ratio of distinct non-null values to non-null rows, in `[0, 1]`.
    /// A ratio of 1.0 means the column is a (candidate) key of its table.
    pub fn distinct_ratio(&self) -> f64 {
        let non_null = self.len() - self.null_count();
        if non_null == 0 {
            0.0
        } else {
            self.distinct_count() as f64 / non_null as f64
        }
    }

    /// The set of distinct non-null values.
    ///
    /// Clones every value into a fresh set — fine for one-off inspection,
    /// wrong for hot paths. Index construction and containment checks use
    /// [`Column::distinct_hashes`] instead, which is computed once per
    /// column and compared by sorted-merge.
    pub fn distinct_values(&self) -> FxHashSet<Value> {
        self.values
            .iter()
            .filter(|v| !v.is_null())
            .cloned()
            .collect()
    }

    /// Sorted, deduplicated Fx hashes of the distinct non-null values.
    ///
    /// This is the allocation-free-comparison representation of the
    /// column's value set: MinHash sketches are fed from it directly and
    /// exact containment between two columns is a linear merge over the two
    /// sorted vectors (no per-call `Value` clones, no hash-set churn).
    /// Hashes use the same [`fx_hash_u64`] the MinHash sketcher applies, so
    /// sketches built from these hashes are identical to sketches built
    /// from the values themselves.
    pub fn distinct_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> = self
            .values
            .iter()
            .filter(|v| !v.is_null())
            .map(fx_hash_u64)
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes
    }

    /// Iterate over non-null values.
    pub fn non_null(&self) -> impl Iterator<Item = &Value> {
        self.values.iter().filter(|v| !v.is_null())
    }
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl Eq for Column {}

impl FromIterator<Value> for Column {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Column::from_values(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Column {
        Column::from_values(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(1),
            Value::Null,
            Value::Int(3),
        ])
    }

    #[test]
    fn stats_basic() {
        let c = mixed();
        assert_eq!(c.len(), 5);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.inferred_type(), DataType::Int);
        assert!((c.distinct_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn push_invalidates_cache() {
        let mut c = mixed();
        assert_eq!(c.distinct_count(), 3);
        c.push(Value::Int(99));
        assert_eq!(c.distinct_count(), 4);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn type_promotion_int_float_text() {
        let c = Column::from_values(vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.inferred_type(), DataType::Float);
        let c = Column::from_values(vec![Value::Int(1), Value::text("x")]);
        assert_eq!(c.inferred_type(), DataType::Text);
        let c = Column::from_values(vec![Value::Null, Value::Null]);
        assert_eq!(c.inferred_type(), DataType::Unknown);
        assert_eq!(c.distinct_ratio(), 0.0);
    }

    #[test]
    fn distinct_values_excludes_nulls() {
        let d = mixed().distinct_values();
        assert_eq!(d.len(), 3);
        assert!(!d.contains(&Value::Null));
    }

    #[test]
    fn distinct_hashes_are_sorted_dedup_and_value_derived() {
        let h = mixed().distinct_hashes();
        assert_eq!(h.len(), 3, "one hash per distinct non-null value");
        assert!(h.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        for v in [Value::Int(1), Value::Int(2), Value::Int(3)] {
            assert!(h.binary_search(&fx_hash_u64(&v)).is_ok());
        }
        assert!(h.binary_search(&fx_hash_u64(&Value::Null)).is_err());
    }

    #[test]
    fn key_column_has_ratio_one() {
        let c: Column = (0..50).map(Value::Int).collect();
        assert_eq!(c.distinct_ratio(), 1.0);
    }

    #[test]
    fn equality_ignores_cache_state() {
        let a = mixed();
        let b = mixed();
        let _ = a.distinct_count(); // warm a's cache only
        assert_eq!(a, b);
    }
}
