//! Noisy table store for pathless table collections.
//!
//! Implements Definition 1 and 2 of the paper: a *pathless table collection*
//! is a set of noisy tables — schemas may lack header names, cells may be
//! missing, and no join-path (PK/FK) information exists. This crate provides:
//!
//! * [`schema`] — table schemas whose column names are `Option`al (a missing
//!   header is the paper's `Ai = φ`).
//! * [`column`](mod@crate::column) — typed, column-major value storage with cached per-column
//!   statistics (distinct count, null count, inferred type).
//! * [`table`] — the noisy table plus a row-oriented builder.
//! * [`catalog`] — the collection itself: id assignment, name lookup, and
//!   global column enumeration used by the discovery index.
//! * [`csv`] — plain CSV reader/writer with pandas-style type inference.
//! * [`profile`] — compact per-column profiles consumed by index
//!   construction.
//!
//! Layer 1 of the crate map in the repo-root `ARCHITECTURE.md`: the data
//! substrate under both the offline build and the online executor.

pub mod catalog;
pub mod column;
pub mod csv;
pub mod profile;
pub mod schema;
pub mod table;

pub use catalog::TableCatalog;
pub use column::Column;
pub use profile::ColumnProfile;
pub use schema::{ColumnMeta, TableSchema};
pub use table::{Table, TableBuilder};
