//! The noisy table: a schema plus column-major values.

use crate::column::Column;
use crate::schema::{ColumnMeta, TableSchema};
use serde::{Deserialize, Serialize};
use ver_common::error::{Result, VerError};
use ver_common::ids::TableId;
use ver_common::value::{DataType, Value};

/// A noisy table (Definition 1): schema with possibly-missing headers and
/// column-major values with possibly-missing cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Catalog-assigned id ([`TableId::default`] before registration).
    pub id: TableId,
    /// Schema (name + column metadata).
    pub schema: TableSchema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Construct a table from a schema and matching columns.
    ///
    /// Fails when column counts mismatch the schema or columns are ragged.
    pub fn new(schema: TableSchema, columns: Vec<Column>) -> Result<Self> {
        if schema.arity() != columns.len() {
            return Err(VerError::InvalidData(format!(
                "table '{}': schema has {} columns but {} provided",
                schema.name,
                schema.arity(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        if let Some(bad) = columns.iter().position(|c| c.len() != rows) {
            return Err(VerError::InvalidData(format!(
                "table '{}': ragged columns (column {} has {} rows, expected {})",
                schema.name,
                bad,
                columns[bad].len(),
                rows
            )));
        }
        Ok(Table {
            id: TableId::default(),
            schema,
            columns,
            rows,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    #[inline]
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column at `ordinal`.
    pub fn column(&self, ordinal: usize) -> Option<&Column> {
        self.columns.get(ordinal)
    }

    /// All columns, ordinal order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Cell at (`row`, `col`).
    pub fn cell(&self, row: usize, col: usize) -> Option<&Value> {
        self.columns.get(col).and_then(|c| c.get(row))
    }

    /// Materialise row `row` as a vector of values.
    pub fn row(&self, row: usize) -> Option<Vec<Value>> {
        if row >= self.rows {
            return None;
        }
        Some(
            self.columns
                .iter()
                .map(|c| c.get(row).cloned().unwrap_or(Value::Null))
                .collect(),
        )
    }

    /// Iterate rows as value vectors (allocates per row; intended for tests
    /// and small tables — hot paths work column-wise).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |r| self.row(r).expect("row in range"))
    }

    /// Refresh schema `dtype`s from the actual column contents.
    pub fn infer_types(&mut self) {
        for (meta, col) in self.schema.columns.iter_mut().zip(&self.columns) {
            meta.dtype = col.inferred_type();
        }
    }
}

/// Row-oriented builder for [`Table`].
///
/// Rows shorter than the arity are padded with nulls — the paper's "each
/// tuple contains at most m values".
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: TableSchema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Start a table with named columns (types inferred at build time).
    pub fn new(name: impl Into<std::sync::Arc<str>>, column_names: &[&str]) -> Self {
        let metas = column_names
            .iter()
            .map(|n| ColumnMeta::named(*n, DataType::Unknown))
            .collect::<Vec<_>>();
        let n = metas.len();
        TableBuilder {
            schema: TableSchema::new(name, metas),
            columns: (0..n).map(|_| Column::new()).collect(),
        }
    }

    /// Start a table from explicit column metadata (allows anonymous
    /// columns for noisy-schema scenarios).
    pub fn with_schema(schema: TableSchema) -> Self {
        let n = schema.arity();
        TableBuilder {
            schema,
            columns: (0..n).map(|_| Column::new()).collect(),
        }
    }

    /// Append one row. Rows longer than the arity error; shorter rows are
    /// null-padded.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<&mut Self> {
        if row.len() > self.columns.len() {
            return Err(VerError::InvalidData(format!(
                "row has {} values but table '{}' has {} columns",
                row.len(),
                self.schema.name,
                self.columns.len()
            )));
        }
        let missing = self.columns.len() - row.len();
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        for col in self.columns.iter_mut().rev().take(missing) {
            col.push(Value::Null);
        }
        Ok(self)
    }

    /// Finish: infer column types and produce the [`Table`].
    pub fn build(self) -> Table {
        let mut t = Table::new(self.schema, self.columns)
            .expect("builder maintains arity and rectangularity");
        t.infer_types();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states_table() -> Table {
        let mut b = TableBuilder::new("states", &["state", "population"]);
        b.push_row(vec!["Indiana".into(), Value::Int(6_800_000)])
            .unwrap();
        b.push_row(vec!["Georgia".into(), Value::Int(10_700_000)])
            .unwrap();
        b.push_row(vec!["Virginia".into(), Value::Int(8_600_000)])
            .unwrap();
        b.build()
    }

    #[test]
    fn builder_produces_rectangular_table() {
        let t = states_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.cell(1, 0), Some(&Value::text("Georgia")));
        assert_eq!(t.schema.columns[1].dtype, DataType::Int);
    }

    #[test]
    fn short_rows_are_null_padded() {
        let mut b = TableBuilder::new("t", &["a", "b", "c"]);
        b.push_row(vec![Value::Int(1)]).unwrap();
        let t = b.build();
        assert_eq!(t.cell(0, 1), Some(&Value::Null));
        assert_eq!(t.cell(0, 2), Some(&Value::Null));
    }

    #[test]
    fn long_rows_are_rejected() {
        let mut b = TableBuilder::new("t", &["a"]);
        let err = b.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(matches!(err, VerError::InvalidData(_)));
    }

    #[test]
    fn ragged_columns_are_rejected() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnMeta::named("a", DataType::Int),
                ColumnMeta::named("b", DataType::Int),
            ],
        );
        let cols = vec![
            Column::from_values(vec![Value::Int(1)]),
            Column::from_values(vec![]),
        ];
        assert!(Table::new(schema, cols).is_err());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let schema = TableSchema::new("t", vec![ColumnMeta::named("a", DataType::Int)]);
        assert!(Table::new(schema, vec![]).is_err());
    }

    #[test]
    fn row_materialisation() {
        let t = states_table();
        assert_eq!(
            t.row(0),
            Some(vec![Value::text("Indiana"), Value::Int(6_800_000)])
        );
        assert_eq!(t.row(99), None);
        assert_eq!(t.iter_rows().count(), 3);
    }

    #[test]
    fn empty_table_is_valid() {
        let t = TableBuilder::new("empty", &["x"]).build();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.schema.columns[0].dtype, DataType::Unknown);
    }
}
