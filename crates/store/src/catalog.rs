//! The pathless table collection itself (Definition 2).
//!
//! A [`TableCatalog`] owns the tables, assigns [`TableId`]s and global
//! [`ColumnId`]s, and answers the lookups every downstream component needs
//! (resolve a [`ColumnRef`], iterate all columns, find tables by name).
//! No join-path information is stored here — that is the whole point of the
//! pathless setting; join paths are *inferred* by `ver-index`.

use crate::column::Column;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use ver_common::error::{Result, VerError};
use ver_common::fxhash::FxHashMap;
use ver_common::ids::{ColumnId, ColumnRef, TableId};

/// An owned collection of noisy tables with id/name lookup.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TableCatalog {
    tables: Vec<Table>,
    by_name: FxHashMap<String, TableId>,
    /// Flat list mapping `ColumnId` → `ColumnRef` in registration order.
    column_refs: Vec<ColumnRef>,
    /// Reverse map `ColumnRef` → `ColumnId`.
    ref_to_id: FxHashMap<ColumnRef, ColumnId>,
}

impl TableCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table; assigns and returns its [`TableId`].
    ///
    /// Table names must be unique (open-data portals key datasets by name).
    pub fn add_table(&mut self, mut table: Table) -> Result<TableId> {
        let name = table.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(VerError::InvalidData(format!(
                "duplicate table name '{name}'"
            )));
        }
        let id = TableId(self.tables.len() as u32);
        table.id = id;
        for ordinal in 0..table.column_count() {
            let cref = ColumnRef {
                table: id,
                ordinal: ordinal as u16,
            };
            let cid = ColumnId(self.column_refs.len() as u32);
            self.column_refs.push(cref);
            self.ref_to_id.insert(cref, cid);
        }
        self.tables.push(table);
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.column_refs.len()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.idx())
            .ok_or_else(|| VerError::NotFound(format!("table {id}")))
    }

    /// Table by name (exact, case-sensitive).
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.by_name.get(name).map(|id| &self.tables[id.idx()])
    }

    /// All tables in id order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Resolve a [`ColumnRef`] to its column data.
    pub fn column(&self, cref: ColumnRef) -> Result<&Column> {
        let table = self.table(cref.table)?;
        table
            .column(cref.ordinal as usize)
            .ok_or_else(|| VerError::NotFound(format!("column {cref} (table has fewer columns)")))
    }

    /// Resolve a global [`ColumnId`] to its [`ColumnRef`].
    pub fn column_ref(&self, id: ColumnId) -> Result<ColumnRef> {
        self.column_refs
            .get(id.idx())
            .copied()
            .ok_or_else(|| VerError::NotFound(format!("column id {id}")))
    }

    /// Global [`ColumnId`] of a [`ColumnRef`].
    pub fn column_id(&self, cref: ColumnRef) -> Result<ColumnId> {
        self.ref_to_id
            .get(&cref)
            .copied()
            .ok_or_else(|| VerError::NotFound(format!("column ref {cref}")))
    }

    /// Iterate `(ColumnId, ColumnRef)` over every column in the catalog.
    pub fn all_columns(&self) -> impl Iterator<Item = (ColumnId, ColumnRef)> + '_ {
        self.column_refs
            .iter()
            .enumerate()
            .map(|(i, &cref)| (ColumnId(i as u32), cref))
    }

    /// Display name (`table.column`) for a column reference.
    pub fn qualified_name(&self, cref: ColumnRef) -> String {
        match self.table(cref.table) {
            Ok(t) => {
                let col = t
                    .schema
                    .columns
                    .get(cref.ordinal as usize)
                    .map(|c| c.display_name(cref.ordinal as usize))
                    .unwrap_or_else(|| format!("_col{}", cref.ordinal));
                format!("{}.{}", t.name(), col)
            }
            Err(_) => cref.to_string(),
        }
    }

    /// Approximate in-memory size in bytes (for Table I style reporting).
    pub fn approx_bytes(&self) -> usize {
        use ver_common::value::Value;
        let mut total = 0usize;
        for t in &self.tables {
            for c in t.columns() {
                total += std::mem::size_of_val(c.values());
                for v in c.values() {
                    if let Value::Text(s) = v {
                        total += s.len();
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ver_common::value::Value;

    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let mut a = TableBuilder::new("airports", &["iata", "state"]);
        a.push_row(vec!["IND".into(), "Indiana".into()]).unwrap();
        cat.add_table(a.build()).unwrap();
        let mut s = TableBuilder::new("states", &["state", "pop"]);
        s.push_row(vec!["Indiana".into(), Value::Int(6_800_000)])
            .unwrap();
        s.push_row(vec!["Georgia".into(), Value::Int(10_700_000)])
            .unwrap();
        cat.add_table(s.build()).unwrap();
        cat
    }

    #[test]
    fn ids_are_assigned_sequentially() {
        let cat = catalog();
        assert_eq!(cat.table_count(), 2);
        assert_eq!(cat.column_count(), 4);
        assert_eq!(cat.total_rows(), 3);
        assert_eq!(cat.tables()[0].id, TableId(0));
        assert_eq!(cat.tables()[1].id, TableId(1));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut cat = catalog();
        let dup = TableBuilder::new("airports", &["x"]).build();
        assert!(cat.add_table(dup).is_err());
    }

    #[test]
    fn column_id_roundtrip() {
        let cat = catalog();
        for (cid, cref) in cat.all_columns() {
            assert_eq!(cat.column_id(cref).unwrap(), cid);
            assert_eq!(cat.column_ref(cid).unwrap(), cref);
        }
    }

    #[test]
    fn lookup_failures_are_notfound() {
        let cat = catalog();
        assert!(matches!(cat.table(TableId(99)), Err(VerError::NotFound(_))));
        assert!(matches!(
            cat.column(ColumnRef {
                table: TableId(0),
                ordinal: 9
            }),
            Err(VerError::NotFound(_))
        ));
        assert!(matches!(
            cat.column_ref(ColumnId(99)),
            Err(VerError::NotFound(_))
        ));
    }

    #[test]
    fn qualified_names() {
        let cat = catalog();
        let cref = ColumnRef {
            table: TableId(1),
            ordinal: 1,
        };
        assert_eq!(cat.qualified_name(cref), "states.pop");
    }

    #[test]
    fn table_by_name_finds_tables() {
        let cat = catalog();
        assert!(cat.table_by_name("states").is_some());
        assert!(cat.table_by_name("nope").is_none());
    }

    #[test]
    fn approx_bytes_positive_for_nonempty() {
        assert!(catalog().approx_bytes() > 0);
    }
}
