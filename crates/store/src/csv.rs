//! Minimal CSV reader/writer with pandas-style type inference.
//!
//! Open-data portals distribute CSVs (the paper's Open Data corpus comes from
//! Open Data Portal Watch), so the store must round-trip them. Supports
//! RFC-4180 quoting (`"` quotes, doubled-quote escapes, embedded commas and
//! newlines). Headers may be absent (`has_header = false`) which produces
//! anonymous columns — the noisy-schema case.

use crate::schema::{ColumnMeta, TableSchema};
use crate::table::{Table, TableBuilder};
use std::io::{BufReader, Read, Write};
use ver_common::error::{Result, VerError};
use ver_common::value::{DataType, Value};

/// Parse one CSV record from `input` starting at `pos`.
/// Returns the fields and the position after the record's newline,
/// or `None` at end of input.
fn parse_record(input: &str, pos: usize) -> Option<(Vec<String>, usize)> {
    let bytes = input.as_bytes();
    if pos >= bytes.len() {
        return None;
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = pos;
    let mut in_quotes = false;
    while i < bytes.len() {
        let c = bytes[i];
        if in_quotes {
            if c == b'"' {
                if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                    field.push('"');
                    i += 2;
                } else {
                    in_quotes = false;
                    i += 1;
                }
            } else {
                // Safe: we only push whole UTF-8 chars below for multibyte.
                let ch_len = utf8_len(c);
                field.push_str(&input[i..i + ch_len]);
                i += ch_len;
            }
        } else {
            match c {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                b'\r' => {
                    i += 1;
                }
                b'\n' => {
                    i += 1;
                    fields.push(field);
                    return Some((fields, i));
                }
                _ => {
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
    }
    fields.push(field);
    Some((fields, i))
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse CSV text into a [`Table`] named `name`.
///
/// With `has_header = false` the columns are anonymous (`Ai = φ`).
/// Ragged rows are tolerated: short rows are null-padded, long rows error
/// with [`VerError::InvalidData`] naming the table and record — malformed
/// input must never panic the loader (see the malformed-input battery in
/// the tests). A leading UTF-8 BOM is stripped; an unterminated quoted
/// field is tolerated and runs to end of input (the noisy-data reading of
/// RFC 4180).
pub fn parse_csv(name: &str, text: &str, has_header: bool) -> Result<Table> {
    let text = text.strip_prefix('\u{feff}').unwrap_or(text);
    let mut pos = 0usize;
    let mut header: Option<Vec<String>> = None;
    if has_header {
        match parse_record(text, pos) {
            Some((fields, next)) => {
                header = Some(fields);
                pos = next;
            }
            None => {
                return Err(VerError::InvalidData(format!(
                    "csv '{name}': empty input but has_header = true"
                )))
            }
        }
    }

    // Peek arity from the header or the first data row.
    let arity = match &header {
        Some(h) => h.len(),
        None => match parse_record(text, pos) {
            Some((fields, _)) => fields.len(),
            None => 0,
        },
    };

    let metas: Vec<ColumnMeta> = match header {
        Some(h) => h
            .into_iter()
            .map(|n| {
                let trimmed = n.trim();
                if trimmed.is_empty() {
                    ColumnMeta::anonymous(DataType::Unknown)
                } else {
                    ColumnMeta::named(trimmed.to_string(), DataType::Unknown)
                }
            })
            .collect(),
        None => (0..arity)
            .map(|_| ColumnMeta::anonymous(DataType::Unknown))
            .collect(),
    };

    let mut builder = TableBuilder::with_schema(TableSchema::new(name, metas));
    let mut record = if has_header { 1usize } else { 0 };
    while let Some((fields, next)) = parse_record(text, pos) {
        pos = next;
        record += 1;
        // Skip completely blank records (trailing newline artefacts).
        if fields.len() == 1 && fields[0].is_empty() {
            continue;
        }
        let row: Vec<Value> = fields.iter().map(|f| Value::parse(f)).collect();
        builder
            .push_row(row)
            .map_err(|e| VerError::InvalidData(format!("csv '{name}' record {record}: {e}")))?;
    }
    Ok(builder.build())
}

/// Read a CSV [`Table`] from any reader.
///
/// Bytes that are not valid UTF-8 are [`VerError::InvalidData`] naming the
/// table and the offending byte offset (not an opaque I/O error, and never
/// a panic) — garbage files are an expected input class for a loader
/// pointed at an open-data corpus.
pub fn read_csv<R: Read>(name: &str, reader: R, has_header: bool) -> Result<Table> {
    let mut buf = Vec::new();
    BufReader::new(reader).read_to_end(&mut buf)?;
    let text = String::from_utf8(buf).map_err(|e| {
        VerError::InvalidData(format!(
            "csv '{name}': invalid UTF-8 at byte {}",
            e.utf8_error().valid_up_to()
        ))
    })?;
    parse_csv(name, &text, has_header)
}

/// Quote a field if it contains a separator, quote or newline.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write a table as CSV (header always written; anonymous columns get their
/// positional display names).
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> Result<()> {
    let header: Vec<String> = table
        .schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| quote_field(&c.display_name(i)))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for r in 0..table.row_count() {
        let row: Vec<String> = (0..table.column_count())
            .map(|c| {
                quote_field(
                    &table
                        .cell(r, c)
                        .map(ToString::to_string)
                        .unwrap_or_default(),
                )
            })
            .collect();
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Serialise a table to a CSV string.
pub fn to_csv_string(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("csv output is valid utf-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_csv_with_types() {
        let t = parse_csv("t", "city,pop\nBoston,650000\nSan Diego,1400000\n", true).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, 0), Some(&Value::text("Boston")));
        assert_eq!(t.cell(1, 1), Some(&Value::Int(1_400_000)));
        assert_eq!(t.schema.columns[1].dtype, DataType::Int);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = parse_csv(
            "t",
            "name,motto\n\"Doe, Jane\",\"she said \"\"hi\"\"\"\n",
            true,
        )
        .unwrap();
        assert_eq!(t.cell(0, 0), Some(&Value::text("Doe, Jane")));
        assert_eq!(t.cell(0, 1), Some(&Value::text("she said \"hi\"")));
    }

    #[test]
    fn quoted_newline_inside_field() {
        let t = parse_csv("t", "a,b\n\"line1\nline2\",2\n", true).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell(0, 0), Some(&Value::text("line1\nline2")));
    }

    #[test]
    fn headerless_csv_gives_anonymous_columns() {
        let t = parse_csv("t", "1,2\n3,4\n", false).unwrap();
        assert_eq!(t.row_count(), 2);
        assert!(t.schema.columns[0].name.is_none());
        assert_eq!(t.cell(1, 1), Some(&Value::Int(4)));
    }

    #[test]
    fn empty_and_na_cells_are_null() {
        let t = parse_csv("t", "a,b\n,NA\n5,\n", true).unwrap();
        assert_eq!(t.cell(0, 0), Some(&Value::Null));
        assert_eq!(t.cell(0, 1), Some(&Value::Null));
        assert_eq!(t.cell(1, 1), Some(&Value::Null));
    }

    #[test]
    fn crlf_line_endings() {
        let t = parse_csv("t", "a,b\r\n1,2\r\n", true).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell(0, 1), Some(&Value::Int(2)));
    }

    #[test]
    fn blank_header_cell_becomes_anonymous() {
        let t = parse_csv("t", "a,,c\n1,2,3\n", true).unwrap();
        assert!(t.schema.columns[1].name.is_none());
        assert_eq!(t.schema.columns[1].display_name(1), "_col1");
    }

    #[test]
    fn roundtrip_through_csv_string() {
        let src = "state,pop\nIndiana,6800000\n\"Has, comma\",5\n";
        let t = parse_csv("t", src, true).unwrap();
        let out = to_csv_string(&t);
        let t2 = parse_csv("t", &out, true).unwrap();
        assert_eq!(t.row_count(), t2.row_count());
        assert_eq!(t.cell(1, 0), t2.cell(1, 0));
    }

    #[test]
    fn unicode_content_survives() {
        let t = parse_csv("t", "name\nSão Paulo\n北京\n", true).unwrap();
        assert_eq!(t.cell(0, 0), Some(&Value::text("São Paulo")));
        assert_eq!(t.cell(1, 0), Some(&Value::text("北京")));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = parse_csv("t", "a\n1", true).unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn empty_input_with_header_errors() {
        assert!(parse_csv("t", "", true).is_err());
        let t = parse_csv("t", "", false).unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }

    // ---- malformed-input battery: garbage must come back as typed
    // `InvalidData` (or parse tolerantly), never panic the loader. ----

    #[test]
    fn long_row_is_invalid_data_with_record_number() {
        let err = parse_csv("bad", "a,b\n1,2\n1,2,3\n", true).unwrap_err();
        match err {
            VerError::InvalidData(m) => {
                assert!(m.contains("csv 'bad'"), "msg: {m}");
                assert!(m.contains("record 3"), "msg: {m}");
            }
            other => panic!("expected InvalidData, got {other:?}"),
        }
    }

    #[test]
    fn short_rows_are_null_padded_not_errors() {
        let t = parse_csv("t", "a,b,c\n1\n1,2\n", true).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, 1), Some(&Value::Null));
        assert_eq!(t.cell(0, 2), Some(&Value::Null));
        assert_eq!(t.cell(1, 2), Some(&Value::Null));
    }

    #[test]
    fn unterminated_quote_is_tolerated_to_eof() {
        let t = parse_csv("t", "a,b\n\"never closed,2\n3,4\n", true).unwrap();
        // The open quote swallows the rest of the input into one field of
        // one record (noisy-data tolerance) — no panic, no error.
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell(0, 0), Some(&Value::text("never closed,2\n3,4")));
    }

    #[test]
    fn stray_quotes_mid_field_are_literal() {
        let t = parse_csv("t", "a\nab\"cd\"\n", true).unwrap();
        assert_eq!(t.cell(0, 0), Some(&Value::text("ab\"cd\"")));
    }

    #[test]
    fn invalid_utf8_is_invalid_data_with_offset() {
        let bytes: &[u8] = b"a,b\n1,\xFF\xFE\n";
        let err = read_csv("bin", bytes, true).unwrap_err();
        match err {
            VerError::InvalidData(m) => {
                assert!(m.contains("csv 'bin'"), "msg: {m}");
                assert!(m.contains("invalid UTF-8 at byte 6"), "msg: {m}");
            }
            other => panic!("expected InvalidData, got {other:?}"),
        }
    }

    #[test]
    fn leading_bom_is_stripped_from_header() {
        let t = parse_csv("t", "\u{feff}a,b\n1,2\n", true).unwrap();
        assert_eq!(t.schema.columns[0].name.as_deref(), Some("a"));
        assert_eq!(t.cell(0, 0), Some(&Value::Int(1)));
    }

    #[test]
    fn control_characters_and_nuls_survive_as_text() {
        let t = parse_csv("t", "a\n\u{1}\u{0}x\n", true).unwrap();
        assert_eq!(t.cell(0, 0), Some(&Value::text("\u{1}\u{0}x")));
    }

    #[test]
    fn quote_garbage_battery_never_panics() {
        // Assorted pathological inputs: outcome may be Ok or InvalidData,
        // but the loader must never panic on any of them.
        let cases = [
            "\"",
            "\"\"",
            "\"\"\"",
            "a,\"b\n",
            "\",\",\"\n\"",
            ",,,\n,,,\n",
            "a,b\n\"x\"y,2\n",
            "\r\r\r\n",
            "a\n\"\r\n\"\n",
            "🦀,\"🦀\n🦀\"\n1,2\n",
        ];
        for (i, case) in cases.iter().enumerate() {
            for has_header in [true, false] {
                let _ = parse_csv("t", case, has_header)
                    .map(|t| (t.row_count(), t.column_count()))
                    .map_err(|e| {
                        assert!(
                            matches!(e, VerError::InvalidData(_)),
                            "case {i}: non-InvalidData error {e:?}"
                        )
                    });
            }
        }
    }
}
