//! COLUMN-SELECTION (Algorithm 4) and its baselines.
//!
//! Given the user's example values for each query attribute, this stage
//! retrieves candidate columns from the discovery index, clusters them by
//! connected components over the join hypergraph, scores clusters by their
//! best overlap with the examples, and keeps the top-θ score levels
//! (`θ = 1` keeps the best-overlap clusters and their ties; `θ = ∞`
//! degenerates to any non-empty overlap). The clustering is what makes the
//! component robust to noisy inputs: a noise value pulls in a noise column,
//! but that column is joinable with — hence clustered with — the true
//! column, so the true column survives selection.
//!
//! Baselines (§VI "RQ3"):
//! * [`baselines::select_all`] — any column containing ≥ 1 example
//!   (FastTopK-style);
//! * [`baselines::select_best`] — the column(s) with the maximum example
//!   overlap (SQuID-style), which the paper shows "crumbles" under noise.
//!
//! Layer 3 of the crate map in the repo-root `ARCHITECTURE.md` — the
//! first online stage after VIEW-SPECIFICATION.

pub mod baselines;
pub mod cluster;
pub mod column_selection;

pub use column_selection::{
    column_selection, AttributeCandidates, CandidateColumn, SelectionConfig, SelectionResult,
};
