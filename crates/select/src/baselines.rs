//! Column-retrieval baselines used in the paper's RQ3 comparison.
//!
//! * **SELECT-ALL** (from FastTopK, citation 35): any column containing at least one
//!   example value. Robust to noise but floods join-graph search.
//! * **SELECT-BEST** (from SQuID, citation 36): only the column(s) with the maximum
//!   example overlap. Fast but "crumbles" once noise means no single column
//!   contains all examples — the noise column out-scores the true one.
//!
//! Both produce the same [`SelectionResult`] shape as COLUMN-SELECTION so
//! join-graph search consumes them interchangeably.
//!
//! This module also contains a small cost model for SQuID's
//! abduction-ready database (αDB) used by the qualitative study (§VI-D):
//! SQuID precomputes, for every key/attribute pair, the α-table of value
//! co-occurrences; its size is what makes SQuID impractical on pathless
//! collections.

use crate::column_selection::{AttributeCandidates, CandidateColumn, SelectionResult};
use ver_common::fxhash::FxHashMap;
use ver_common::ids::ColumnId;
use ver_index::{DiscoveryIndex, Fuzziness, SearchTarget};
use ver_qbe::query::ExampleQuery;

fn overlaps_for(
    index: &DiscoveryIndex,
    qc: &ver_qbe::query::QueryColumn,
    fuzzy: Fuzziness,
) -> FxHashMap<ColumnId, usize> {
    let mut overlap: FxHashMap<ColumnId, usize> = FxHashMap::default();
    for example in qc.non_null() {
        for col in index.search_keyword(&example.normalized(), SearchTarget::Values, fuzzy) {
            *overlap.entry(col).or_insert(0) += 1;
        }
    }
    overlap
}

/// SELECT-ALL: every column containing ≥ 1 example value.
pub fn select_all(index: &DiscoveryIndex, query: &ExampleQuery) -> SelectionResult {
    let per_attribute = query
        .columns
        .iter()
        .map(|qc| {
            let overlap = overlaps_for(index, qc, Fuzziness::Exact);
            let mut candidates: Vec<CandidateColumn> = overlap
                .into_iter()
                .map(|(id, overlap)| CandidateColumn { id, overlap })
                .collect();
            candidates.sort_by_key(|c| c.id);
            let total = candidates.len();
            AttributeCandidates {
                candidates,
                total_columns: total,
                num_clusters: total, // no clustering: every column its own
                clusters_selected: total,
            }
        })
        .collect();
    SelectionResult { per_attribute }
}

/// SELECT-BEST: only the column(s) with maximum example overlap.
pub fn select_best(index: &DiscoveryIndex, query: &ExampleQuery) -> SelectionResult {
    let per_attribute = query
        .columns
        .iter()
        .map(|qc| {
            let overlap = overlaps_for(index, qc, Fuzziness::Exact);
            let total = overlap.len();
            let best = overlap.values().copied().max().unwrap_or(0);
            let mut candidates: Vec<CandidateColumn> = overlap
                .into_iter()
                .filter(|&(_, o)| o == best && o > 0)
                .map(|(id, overlap)| CandidateColumn { id, overlap })
                .collect();
            candidates.sort_by_key(|c| c.id);
            let selected = candidates.len();
            AttributeCandidates {
                candidates,
                total_columns: total,
                num_clusters: total,
                clusters_selected: selected,
            }
        })
        .collect();
    SelectionResult { per_attribute }
}

/// Estimated αDB row count for a SQuID-style precomputation over `catalog`:
/// for every table, every (candidate key, attribute) pair contributes the
/// table's row count (the α-relation materialises per-row derived facts).
/// The paper observes a 5.9M-row table yields an 8.1M-row αDB; this model
/// reproduces the ≥1× blow-up that makes SQuID impractical here.
pub fn squid_alpha_db_rows(catalog: &ver_store::catalog::TableCatalog) -> usize {
    let mut total = 0usize;
    for t in catalog.tables() {
        let rows = t.row_count();
        let cols = t.column_count();
        // Key candidates × non-key attributes; at least one pair per table.
        let keyish = t
            .columns()
            .iter()
            .filter(|c| c.distinct_ratio() > 0.95)
            .count()
            .max(1);
        total += rows * keyish.min(4) * cols.saturating_sub(1).max(1);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_qbe::query::QueryColumn;
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    /// truth.state has state0..49; noisy.state has state0..39 + fake0..9.
    fn setup() -> (TableCatalog, DiscoveryIndex) {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("truth", &["state"]);
        for i in 0..50 {
            b.push_row(vec![Value::text(format!("state{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("noisy", &["state"]);
        for i in 0..40 {
            b.push_row(vec![Value::text(format!("state{i}"))]).unwrap();
        }
        for i in 0..10 {
            b.push_row(vec![Value::text(format!("fake{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        (cat, idx)
    }

    fn query(values: &[&str]) -> ExampleQuery {
        ExampleQuery::new(vec![QueryColumn::of_strs(values)]).unwrap()
    }

    #[test]
    fn select_all_returns_every_matching_column() {
        let (_, idx) = setup();
        let res = select_all(&idx, &query(&["state1", "fake0"]));
        let ids: Vec<ColumnId> = res.per_attribute[0]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        assert_eq!(ids, vec![ColumnId(0), ColumnId(1)]);
    }

    #[test]
    fn select_best_picks_max_overlap_only() {
        let (_, idx) = setup();
        // noise value ⇒ noisy.state overlap 3, truth.state overlap 2.
        let res = select_best(&idx, &query(&["state1", "state2", "fake0"]));
        let ids: Vec<ColumnId> = res.per_attribute[0]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        assert_eq!(ids, vec![ColumnId(1)], "noise column wins — truth dropped");
    }

    #[test]
    fn select_best_keeps_ties() {
        let (_, idx) = setup();
        let res = select_best(&idx, &query(&["state1", "state2"]));
        let ids: Vec<ColumnId> = res.per_attribute[0]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        assert_eq!(
            ids,
            vec![ColumnId(0), ColumnId(1)],
            "both contain both examples"
        );
    }

    #[test]
    fn select_best_demonstrates_noise_collapse() {
        // This is the Table V story in miniature: with noise, SELECT-BEST
        // loses the ground-truth column while SELECT-ALL keeps it.
        let (_, idx) = setup();
        let noisy_q = query(&["state45", "fake0", "fake1"]); // state45 only in truth
        let best = select_best(&idx, &noisy_q);
        let best_ids: Vec<ColumnId> = best.per_attribute[0]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        assert_eq!(best_ids, vec![ColumnId(1)]);
        let all = select_all(&idx, &noisy_q);
        let all_ids: Vec<ColumnId> = all.per_attribute[0]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        assert!(all_ids.contains(&ColumnId(0)));
    }

    #[test]
    fn empty_results_for_unknown_values() {
        let (_, idx) = setup();
        let res = select_best(&idx, &query(&["zzz"]));
        assert!(res.per_attribute[0].candidates.is_empty());
        let res = select_all(&idx, &query(&["zzz"]));
        assert!(res.per_attribute[0].candidates.is_empty());
    }

    #[test]
    fn alpha_db_is_at_least_as_large_as_data() {
        let (cat, _) = setup();
        let alpha = squid_alpha_db_rows(&cat);
        assert!(
            alpha >= cat.total_rows(),
            "αDB must blow up storage: {alpha}"
        );
    }
}
