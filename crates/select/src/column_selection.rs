//! COLUMN-SELECTION — Algorithm 4 of the paper.

use crate::cluster::connected_components;
use serde::{Deserialize, Serialize};
use ver_common::fxhash::FxHashMap;
use ver_common::ids::ColumnId;
use ver_index::{DiscoveryIndex, Fuzziness, SearchTarget};
use ver_qbe::query::{ExampleQuery, QueryColumn};

/// Tunables for column selection.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Number of top score *levels* to keep (paper: θ = 1 keeps the
    /// highest-overlap clusters including ties; `usize::MAX` ≈ θ = ∞ keeps
    /// any cluster with non-empty overlap).
    pub theta: usize,
    /// Keyword-match fuzziness for example lookup.
    pub fuzzy: Fuzziness,
    /// Hypergraph threshold used for the connected-components clustering.
    pub cluster_threshold: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            theta: 1,
            fuzzy: Fuzziness::Exact,
            cluster_threshold: 0.8,
        }
    }
}

/// A candidate column with its example-overlap score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateColumn {
    /// The column.
    pub id: ColumnId,
    /// Number of distinct example values the column contains.
    pub overlap: usize,
}

/// Selection output for one query attribute, with the intermediate counts
/// the paper's microbenchmarks report (Fig. 8c).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeCandidates {
    /// Selected candidate columns (sorted by id).
    pub candidates: Vec<CandidateColumn>,
    /// Columns retrieved before clustering ("Total No. of Columns").
    pub total_columns: usize,
    /// Clusters formed ("No. of Clusters").
    pub num_clusters: usize,
    /// Clusters kept by the top-θ rule ("No. of Clusters Selected").
    pub clusters_selected: usize,
}

/// Full column-selection result: one entry per query attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionResult {
    /// Per-attribute candidates, in query-column order.
    pub per_attribute: Vec<AttributeCandidates>,
}

impl SelectionResult {
    /// True if some attribute ended up with zero candidates (ill-specified
    /// query — Algorithm 4's "rationale" calls this detection out).
    pub fn has_empty_attribute(&self) -> bool {
        self.per_attribute.iter().any(|a| a.candidates.is_empty())
    }

    /// Total selected columns across attributes.
    pub fn total_selected(&self) -> usize {
        self.per_attribute.iter().map(|a| a.candidates.len()).sum()
    }
}

/// Run COLUMN-SELECTION for every attribute of `query`.
pub fn column_selection(
    index: &DiscoveryIndex,
    query: &ExampleQuery,
    config: &SelectionConfig,
) -> SelectionResult {
    let per_attribute = query
        .columns
        .iter()
        .map(|qc| select_for_attribute(index, qc, config))
        .collect();
    SelectionResult { per_attribute }
}

/// Algorithm 4 for a single attribute.
fn select_for_attribute(
    index: &DiscoveryIndex,
    qc: &QueryColumn,
    config: &SelectionConfig,
) -> AttributeCandidates {
    // Lines 2-4: retrieve columns per example; count overlap per column.
    let mut overlap: FxHashMap<ColumnId, usize> = FxHashMap::default();
    for example in qc.non_null() {
        let needle = example.normalized();
        for col in index.search_keyword(&needle, SearchTarget::Values, config.fuzzy) {
            *overlap.entry(col).or_insert(0) += 1;
        }
    }
    // Name hints retrieve by attribute name (VIEW-SPECIFICATION hands both).
    if let Some(hint) = &qc.name_hint {
        for col in index.search_keyword(hint, SearchTarget::Attributes, config.fuzzy) {
            overlap.entry(col).or_insert(0);
        }
    }

    let mut all: Vec<ColumnId> = overlap.keys().copied().collect();
    all.sort_unstable();
    let total_columns = all.len();

    // Line 5: cluster candidates by hypergraph connected components.
    let clusters = connected_components(index, &all, config.cluster_threshold);
    let num_clusters = clusters.len();

    // Lines 6-7: score clusters by their best member overlap.
    let mut scored: Vec<(usize, &Vec<ColumnId>)> = clusters
        .iter()
        .map(|cluster| {
            let score = cluster
                .iter()
                .map(|c| overlap.get(c).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            (score, cluster)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1[0].cmp(&b.1[0])));

    // Line 8: keep the top-θ score levels.
    let mut kept_levels: Vec<usize> = scored.iter().map(|(s, _)| *s).collect();
    kept_levels.dedup();
    kept_levels.truncate(config.theta);
    let min_kept = kept_levels.last().copied().unwrap_or(usize::MAX);

    let mut candidates: Vec<CandidateColumn> = Vec::new();
    let mut clusters_selected = 0;
    for (score, cluster) in &scored {
        if *score < min_kept || *score == 0 {
            continue;
        }
        clusters_selected += 1;
        candidates.extend(cluster.iter().map(|&id| CandidateColumn {
            id,
            overlap: overlap.get(&id).copied().unwrap_or(0),
        }));
    }
    candidates.sort_by_key(|c| c.id);
    candidates.dedup_by_key(|c| c.id);

    AttributeCandidates {
        candidates,
        total_columns,
        num_clusters,
        clusters_selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    /// Corpus with:
    /// * `truth.state`   (C0): state0..state49           — ground truth
    /// * `noisy.state`   (C1): state0..state39 + fake0..9 — noise column,
    ///   containment 40/50 = 0.8 w.r.t. truth
    /// * `other.city`    (C2): city0..city49             — unrelated
    fn setup() -> DiscoveryIndex {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("truth", &["state"]);
        for i in 0..50 {
            b.push_row(vec![Value::text(format!("state{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("noisy", &["state"]);
        for i in 0..40 {
            b.push_row(vec![Value::text(format!("state{i}"))]).unwrap();
        }
        for i in 0..10 {
            b.push_row(vec![Value::text(format!("fake{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("other", &["city"]);
        for i in 0..50 {
            b.push_row(vec![Value::text(format!("city{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn query(values: &[&str]) -> ExampleQuery {
        ExampleQuery::new(vec![QueryColumn::of_strs(values)]).unwrap()
    }

    #[test]
    fn clean_query_selects_ground_truth_cluster() {
        let idx = setup();
        let q = query(&["state1", "state2", "state3"]);
        let res = column_selection(&idx, &q, &SelectionConfig::default());
        let attr = &res.per_attribute[0];
        // Both state columns contain the examples; they cluster together.
        assert_eq!(attr.total_columns, 2);
        assert_eq!(attr.num_clusters, 1);
        assert_eq!(attr.clusters_selected, 1);
        let ids: Vec<ColumnId> = attr.candidates.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![ColumnId(0), ColumnId(1)]);
    }

    #[test]
    fn noisy_query_keeps_ground_truth_via_cluster() {
        let idx = setup();
        // 2 ground-truth values + 1 noise value only in `noisy.state`.
        let q = query(&["state1", "state2", "fake0"]);
        let res = column_selection(&idx, &q, &SelectionConfig::default());
        let attr = &res.per_attribute[0];
        // noise column has overlap 3, truth 2 — same cluster, so θ=1 keeps both.
        let ids: Vec<ColumnId> = attr.candidates.iter().map(|c| c.id).collect();
        assert!(
            ids.contains(&ColumnId(0)),
            "ground-truth column must survive"
        );
        assert!(ids.contains(&ColumnId(1)));
        let best = attr
            .candidates
            .iter()
            .find(|c| c.id == ColumnId(1))
            .unwrap();
        assert_eq!(best.overlap, 3);
    }

    #[test]
    fn theta_one_drops_low_scoring_disconnected_clusters() {
        let idx = setup();
        // Two state examples + one city example: city cluster scores 1 < 2.
        let q = query(&["state1", "state2", "city5"]);
        let res = column_selection(&idx, &q, &SelectionConfig::default());
        let attr = &res.per_attribute[0];
        assert_eq!(attr.num_clusters, 2);
        assert_eq!(attr.clusters_selected, 1);
        let ids: Vec<ColumnId> = attr.candidates.iter().map(|c| c.id).collect();
        assert!(
            !ids.contains(&ColumnId(2)),
            "city cluster must be dropped at θ=1"
        );
    }

    #[test]
    fn theta_infinite_keeps_all_nonempty_clusters() {
        let idx = setup();
        let q = query(&["state1", "city5"]);
        let cfg = SelectionConfig {
            theta: usize::MAX,
            ..Default::default()
        };
        let res = column_selection(&idx, &q, &cfg);
        let ids: Vec<ColumnId> = res.per_attribute[0]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        assert!(ids.contains(&ColumnId(0)));
        assert!(ids.contains(&ColumnId(2)));
    }

    #[test]
    fn unknown_values_yield_empty_attribute() {
        let idx = setup();
        let q = query(&["nonexistent1", "nonexistent2"]);
        let res = column_selection(&idx, &q, &SelectionConfig::default());
        assert!(res.has_empty_attribute());
        assert_eq!(res.total_selected(), 0);
    }

    #[test]
    fn name_hint_retrieves_by_attribute() {
        let idx = setup();
        let q = ExampleQuery::new(vec![QueryColumn::of_values(vec![Value::Null]).named("city")])
            .unwrap();
        let res = column_selection(&idx, &q, &SelectionConfig::default());
        // hint-only columns have overlap 0 → dropped by the `score == 0`
        // guard unless θ admits them; check retrieval happened.
        assert_eq!(res.per_attribute[0].total_columns, 1);
    }

    #[test]
    fn multi_attribute_queries_select_independently() {
        let idx = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["state1", "state2"]),
            QueryColumn::of_strs(&["city1", "city2"]),
        ])
        .unwrap();
        let res = column_selection(&idx, &q, &SelectionConfig::default());
        assert_eq!(res.per_attribute.len(), 2);
        let a0: Vec<ColumnId> = res.per_attribute[0]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        let a1: Vec<ColumnId> = res.per_attribute[1]
            .candidates
            .iter()
            .map(|c| c.id)
            .collect();
        assert!(a0.contains(&ColumnId(0)));
        assert_eq!(a1, vec![ColumnId(2)]);
    }

    #[test]
    fn fuzzy_matching_recovers_typos() {
        let idx = setup();
        let q = query(&["statte1", "state2"]); // one edit away
        let cfg = SelectionConfig {
            fuzzy: Fuzziness::MaxEdits(1),
            ..Default::default()
        };
        let res = column_selection(&idx, &q, &cfg);
        let attr = &res.per_attribute[0];
        let best_overlap = attr.candidates.iter().map(|c| c.overlap).max().unwrap();
        assert_eq!(best_overlap, 2, "both examples should match fuzzily");
    }
}
