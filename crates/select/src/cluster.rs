//! Connected-component clustering of candidate columns over the join
//! hypergraph (Algorithm 4 line 5).

use ver_common::fxhash::FxHashMap;
use ver_common::ids::ColumnId;
use ver_index::DiscoveryIndex;

/// Partition `columns` into connected components of the hypergraph
/// restricted to `columns`, using NEIGHBORS at `threshold`.
///
/// Returns clusters as sorted column lists, ordered by their smallest
/// member for determinism.
pub fn connected_components(
    index: &DiscoveryIndex,
    columns: &[ColumnId],
    threshold: f64,
) -> Vec<Vec<ColumnId>> {
    let member: FxHashMap<ColumnId, usize> =
        columns.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut parent: Vec<usize> = (0..columns.len()).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for (i, &c) in columns.iter().enumerate() {
        for (n, _) in index.neighbors(c, threshold) {
            if let Some(&j) = member.get(&n) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    let mut groups: FxHashMap<usize, Vec<ColumnId>> = FxHashMap::default();
    for (i, &c) in columns.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(c);
    }
    let mut clusters: Vec<Vec<ColumnId>> = groups.into_values().collect();
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    /// Two joinable "state" columns + one disjoint "city" column.
    fn index() -> DiscoveryIndex {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..50).map(|i| format!("state{i}")).collect();
        for name in ["a", "b"] {
            let mut b = TableBuilder::new(name, &["state"]);
            for s in &states {
                b.push_row(vec![Value::text(s.clone())]).unwrap();
            }
            cat.add_table(b.build()).unwrap();
        }
        let mut b = TableBuilder::new("c", &["city"]);
        for i in 0..50 {
            b.push_row(vec![Value::text(format!("city{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn joinable_columns_cluster_together() {
        let idx = index();
        let cols = vec![ColumnId(0), ColumnId(1), ColumnId(2)];
        let clusters = connected_components(&idx, &cols, 0.8);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![ColumnId(0), ColumnId(1)]);
        assert_eq!(clusters[1], vec![ColumnId(2)]);
    }

    #[test]
    fn restriction_to_input_set() {
        // Clustering only {C0, C2} must not bring in C1.
        let idx = index();
        let clusters = connected_components(&idx, &[ColumnId(0), ColumnId(2)], 0.8);
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn empty_input_gives_no_clusters() {
        let idx = index();
        assert!(connected_components(&idx, &[], 0.8).is_empty());
    }

    #[test]
    fn threshold_above_scores_splits_clusters() {
        let idx = index();
        let cols = vec![ColumnId(0), ColumnId(1)];
        let clusters = connected_components(&idx, &cols, 1.01);
        assert_eq!(clusters.len(), 2);
    }
}
