//! Regression: well-formed `VER_ADDR` / `VER_MAX_CONNS` values are
//! honored by the process-wide knob resolution (the malformed-value
//! fallback half lives in `net_knobs_malformed.rs` — each case needs its
//! own process because the knobs resolve once per process).

use ver_serve::net::{default_addr, default_max_conns, NetConfig};

#[test]
fn valid_net_knobs_are_honored() {
    std::env::set_var("VER_ADDR", "127.0.0.1:0");
    std::env::set_var("VER_MAX_CONNS", "3");

    let expected: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();
    assert_eq!(default_addr(), expected);
    assert_eq!(default_max_conns(), 3);

    let config = NetConfig::default();
    assert_eq!(config.addr, expected);
    assert_eq!(config.max_conns, 3);
}
