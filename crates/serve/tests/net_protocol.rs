//! Corruption suite for the `verd` wire protocol (`VERNET\x01`).
//!
//! The robustness contract under test, mirroring the persisted-index
//! corruption suite (`persist_corruption.rs`): **any** single-byte flip,
//! **any** truncation, an oversized length prefix, and a garbage preamble
//! must all decode to a typed [`VerError::Protocol`] — never a panic,
//! never an unbounded allocation, never a successfully-decoded wrong
//! message. The frame checksum is verified before the payload codec runs,
//! which is what makes the flip property hold at *every* offset (magic,
//! length field, payload, the checksum itself). On top of that, the
//! payload codecs must survive *arbitrary* bytes inside a valid frame:
//! decode may succeed or fail typed, but must never panic or hang.

use proptest::prelude::*;
use std::sync::OnceLock;
use ver_common::error::VerError;
use ver_common::value::Value;
use ver_qbe::{ExampleQuery, QueryColumn, ViewSpec};
use ver_serve::net::frame::{
    decode_frame, encode_frame, read_frame, write_frame, ReadOutcome, MAGIC,
};
use ver_serve::net::{
    Client, HealthReply, NetStats, Page, QueryHead, Request, Response, StatsReply, WireResult,
    WireRouterLeg, WireSearchStats, WireShardOutput, WireShardView, WireView, PROTOCOL_VERSION,
};
use ver_serve::ServeStats;

fn sample_view(id: u32) -> WireView {
    WireView {
        id,
        score_bits: (1.5 + id as f64).to_bits(),
        hops: 1,
        source_tables: vec![0, id + 1],
        columns: vec![Some("state".into()), None],
        rows: vec![
            vec![Value::text(format!("state_{id}")), Value::Int(id as i64)],
            vec![Value::Null, Value::Float(0.25 * id as f64)],
        ],
    }
}

/// One of every request type.
fn request_corpus() -> Vec<Request> {
    let qbe = ViewSpec::Qbe(
        ExampleQuery::new(vec![
            QueryColumn::of_strs(&["ATL", "IND"]).named("iata"),
            QueryColumn::of_values(vec![Value::Int(7), Value::Null, Value::Float(1.25)]),
        ])
        .unwrap(),
    );
    vec![
        Request::Query {
            spec: qbe,
            page_size: 8,
            timeout_ms: 500,
        },
        Request::Query {
            spec: ViewSpec::Keyword(vec!["population".into(), "staté".into()]),
            page_size: 0,
            timeout_ms: 0,
        },
        Request::Query {
            spec: ViewSpec::Attribute(vec!["name".into()]),
            page_size: u32::MAX,
            timeout_ms: u64::MAX,
        },
        Request::FetchPage {
            cursor: 0xDEAD_BEEF,
            page: 3,
        },
        Request::ShardQuery {
            spec: ViewSpec::Keyword(vec!["city".into()]),
            shard: 1,
            shard_count: 4,
            budget_ms: 750,
        },
        Request::Stats,
        Request::Health,
        Request::Shutdown,
    ]
}

fn sample_shard_view(id: u32) -> WireShardView {
    WireShardView {
        score_bits: (0.5 + id as f64).to_bits(),
        canon: vec![(0, id + 1), (id + 1, 2)],
        projection: vec![(0, 0), (id + 1, 1)],
        view_id: id,
        table_id: 40 + id,
        table_name: format!("view_{id}"),
        columns: vec![(Some("state".into()), 2), (None, 0)],
        rows: vec![
            vec![Value::text(format!("state_{id}")), Value::Int(id as i64)],
            vec![Value::Null, Value::Int(-1)],
        ],
        join_edges: vec![((0, 0), (id + 1, 1))],
        source_tables: vec![0, id + 1],
        prov_projection: vec![(0, 0)],
        join_score_bits: (0.25 * id as f64).to_bits(),
    }
}

/// One of every response type.
fn response_corpus() -> Vec<Response> {
    vec![
        Response::Query(QueryHead {
            partial: true,
            stats: WireSearchStats {
                combinations: 21,
                skipped_by_cache: 3,
                joinable_groups: 21,
                join_graphs: 402,
                views: 402,
            },
            survivors_c2: vec![0, 2, 5, 9],
            ranked: vec![(2, 40), (0, 12), (5, 1)],
            total_views: 5,
            page_size: 2,
            cursor: 11,
            views: vec![sample_view(0), sample_view(1)],
        }),
        Response::Page(Page {
            cursor: 11,
            page: 2,
            last: true,
            views: vec![sample_view(4)],
        }),
        Response::Stats(StatsReply {
            serve: ServeStats::default(),
            net: NetStats {
                accepted: 10,
                dropped_conns: 2,
                protocol_errors: 1,
                ..NetStats::default()
            },
            router: vec![
                WireRouterLeg {
                    addr: "127.0.0.1:7201".into(),
                    attempts: 31,
                    retries: 4,
                    failures: 5,
                    failovers: 1,
                    breaker: 0,
                },
                WireRouterLeg {
                    addr: "[::1]:7202".into(),
                    attempts: 9,
                    retries: 9,
                    failures: 9,
                    failovers: 3,
                    breaker: 2,
                },
            ],
        }),
        Response::ShardOutput(WireShardOutput {
            shard: 3,
            shard_count: 4,
            partial: true,
            stats: WireSearchStats {
                combinations: 7,
                skipped_by_cache: 1,
                joinable_groups: 6,
                join_graphs: 12,
                views: 2,
            },
            views: vec![sample_shard_view(0), sample_shard_view(5)],
        }),
        Response::Health(HealthReply {
            protocol_version: PROTOCOL_VERSION,
            tables: 60,
            columns: 241,
            shards: 2,
            uptime_ms: 99_000,
        }),
        Response::ShutdownAck,
        Response::Error {
            code: VerError::DeadlineExceeded(String::new()).wire_code(),
            message: "jgs stage".into(),
        },
    ]
}

/// Every corpus message as a complete encoded frame.
fn frame_corpus() -> &'static Vec<Vec<u8>> {
    static FRAMES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    FRAMES.get_or_init(|| {
        let mut frames: Vec<Vec<u8>> = request_corpus()
            .iter()
            .map(|r| encode_frame(&r.encode()))
            .collect();
        frames.extend(response_corpus().iter().map(|r| encode_frame(&r.encode())));
        frames
    })
}

#[test]
fn every_request_type_round_trips() {
    for req in request_corpus() {
        let framed = encode_frame(&req.encode());
        let payload = decode_frame(&framed).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }
}

#[test]
fn every_response_type_round_trips() {
    for resp in response_corpus() {
        let framed = encode_frame(&resp.encode());
        let payload = decode_frame(&framed).unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }
}

#[test]
fn streaming_reader_agrees_with_buffer_decoder() {
    for frame in frame_corpus() {
        let mut cursor = std::io::Cursor::new(frame.clone());
        match read_frame(&mut cursor).unwrap() {
            ReadOutcome::Frame(p) => assert_eq!(p, decode_frame(frame).unwrap()),
            ReadOutcome::Eof => panic!("unexpected eof"),
        }
    }
}

#[test]
fn garbage_preambles_are_protocol_errors() {
    let payload = Request::Stats.encode();
    let good = encode_frame(&payload);
    for preamble in [
        &b"GARBAGE"[..],
        b"VERNET\x02", // wrong framing version
        b"VERIDX\x03", // the *index* magic must not be accepted
        b"\x00\x00\x00\x00\x00\x00\x00",
    ] {
        let mut bad = good.clone();
        bad[..MAGIC.len()].copy_from_slice(&preamble[..MAGIC.len()]);
        if bad == good {
            continue;
        }
        assert!(
            matches!(decode_frame(&bad), Err(VerError::Protocol(_))),
            "preamble {preamble:?} not rejected"
        );
    }
}

#[test]
fn oversized_length_prefix_is_a_protocol_error_for_every_message() {
    for frame in frame_corpus() {
        let mut bad = frame.clone();
        bad[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&bad) {
            Err(VerError::Protocol(m)) => assert!(m.contains("exceeds cap"), "{m}"),
            other => panic!("expected Protocol, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, .. ProptestConfig::default() })]

    #[test]
    fn any_single_byte_flip_is_a_protocol_error(
        frame_seed in any::<u64>(),
        offset_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let frames = frame_corpus();
        let frame = &frames[(frame_seed % frames.len() as u64) as usize];
        let offset = (offset_seed % frame.len() as u64) as usize;
        let mut bad = frame.clone();
        bad[offset] ^= 1u8 << bit;
        match decode_frame(&bad) {
            Err(VerError::Protocol(_)) => {}
            Ok(_) => prop_assert!(false, "flip at {offset} bit {bit} decoded"),
            Err(e) => prop_assert!(false, "flip at {offset} bit {bit}: non-Protocol {e:?}"),
        }
        // The streaming reader must agree (a flipped length field can
        // also surface as a truncated read — still Protocol).
        let mut cursor = std::io::Cursor::new(bad);
        match read_frame(&mut cursor) {
            Err(VerError::Protocol(_)) | Ok(ReadOutcome::Eof) => {}
            Ok(ReadOutcome::Frame(_)) =>
                prop_assert!(false, "stream flip at {offset} bit {bit} decoded"),
            Err(e) =>
                prop_assert!(false, "stream flip at {offset} bit {bit}: non-Protocol {e:?}"),
        }
    }

    #[test]
    fn any_truncation_is_a_protocol_error(
        frame_seed in any::<u64>(),
        len_seed in any::<u64>(),
    ) {
        let frames = frame_corpus();
        let frame = &frames[(frame_seed % frames.len() as u64) as usize];
        let keep = (len_seed % frame.len() as u64) as usize;
        match decode_frame(&frame[..keep]) {
            Err(VerError::Protocol(_)) => {}
            Ok(_) => prop_assert!(false, "truncation to {keep} decoded"),
            Err(e) => prop_assert!(false, "truncation to {keep}: non-Protocol {e:?}"),
        }
        // Streaming: a truncated stream is a peer that died mid-frame —
        // Protocol, except the empty prefix which is a clean EOF.
        let mut cursor = std::io::Cursor::new(frame[..keep].to_vec());
        match read_frame(&mut cursor) {
            Ok(ReadOutcome::Eof) => prop_assert!(keep == 0, "eof at {keep}"),
            Err(VerError::Protocol(_)) => prop_assert!(keep > 0),
            Ok(ReadOutcome::Frame(_)) => prop_assert!(false, "stream truncation to {keep} decoded"),
            Err(e) => prop_assert!(false, "stream truncation to {keep}: non-Protocol {e:?}"),
        }
    }

    #[test]
    fn arbitrary_payload_bytes_never_panic_the_codecs(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Inside a *valid* frame, the payload codec sees attacker-chosen
        // bytes. Decode may succeed (a valid encoding exists by chance)
        // or fail — but only ever with the typed protocol error.
        if let Err(e) = Request::decode(&bytes) {
            prop_assert!(matches!(e, VerError::Protocol(_)), "request: {e:?}");
        }
        if let Err(e) = Response::decode(&bytes) {
            prop_assert!(matches!(e, VerError::Protocol(_)), "response: {e:?}");
        }
    }

    #[test]
    fn hostile_counts_fail_before_allocation(
        count in any::<u32>(),
    ) {
        // A Page response whose trailing view count is arbitrary: the
        // codec must reject impossible counts from the remaining-bytes
        // bound, not trust them into an allocation.
        let mut payload = Response::Page(Page {
            cursor: 1,
            page: 0,
            last: false,
            views: vec![],
        })
        .encode();
        let n = payload.len();
        payload[n - 4..].copy_from_slice(&count.to_le_bytes());
        match Response::decode(&payload) {
            Ok(Response::Page(p)) => prop_assert!(p.views.is_empty() && count == 0),
            Ok(other) => prop_assert!(false, "decoded {other:?}"),
            Err(e) => {
                prop_assert!(matches!(e, VerError::Protocol(_)), "{e:?}");
                prop_assert!(count > 0);
            }
        }
    }
}

/// A one-connection scripted peer: binds an ephemeral port, accepts a
/// single connection, and hands it to `script` on a background thread.
/// Lets the tests below play a *misbehaving* server — something the real
/// `Server` (correctly) refuses to be.
fn scripted_server<F>(script: F) -> std::net::SocketAddr
where
    F: FnOnce(std::net::TcpStream) + Send + 'static,
{
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            script(stream);
        }
    });
    addr
}

/// Regression: a server that hands back an empty-but-not-final page used
/// to spin `Client::query`'s reassembly loop forever (the loop condition
/// `views.len() < total` never advanced). It must now surface as a typed
/// protocol error and poison the connection — the stream's pagination
/// state is unrecoverable.
#[test]
fn zero_progress_pagination_is_a_typed_error_not_an_infinite_loop() {
    let addr = scripted_server(|mut s| {
        // Query → a head promising 3 views, delivering 1, with a cursor.
        read_frame(&mut s).unwrap();
        let head = Response::Query(QueryHead {
            partial: false,
            stats: WireSearchStats {
                combinations: 1,
                skipped_by_cache: 0,
                joinable_groups: 1,
                join_graphs: 1,
                views: 3,
            },
            survivors_c2: vec![0],
            ranked: vec![(0, 1)],
            total_views: 3,
            page_size: 1,
            cursor: 7,
            views: vec![sample_view(0)],
        });
        write_frame(&mut s, &head.encode()).unwrap();
        // FetchPage → an empty page that is *not* last: zero progress.
        read_frame(&mut s).unwrap();
        let page = Response::Page(Page {
            cursor: 7,
            page: 1,
            last: false,
            views: vec![],
        });
        write_frame(&mut s, &page.encode()).unwrap();
        // Keep the socket open so the failure can't be blamed on EOF.
        let _ = read_frame(&mut s);
    });

    let mut client = Client::connect(addr).unwrap();
    match client.query(&ViewSpec::Keyword(vec!["x".into()]), 1, 0) {
        Err(VerError::Protocol(m)) => assert!(m.contains("zero-progress"), "{m}"),
        other => panic!("expected zero-progress Protocol error, got {other:?}"),
    }
    assert!(client.is_poisoned());
    // Later calls fail fast, without touching the desynced stream.
    match client.health() {
        Err(VerError::Protocol(m)) => assert!(m.contains("poisoned"), "{m}"),
        other => panic!("expected poisoned Protocol error, got {other:?}"),
    }
}

/// A cleanly-delivered `Error` frame is a complete exchange: the stream is
/// still frame-aligned, so the connection stays usable.
#[test]
fn a_clean_server_error_frame_does_not_poison_the_connection() {
    let addr = scripted_server(|mut s| {
        read_frame(&mut s).unwrap();
        let err = Response::Error {
            code: VerError::InvalidQuery(String::new()).wire_code(),
            message: "empty spec".into(),
        };
        write_frame(&mut s, &err.encode()).unwrap();
        read_frame(&mut s).unwrap();
        let health = Response::Health(HealthReply {
            protocol_version: PROTOCOL_VERSION,
            tables: 1,
            columns: 2,
            shards: 1,
            uptime_ms: 5,
        });
        write_frame(&mut s, &health.encode()).unwrap();
    });

    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(client.stats(), Err(VerError::InvalidQuery(_))));
    assert!(!client.is_poisoned(), "typed server error must not poison");
    assert_eq!(client.health().unwrap().tables, 1);
}

/// A server dying mid-exchange leaves the stream in an unknowable state:
/// the first error poisons, and every later call on the same connection
/// fails fast with a reconnect hint instead of reading garbage.
#[test]
fn a_mid_exchange_close_poisons_the_connection() {
    let addr = scripted_server(|mut s| {
        read_frame(&mut s).unwrap();
        // Drop without replying.
    });

    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(client.health(), Err(VerError::Protocol(_))));
    assert!(client.is_poisoned());
    match client.stats() {
        Err(VerError::Protocol(m)) => assert!(m.contains("poisoned"), "{m}"),
        other => panic!("expected poisoned Protocol error, got {other:?}"),
    }
}

#[test]
fn render_matches_the_golden_format_shape() {
    // `WireResult::render` must produce the exact golden snapshot line
    // grammar; the over-the-wire golden test pins it against the real
    // snapshot file, this pins the shape without an engine.
    let result = WireResult {
        partial: false,
        stats: WireSearchStats {
            combinations: 2,
            skipped_by_cache: 0,
            joinable_groups: 2,
            join_graphs: 3,
            views: 1,
        },
        survivors_c2: vec![0],
        ranked: vec![(0, 4)],
        views: vec![WireView {
            id: 0,
            score_bits: 1.0f64.to_bits(),
            hops: 1,
            source_tables: vec![0, 1],
            columns: vec![Some("a".into()), Some("b".into())],
            rows: vec![vec![Value::text("x"), Value::text("y")]],
        }],
    };
    let mut out = String::new();
    result.render(&mut out, "Q1");
    assert_eq!(
        out,
        "# query Q1\n\
         stats combinations=2 groups=2 graphs=3 views=1\n\
         view V0 score=1.000000 rows=1 cols=2 hops=1 tables=T0,T1\n\
         survivors_c2 V0\n\
         ranked V0:4\n\n"
    );
}
