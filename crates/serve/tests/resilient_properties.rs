//! Property tests for the resilient-client building blocks: the jittered
//! exponential backoff and the per-leg circuit breaker.
//!
//! Both are deliberately pure (the backoff takes an explicit seed, the
//! breaker an explicit clock), so they can be driven exhaustively here
//! without a network. Pinned invariants:
//!
//! * **backoff bounds** — every delay lands in `[exp/2, exp]` where
//!   `exp = min(base · 2^attempt, cap)`; jitter never pushes a retry past
//!   the cap and never collapses it below half the exponential schedule;
//! * **backoff determinism** — the same `(policy, attempt, seed)` always
//!   yields the same delay (invariant 7: no ambient randomness);
//! * **breaker state machine** — a from-scratch reference model and the
//!   production `Breaker` agree on state, admission, and failure streak
//!   after every operation of an arbitrary success/failure/clock-advance
//!   schedule. This checks the subtle transitions in one place: opening
//!   at *exactly* `threshold` consecutive failures, a single probe per
//!   cooldown, and a failed probe restarting the cooldown from the
//!   failure time (not the original open).

use std::time::{Duration, Instant};

use proptest::prelude::*;
use ver_serve::net::{backoff_delay, Breaker, BreakerState, RetryPolicy};

fn policy(base_ms: u64, cap_ms: u64) -> RetryPolicy {
    RetryPolicy {
        backoff: Duration::from_millis(base_ms),
        backoff_cap: Duration::from_millis(cap_ms),
        ..RetryPolicy::default()
    }
}

/// The exponential schedule the jitter is applied to: `base · 2^attempt`,
/// saturating, capped.
fn exp_ms(base_ms: u64, cap_ms: u64, attempt: u32) -> u64 {
    base_ms.saturating_mul(1u64 << attempt.min(32)).min(cap_ms)
}

// ---------------------------------------------------------------------------
// Reference model for the breaker.
// ---------------------------------------------------------------------------

/// What the production breaker did in response to `admit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelAdmission {
    Allow,
    Probe,
    Reject,
}

/// An independent re-implementation of the breaker contract, written from
/// the documented rules rather than the production code, tracking time as
/// plain milliseconds.
struct ModelBreaker {
    threshold: u32,
    cooldown_ms: u64,
    state: BreakerState,
    streak: u32,
    opened_at_ms: Option<u64>,
}

impl ModelBreaker {
    fn new(threshold: u32, cooldown_ms: u64) -> ModelBreaker {
        ModelBreaker {
            threshold: threshold.max(1),
            cooldown_ms,
            state: BreakerState::Closed,
            streak: 0,
            opened_at_ms: None,
        }
    }

    fn admit(&mut self, now_ms: u64) -> ModelAdmission {
        match self.state {
            BreakerState::Closed => ModelAdmission::Allow,
            BreakerState::HalfOpen => ModelAdmission::Reject,
            BreakerState::Open => {
                if now_ms - self.opened_at_ms.expect("open has a timestamp") >= self.cooldown_ms {
                    self.state = BreakerState::HalfOpen;
                    ModelAdmission::Probe
                } else {
                    ModelAdmission::Reject
                }
            }
        }
    }

    fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.streak = 0;
        self.opened_at_ms = None;
    }

    fn record_failure(&mut self, now_ms: u64) {
        self.streak = self.streak.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.streak >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at_ms = Some(now_ms);
                }
            }
            BreakerState::HalfOpen | BreakerState::Open => {
                self.state = BreakerState::Open;
                self.opened_at_ms = Some(now_ms);
            }
        }
    }
}

/// One step of a breaker schedule. Time only moves forward, mirroring the
/// monotonic `Instant` clock the production breaker sees.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Advance the virtual clock by this many milliseconds.
    Advance(u64),
    /// `admit` at the current virtual time.
    Admit,
    /// A call outcome at the current virtual time.
    Success,
    Failure,
}

fn op_strategy(cooldown_ms: u64) -> impl Strategy<Value = Op> {
    // Bias advances around the cooldown so schedules routinely cross the
    // open → half-open boundary (and just miss it by 1ms).
    let step = cooldown_ms.max(2);
    prop_oneof![
        (0..step + 4).prop_map(Op::Advance),
        Just(Op::Admit),
        Just(Op::Success),
        Just(Op::Failure),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn backoff_stays_within_half_to_full_exponential(
        base_ms in 1u64..400,
        cap_ms in 1u64..3_000,
        attempt in 0u32..12,
        seed in any::<u64>(),
    ) {
        let p = policy(base_ms, cap_ms);
        let exp = exp_ms(base_ms, cap_ms, attempt);
        let delay = backoff_delay(&p, attempt, seed).as_millis() as u64;
        prop_assert!(
            delay >= exp / 2 && delay <= exp,
            "delay {delay}ms outside [{}, {exp}]ms (base {base_ms}, cap {cap_ms}, attempt {attempt})",
            exp / 2,
        );
    }

    #[test]
    fn backoff_is_deterministic_in_policy_attempt_and_seed(
        base_ms in 1u64..400,
        cap_ms in 1u64..3_000,
        attempt in 0u32..12,
        seed in any::<u64>(),
    ) {
        let p = policy(base_ms, cap_ms);
        let first = backoff_delay(&p, attempt, seed);
        for _ in 0..3 {
            prop_assert_eq!(backoff_delay(&p, attempt, seed), first);
        }
    }

    #[test]
    fn backoff_never_exceeds_the_cap_even_at_saturating_attempts(
        base_ms in 1u64..400,
        cap_ms in 1u64..3_000,
        attempt in 0u32..1_000,
        seed in any::<u64>(),
    ) {
        let p = policy(base_ms, cap_ms);
        prop_assert!(backoff_delay(&p, attempt, seed) <= p.backoff_cap.max(p.backoff));
    }

    #[test]
    fn breaker_agrees_with_the_reference_model_on_arbitrary_schedules(
        threshold in 1u32..6,
        cooldown_ms in 1u64..40,
        ops in prop::collection::vec(op_strategy(40), 0..120),
    ) {
        let start = Instant::now();
        let mut real = Breaker::new(threshold, Duration::from_millis(cooldown_ms));
        let mut model = ModelBreaker::new(threshold, cooldown_ms);
        let mut now_ms = 0u64;

        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Advance(ms) => now_ms += ms,
                Op::Admit => {
                    let now = start + Duration::from_millis(now_ms);
                    let got = match real.admit(now) {
                        ver_serve::net::resilient::Admission::Allow => ModelAdmission::Allow,
                        ver_serve::net::resilient::Admission::Probe => ModelAdmission::Probe,
                        ver_serve::net::resilient::Admission::Reject => ModelAdmission::Reject,
                    };
                    let want = model.admit(now_ms);
                    prop_assert_eq!(got, want, "admission diverged at op {}", i);
                }
                Op::Success => {
                    real.record_success();
                    model.record_success();
                }
                Op::Failure => {
                    let now = start + Duration::from_millis(now_ms);
                    real.record_failure(now);
                    model.record_failure(now_ms);
                }
            }
            prop_assert_eq!(real.state(), model.state, "state diverged at op {}", i);
            prop_assert_eq!(
                real.consecutive_failures(),
                model.streak,
                "failure streak diverged at op {}",
                i
            );
        }
    }

    #[test]
    fn breaker_opens_at_exactly_threshold_consecutive_failures(
        threshold in 1u32..8,
    ) {
        let start = Instant::now();
        let mut b = Breaker::new(threshold, Duration::from_millis(100));
        for i in 0..threshold - 1 {
            b.record_failure(start);
            prop_assert_eq!(b.state(), BreakerState::Closed, "opened early at failure {}", i + 1);
        }
        b.record_failure(start);
        prop_assert_eq!(b.state(), BreakerState::Open);

        // Any success resets the streak: threshold-1 failures, a success,
        // then threshold-1 more must stay closed.
        let mut b = Breaker::new(threshold, Duration::from_millis(100));
        for _ in 0..threshold - 1 {
            b.record_failure(start);
        }
        b.record_success();
        for _ in 0..threshold - 1 {
            b.record_failure(start);
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert_eq!(b.consecutive_failures(), threshold - 1);
    }

    #[test]
    fn open_breaker_admits_exactly_one_probe_per_cooldown(
        threshold in 1u32..4,
        cooldown_ms in 1u64..50,
        extra_admits in 1usize..6,
    ) {
        use ver_serve::net::resilient::Admission;
        let start = Instant::now();
        let cooldown = Duration::from_millis(cooldown_ms);
        let mut b = Breaker::new(threshold, cooldown);
        for _ in 0..threshold {
            b.record_failure(start);
        }

        // Inside the cooldown: reject, stay open.
        prop_assert_eq!(b.admit(start), Admission::Reject);
        prop_assert_eq!(b.state(), BreakerState::Open);

        // Cooldown elapsed: first admit is the probe, every further admit
        // before the probe reports back is rejected.
        let after = start + cooldown;
        prop_assert_eq!(b.admit(after), Admission::Probe);
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        for _ in 0..extra_admits {
            prop_assert_eq!(b.admit(after + cooldown), Admission::Reject);
        }

        // A failed probe re-opens and restarts the cooldown from the
        // failure time, not the original open.
        let failed_at = after + Duration::from_millis(1);
        b.record_failure(failed_at);
        prop_assert_eq!(b.state(), BreakerState::Open);
        prop_assert_eq!(b.admit(failed_at + cooldown - Duration::from_millis(1)), Admission::Reject);
        prop_assert_eq!(b.admit(failed_at + cooldown), Admission::Probe);

        // A successful probe closes fully.
        b.record_success();
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert_eq!(b.admit(failed_at + cooldown), Admission::Allow);
        prop_assert_eq!(b.consecutive_failures(), 0);
    }
}
