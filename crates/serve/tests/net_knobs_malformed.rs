//! Regression: malformed `VER_ADDR` / `VER_MAX_CONNS` values must warn
//! once and fall back — never panic, never take the server down. Same
//! contract as `VER_THREADS` / `VER_SHARDS` / `VER_SIMD` (PR 8).
//!
//! This lives in its own integration-test binary because the knobs
//! resolve once per process (`OnceLock`): the environment must be set
//! before the first resolution, with no other test racing it.

use ver_serve::net::{default_addr, default_max_conns, NetConfig, DEFAULT_ADDR, DEFAULT_MAX_CONNS};

#[test]
fn malformed_net_knobs_warn_and_fall_back() {
    std::env::set_var("VER_ADDR", "not-an-address:maybe");
    std::env::set_var("VER_MAX_CONNS", "lots");

    let fallback_addr: std::net::SocketAddr = DEFAULT_ADDR.parse().unwrap();
    assert_eq!(default_addr(), fallback_addr);
    assert_eq!(default_max_conns(), DEFAULT_MAX_CONNS);

    // Once resolved, the process sticks with the fallback (warn-once):
    // later reads — even after the environment is fixed — don't flip.
    std::env::set_var("VER_ADDR", "10.0.0.1:9999");
    std::env::set_var("VER_MAX_CONNS", "3");
    assert_eq!(default_addr(), fallback_addr);
    assert_eq!(default_max_conns(), DEFAULT_MAX_CONNS);

    // And the server config builder sees the same resolution.
    let config = NetConfig::default();
    assert_eq!(config.addr, fallback_addr);
    assert_eq!(config.max_conns, DEFAULT_MAX_CONNS);
}
