//! Concurrent QBE sessions over shared query results.
//!
//! A session is one user's interactive VIEW-PRESENTATION loop (Algorithm 2)
//! over the candidate views of one query. The engine admits any number of
//! simultaneous sessions: each holds an `Arc` of its query's
//! [`QueryResult`] (sessions over the same query share one materialization
//! through the result cache) and drives a fresh [`PresentationSession`]
//! per interaction run, outside the registry lock — so concurrent users
//! never serialise behind each other's question loops.

use std::sync::Arc;
use ver_core::QueryResult;
use ver_present::{PresentationConfig, PresentationSession, SessionOutcome, SimulatedUser};
use ver_qbe::ExampleQuery;

/// Opaque handle to an open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// One open session: the query's result plus the example query driving
/// presentation distances. Cheap to clone out of the registry (two `Arc`
/// bumps and a config), which is what keeps interaction runs lock-free.
#[derive(Clone)]
pub(crate) struct Session {
    pub(crate) result: Arc<QueryResult>,
    pub(crate) query: ExampleQuery,
    pub(crate) presentation: PresentationConfig,
}

impl Session {
    /// Run the Algorithm-2 interaction loop against `user`. Each run starts
    /// from the distilled candidate set (bandit state is per-run, matching
    /// `Ver::run_interactive`).
    pub(crate) fn interact(&self, user: &mut dyn SimulatedUser) -> SessionOutcome {
        let mut session = PresentationSession::new(
            &self.result.views,
            &self.result.distill,
            &self.query,
            self.presentation.clone(),
        );
        session.run(user)
    }

    /// Candidate views still alive at session start (distillation
    /// survivors) — what the first question will range over.
    pub(crate) fn candidates(&self) -> usize {
        self.result.distill.survivors_c2.len()
    }
}
