//! Multi-process sharded serving: remote scatter legs and the router.
//!
//! [`ShardedEngine`](crate::ShardedEngine) scatters over in-process
//! [`LocalLeg`](crate::LocalLeg)s; this module promotes those legs to
//! **separate `verd` processes**. A [`RemoteLeg`] implements the same
//! [`ShardBackend`] contract by speaking the `verd` wire protocol
//! (`ShardQuery` → `ShardOutput`) through the
//! [`ResilientClient`](crate::net::resilient) envelope — per-attempt
//! timeouts, reconnect-on-error, jittered backoff, per-leg circuit
//! breaker. A [`RouterEngine`] fans a query over one remote leg per shard
//! and finishes it centrally ([`Ver::gather_shard_outputs`]).
//!
//! **Determinism invariant 13.** With every leg healthy, the router's
//! answer is bit-identical to the in-process [`ShardedEngine`](crate::ShardedEngine)
//! at the same shard count — and therefore to the single engine
//! (invariant 11): each leg runs COLUMN-SELECTION itself (a pure function
//! of index + spec + config, so every process computes the same
//! selection), ships its slice whole over the wire, and the router merges
//! through the same content-based total order. Pinned against live
//! processes in `tests/chaos.rs`.
//!
//! **Failure model.** A leg that cannot answer — process killed
//! mid-query, connection refused while it restarts, circuit open, retry
//! budget exhausted, deadline passed — is *dropped at the gather* and the
//! merged result is flagged partial, exactly the PR 7/8 contract: a shard
//! failure is never an error, and partial results are never cached. The
//! query budget is deducted before every remote attempt, so the wire
//! carries remaining (not original) milliseconds. Per-leg health is
//! visible in [`RouterEngine::leg_stats`] and on the `Stats` wire reply.

use crate::engine::{spec_key, ServeConfig, ServeStats};
use crate::net::resilient::{BreakerState, ResilientClient, RetryPolicy};
use crate::sharded::{scatter_over_backends, InFlightPermit, ShardBackend};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use ver_common::budget::QueryBudget;
use ver_common::cache::LruCache;
use ver_common::error::{Result, VerError};
use ver_common::sync::lock_unpoisoned;
use ver_core::{QueryResult, Ver};
use ver_index::DiscoveryIndex;
use ver_qbe::ViewSpec;
use ver_search::ShardSearchOutput;
use ver_store::catalog::TableCatalog;

/// Point-in-time health snapshot of one remote leg, as surfaced in
/// [`RouterEngine::leg_stats`] and on the `Stats` wire reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterLegStats {
    /// The leg's `verd` address.
    pub addr: String,
    /// Network attempts made (first tries, retries, and probes).
    pub attempts: u64,
    /// Attempts beyond the first within a single call.
    pub retries: u64,
    /// Attempts that failed at the transport level.
    pub failures: u64,
    /// Queries in which this leg was dropped and the merge degraded.
    pub failovers: u64,
    /// Circuit-breaker state at snapshot time.
    pub breaker: BreakerState,
}

/// A [`ShardBackend`] that runs its leg on a remote shard-serving `verd`
/// through the resilient-client envelope.
///
/// The wrapped client is behind a `Mutex` because the wire protocol is
/// strictly request→response per connection; the scatter runs each leg on
/// its own pool worker, so legs never contend on one another's locks.
pub struct RemoteLeg {
    addr: SocketAddr,
    client: Mutex<ResilientClient>,
    failovers: AtomicU64,
}

impl RemoteLeg {
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> RemoteLeg {
        RemoteLeg {
            addr,
            client: Mutex::new(ResilientClient::new(addr, policy)),
            failovers: AtomicU64::new(0),
        }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Count one query in which this leg was dropped at the gather.
    fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Current health counters and breaker state.
    pub fn stats(&self) -> RouterLegStats {
        let client = lock_unpoisoned(&self.client);
        let c = client.counters();
        RouterLegStats {
            addr: self.addr.to_string(),
            attempts: c.attempts,
            retries: c.retries,
            failures: c.failures,
            failovers: self.failovers.load(Ordering::Relaxed),
            breaker: client.breaker_state(),
        }
    }
}

impl ShardBackend for RemoteLeg {
    fn describe(&self) -> String {
        self.addr.to_string()
    }

    fn leg_query(
        &self,
        spec: &ViewSpec,
        shard: usize,
        shard_count: usize,
        budget: &QueryBudget,
    ) -> Result<ShardSearchOutput> {
        let wire = lock_unpoisoned(&self.client).shard_query(
            spec,
            shard as u32,
            shard_count as u32,
            budget,
        )?;
        if (wire.shard, wire.shard_count) != (shard as u32, shard_count as u32) {
            return Err(VerError::Protocol(format!(
                "leg {} answered for shard {}/{} but was asked {shard}/{shard_count}",
                self.addr, wire.shard, wire.shard_count
            )));
        }
        wire.into_output()
    }

    /// Remote legs degrade on everything the local scatter drops **plus**
    /// transport-level failures: a dead or desynced or shedding peer costs
    /// its leg, never the query (the merge is flagged partial instead).
    fn degradable(&self, e: &VerError) -> bool {
        matches!(
            e,
            VerError::DeadlineExceeded(_)
                | VerError::Internal(_)
                | VerError::Io(_)
                | VerError::Protocol(_)
                | VerError::Overloaded(_)
        )
    }
}

/// The scatter/gather router over remote legs — `verd --route`.
///
/// Presents the [`ShardedEngine`](crate::ShardedEngine) query surface
/// (same admission gate, result LRU, partial-never-cached semantics) but
/// every result-cache miss fans out to one [`RemoteLeg`] per shard. The
/// router holds its own catalog + index (the same artifacts the legs
/// serve) for COLUMN-SELECTION and the central finish of every query —
/// merge, distillation, ranking.
pub struct RouterEngine {
    ver: Ver,
    config: ServeConfig,
    legs: Vec<Arc<RemoteLeg>>,
    /// The same legs, pre-upcast for the shared scatter.
    backends: Vec<Arc<dyn ShardBackend>>,
    results: LruCache<String, Arc<QueryResult>>,
    queries: AtomicU64,
    in_flight: AtomicU64,
    rejected: AtomicU64,
    partial_results: AtomicU64,
}

impl RouterEngine {
    /// Route over one remote leg per address in `addrs` (shard `i` is
    /// served by `addrs[i]`, so the order is part of the deployment).
    pub fn new(
        ver: Ver,
        config: ServeConfig,
        addrs: &[SocketAddr],
        policy: RetryPolicy,
    ) -> Result<RouterEngine> {
        if addrs.is_empty() {
            return Err(VerError::Config(
                "router mode needs at least one shard-leg address".into(),
            ));
        }
        let legs: Vec<Arc<RemoteLeg>> = addrs
            .iter()
            .map(|&a| Arc::new(RemoteLeg::new(a, policy)))
            .collect();
        let backends = legs
            .iter()
            .map(|l| Arc::clone(l) as Arc<dyn ShardBackend>)
            .collect();
        Ok(RouterEngine {
            results: LruCache::new(config.result_cache_capacity),
            queries: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            partial_results: AtomicU64::new(0),
            ver,
            config,
            legs,
            backends,
        })
    }

    /// [`RouterEngine::new`] from shared catalog/index handles.
    pub fn warm_start(
        catalog: Arc<TableCatalog>,
        index: Arc<DiscoveryIndex>,
        config: ServeConfig,
        addrs: &[SocketAddr],
        policy: RetryPolicy,
    ) -> Result<RouterEngine> {
        let ver = Ver::from_parts(catalog, index, config.pipeline.clone())?;
        Self::new(ver, config, addrs, policy)
    }

    /// Number of shards (= remote legs) queries scatter over.
    pub fn shard_count(&self) -> usize {
        self.legs.len()
    }

    /// The wrapped pipeline facade (selection + central finish).
    pub fn ver(&self) -> &Ver {
        &self.ver
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    fn admit(&self) -> Result<InFlightPermit<'_>> {
        let limit = self.config.max_in_flight;
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if limit != 0 && prev as usize >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(VerError::Overloaded(format!(
                "{limit} queries already in flight"
            )));
        }
        Ok(InFlightPermit(&self.in_flight))
    }

    /// Answer a view specification by scattering over the remote legs.
    /// Unbudgeted shorthand for [`query_with_budget`](Self::query_with_budget).
    pub fn query(&self, spec: &ViewSpec) -> Result<Arc<QueryResult>> {
        self.query_with_budget(spec, &QueryBudget::none())
    }

    /// [`query`](Self::query) under a per-query [`QueryBudget`] — the
    /// [`ShardedEngine`](crate::ShardedEngine) failure model, with remote
    /// legs: cache hits are free, misses claim an admission slot or fail
    /// fast, a leg the envelope cannot reach degrades the merge to a
    /// partial (never-cached) result, a hard deadline consults the LRU
    /// once more before surfacing, and any other error propagates typed.
    pub fn query_with_budget(
        &self,
        spec: &ViewSpec,
        budget: &QueryBudget,
    ) -> Result<Arc<QueryResult>> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = spec_key(spec);
        if let Some(hit) = self.results.get(&key) {
            return Ok(hit);
        }
        let _permit = self.admit()?;
        ver_common::fault::hit(ver_common::fault::points::SERVE_QUERY)?;
        // Fan out wide: legs are network-bound, so give each its own
        // worker regardless of the local compute budget.
        let scattered = scatter_over_backends(&self.backends, spec, budget, self.legs.len())
            .and_then(|(outputs, legs, complete)| {
                self.ver
                    .gather_shard_outputs(spec, budget, outputs, complete)
                    .map(|result| (result, legs))
            });
        match scattered {
            Ok((result, legs)) => {
                for leg in legs {
                    if !leg.ok {
                        self.legs[leg.shard].note_failover();
                    }
                }
                let result = Arc::new(result);
                if result.partial {
                    // Never cache a degraded result: once the dead leg
                    // restarts, the next query must recompute the full,
                    // byte-identical answer.
                    self.partial_results.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.results.insert(key, Arc::clone(&result));
                }
                Ok(result)
            }
            Err(e @ VerError::DeadlineExceeded(_)) => match self.results.get(&key) {
                Some(hit) => Ok(hit),
                None => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Serving statistics in the common [`ServeStats`] shape. The router
    /// runs no local search, so the view/score cache counters are the
    /// disabled-cache zero (sessions likewise live on the single-engine
    /// surface only).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            result_cache: self.results.stats(),
            view_cache: Default::default(),
            score_memo: Default::default(),
            cached_views: 0,
            sessions_opened: 0,
            sessions_active: 0,
            interactions: 0,
            rejected: self.rejected.load(Ordering::Relaxed),
            partial_results: self.partial_results.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed) as usize,
        }
    }

    /// Per-leg health, indexed by shard id.
    pub fn leg_stats(&self) -> Vec<RouterLegStats> {
        self.legs.iter().map(|l| l.stats()).collect()
    }
}
