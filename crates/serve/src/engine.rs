//! The serving engine: warm-start, caches, stats, session admission.

use crate::session::{Session, SessionId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use ver_common::budget::QueryBudget;
use ver_common::cache::{CacheStats, LruCache};
use ver_common::error::{Result, VerError};
use ver_common::fxhash::FxHashMap;
use ver_common::sync::lock_unpoisoned;
use ver_core::{presentation_query, QueryResult, Ver, VerConfig};
use ver_index::persist::{load_index, save_index};
use ver_index::DiscoveryIndex;
use ver_present::{SessionOutcome, SimulatedUser};
use ver_qbe::ViewSpec;
use ver_search::SearchCaches;
use ver_store::catalog::TableCatalog;

/// Serving-layer tunables on top of the pipeline configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The underlying pipeline knobs (selection, search, distillation,
    /// presentation). `pipeline.search.threads` / `pipeline.distill.threads`
    /// are the per-query fan-out budget; set both at once with
    /// [`ServeConfig::with_query_threads`].
    pub pipeline: VerConfig,
    /// Capacity of the whole-result LRU (`0` disables result caching).
    pub result_cache_capacity: usize,
    /// Capacity of the materialized-view LRU shared across queries
    /// (`0` disables view caching; the score memo is always on). Size this
    /// above the working set of candidates your workload's queries touch —
    /// an LRU smaller than one sequential scan of that set degrades to
    /// zero hits. Candidate views on open-data-style corpora are small
    /// (tens of rows), so the default trades a few MB for hot candidates.
    pub view_cache_capacity: usize,
    /// Admission gate: maximum queries allowed to execute the pipeline
    /// concurrently (`0` = unbounded). The gate **fails fast** — the
    /// `max_in_flight + 1`-th concurrent miss is rejected with
    /// [`VerError::Overloaded`] instead of queued, so callers keep control
    /// of retry policy and one slow query cannot grow an unbounded backlog.
    /// Result-cache hits bypass the gate (they do no pipeline work).
    pub max_in_flight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pipeline: VerConfig::default(),
            result_cache_capacity: 64,
            view_cache_capacity: 8192,
            max_in_flight: 0,
        }
    }
}

impl ServeConfig {
    /// Pin the per-query thread budget: every query's join-graph scoring,
    /// top-k materialization, and 4C distillation fan out over at most
    /// `threads` workers (`0` = one per available hardware thread). Output
    /// is bit-identical for every value — this is purely a resource knob,
    /// the lever that keeps one heavy query from starving its neighbours.
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.pipeline.search.threads = threads;
        self.pipeline.distill.threads = threads;
        self
    }

    /// The configured per-query thread budget.
    pub fn query_threads(&self) -> usize {
        self.pipeline.search.threads
    }

    /// Bound concurrent pipeline executions (`0` = unbounded); see
    /// [`ServeConfig::max_in_flight`].
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }
}

/// Point-in-time serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries admitted (cache hits included).
    pub queries: u64,
    /// Whole-result LRU hit/miss counts.
    pub result_cache: CacheStats,
    /// Materialized-view LRU hit/miss counts (across queries).
    pub view_cache: CacheStats,
    /// Join-score signature/containment memo hit/miss counts.
    pub score_memo: CacheStats,
    /// Views currently held by the view LRU.
    pub cached_views: usize,
    /// Sessions opened over the engine's lifetime.
    pub sessions_opened: u64,
    /// Sessions currently open.
    pub sessions_active: usize,
    /// Interaction-loop runs served.
    pub interactions: u64,
    /// Queries rejected by the admission gate ([`VerError::Overloaded`]).
    pub rejected: u64,
    /// Queries that completed degraded (`partial: true` — deadline tripped
    /// or a worker panicked mid-query). Partial results are returned to
    /// their caller but never cached.
    pub partial_results: u64,
    /// Queries executing the pipeline right now (cache hits excluded).
    pub in_flight: usize,
}

/// A long-lived, concurrently shareable serving engine.
///
/// All entry points take `&self`; the engine is `Sync` and designed to sit
/// behind an `Arc` with any number of client threads calling
/// [`ServeEngine::query`] / [`ServeEngine::interact`] simultaneously.
pub struct ServeEngine {
    ver: Ver,
    config: ServeConfig,
    /// Whole-result cache keyed by the canonical query form.
    results: LruCache<String, Arc<QueryResult>>,
    /// Cross-query search caches (view LRU + score memo).
    caches: SearchCaches,
    sessions: Mutex<FxHashMap<SessionId, Session>>,
    next_session: AtomicU64,
    queries: AtomicU64,
    sessions_opened: AtomicU64,
    interactions: AtomicU64,
    in_flight: AtomicU64,
    rejected: AtomicU64,
    partial_results: AtomicU64,
}

/// RAII admission permit: one slot of [`ServeConfig::max_in_flight`],
/// released on drop — including when the query errors or (behind the
/// pool's isolation) a worker panicked, so failed queries can never leak
/// the gate shut.
struct InFlightPermit<'a>(&'a AtomicU64);

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl ServeEngine {
    /// Cold start: profile the catalog and build the discovery index in
    /// process (the path [`ServeEngine::open`] exists to avoid).
    pub fn build(catalog: TableCatalog, config: ServeConfig) -> Result<ServeEngine> {
        let ver = Ver::build(catalog, config.pipeline.clone())?;
        Ok(Self::assemble(ver, config))
    }

    /// Warm start from an already-built index (typically loaded via
    /// [`ver_index::persist::load_index`]). No profiling, sketching, or LSH
    /// runs; the engine is ready as soon as the artifact is in memory.
    pub fn warm_start(
        catalog: Arc<TableCatalog>,
        index: Arc<DiscoveryIndex>,
        config: ServeConfig,
    ) -> Result<ServeEngine> {
        let ver = Ver::from_parts(catalog, index, config.pipeline.clone())?;
        Ok(Self::assemble(ver, config))
    }

    /// Warm start from a persisted index file (see
    /// [`ver_index::persist::save_index`]).
    pub fn open(
        catalog: Arc<TableCatalog>,
        index_path: &std::path::Path,
        config: ServeConfig,
    ) -> Result<ServeEngine> {
        let index = load_index(index_path)?;
        Self::warm_start(catalog, Arc::new(index), config)
    }

    fn assemble(ver: Ver, config: ServeConfig) -> ServeEngine {
        ServeEngine {
            results: LruCache::new(config.result_cache_capacity),
            caches: SearchCaches::new(config.view_cache_capacity),
            sessions: Mutex::new(FxHashMap::default()),
            next_session: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            interactions: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            partial_results: AtomicU64::new(0),
            ver,
            config,
        }
    }

    /// Claim an admission slot, failing fast with [`VerError::Overloaded`]
    /// when [`ServeConfig::max_in_flight`] slots are already taken.
    fn admit(&self) -> Result<InFlightPermit<'_>> {
        let limit = self.config.max_in_flight;
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if limit != 0 && prev as usize >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(VerError::Overloaded(format!(
                "{limit} queries already in flight"
            )));
        }
        Ok(InFlightPermit(&self.in_flight))
    }

    /// Persist this engine's index so future processes can
    /// [`ServeEngine::open`] instead of rebuilding.
    pub fn save_index(&self, path: &std::path::Path) -> Result<()> {
        save_index(self.ver.index(), path)
    }

    /// The wrapped pipeline facade.
    pub fn ver(&self) -> &Ver {
        &self.ver
    }

    /// Shared handle to the catalog.
    pub fn catalog_shared(&self) -> Arc<TableCatalog> {
        self.ver.catalog_shared()
    }

    /// Shared handle to the index.
    pub fn index_shared(&self) -> Arc<DiscoveryIndex> {
        self.ver.index_shared()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Answer a view specification.
    ///
    /// Identical specs (after value normalization) are served from the
    /// whole-result LRU; misses run the full online pipeline with the
    /// engine's cross-query [`SearchCaches`] threaded through, so even a
    /// result-cache miss reuses materialized views and memoized scores
    /// from earlier queries. The returned result is shared — sessions and
    /// concurrent callers alias one materialization.
    ///
    /// Unbudgeted: shorthand for [`ServeEngine::query_with_budget`] with an
    /// unlimited [`QueryBudget`]. Still subject to the admission gate.
    pub fn query(&self, spec: &ViewSpec) -> Result<Arc<QueryResult>> {
        self.query_with_budget(spec, &QueryBudget::none())
    }

    /// [`ServeEngine::query`] under a per-query [`QueryBudget`].
    ///
    /// The failure model, in order:
    ///
    /// 1. **Cache hits are free**: a result-LRU hit is returned before the
    ///    admission gate or budget are consulted — it does no work.
    /// 2. **Admission**: a miss claims an in-flight slot or fails fast
    ///    with [`VerError::Overloaded`].
    /// 3. **Degradation**: the budget is threaded through every pipeline
    ///    stage. Deadline exhaustion and isolated worker panics degrade to
    ///    the best-ranked views completed so far with
    ///    [`QueryResult::partial`] set — partial results are returned but
    ///    **never cached**, so a later retry with headroom can produce
    ///    (and cache) the complete answer.
    /// 4. **Fallback**: if the pipeline fails outright with
    ///    [`VerError::DeadlineExceeded`], the result LRU is consulted once
    ///    more (a concurrent complete run may have landed meanwhile)
    ///    before the error is surfaced.
    /// 5. Any other error (I/O, invalid data) propagates typed and
    ///    untranslated.
    pub fn query_with_budget(
        &self,
        spec: &ViewSpec,
        budget: &QueryBudget,
    ) -> Result<Arc<QueryResult>> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = spec_key(spec);
        if let Some(hit) = self.results.get(&key) {
            return Ok(hit);
        }
        let _permit = self.admit()?;
        ver_common::fault::hit(ver_common::fault::points::SERVE_QUERY)?;
        match self.ver.run_budgeted(spec, Some(&self.caches), budget) {
            Ok(result) => {
                let result = Arc::new(result);
                if result.partial {
                    // Never cache a degraded result: the next query with
                    // headroom must be able to compute the full answer.
                    self.partial_results.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.results.insert(key, Arc::clone(&result));
                }
                Ok(result)
            }
            Err(e @ VerError::DeadlineExceeded(_)) => match self.results.get(&key) {
                Some(hit) => Ok(hit),
                None => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Run **one scatter leg** of a sharded query on this engine — the
    /// shard-serving side of `verd`'s remote scatter (`ShardQuery` on the
    /// wire). Counts as a query for admission and stats, but bypasses the
    /// result LRU: leg outputs are merged (and cached) at the router, and
    /// caching a raw slice here could never be consulted coherently.
    /// Selection is recomputed per leg — a pure function of the index,
    /// spec, and config, so the slice is bit-identical to the one an
    /// in-process scatter would produce (invariant 13).
    pub fn shard_query(
        &self,
        spec: &ViewSpec,
        shard: usize,
        shard_count: usize,
        budget: &QueryBudget,
    ) -> Result<ver_search::ShardSearchOutput> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let _permit = self.admit()?;
        ver_common::fault::hit(ver_common::fault::points::SERVE_QUERY)?;
        self.ver
            .run_shard_leg(spec, Some(&self.caches), budget, shard, shard_count)
    }

    /// Open an interactive QBE session: run (or reuse) the query and
    /// register a session over its distilled candidates.
    pub fn open_session(&self, spec: &ViewSpec) -> Result<SessionId> {
        let result = self.query(spec)?;
        let session = Session {
            result,
            query: presentation_query(spec),
            presentation: self.config.pipeline.presentation.clone(),
        };
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed));
        lock_unpoisoned(&self.sessions).insert(id, session);
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Drive session `id`'s question loop (Algorithm 2) with `user`. The
    /// loop runs outside the registry lock, so any number of sessions can
    /// interact concurrently.
    pub fn interact(&self, id: SessionId, user: &mut dyn SimulatedUser) -> Result<SessionOutcome> {
        let session = lock_unpoisoned(&self.sessions)
            .get(&id)
            .cloned()
            .ok_or_else(|| VerError::NotFound(format!("session {id}")))?;
        self.interactions.fetch_add(1, Ordering::Relaxed);
        Ok(session.interact(user))
    }

    /// Number of candidate views session `id` starts from.
    pub fn session_candidates(&self, id: SessionId) -> Result<usize> {
        lock_unpoisoned(&self.sessions)
            .get(&id)
            .map(Session::candidates)
            .ok_or_else(|| VerError::NotFound(format!("session {id}")))
    }

    /// Close a session; returns `false` when it was already gone.
    pub fn close_session(&self, id: SessionId) -> bool {
        lock_unpoisoned(&self.sessions).remove(&id).is_some()
    }

    /// Currently open sessions.
    pub fn active_sessions(&self) -> usize {
        lock_unpoisoned(&self.sessions).len()
    }

    /// Serving statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            result_cache: self.results.stats(),
            view_cache: self.caches.view_stats(),
            score_memo: self.caches.score_stats(),
            cached_views: self.caches.cached_views(),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_active: self.active_sessions(),
            interactions: self.interactions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            partial_results: self.partial_results.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed) as usize,
        }
    }
}

/// Canonical string form of a spec — the result-cache key.
///
/// Two specs map to the same key exactly when the pipeline treats them
/// identically: per-attribute example values are compared by logical type
/// plus normalized form (the form COLUMN-SELECTION, FastTopK ranking and
/// presentation distances all operate on), name hints and attribute order
/// are preserved, and the three interfaces are disjoint namespaces. Every
/// variable-length part is **length-prefixed** (`{len}:{bytes}`), so user
/// strings containing any would-be separator cannot make two different
/// specs collide on one key.
pub(crate) fn spec_key(spec: &ViewSpec) -> String {
    use std::fmt::Write as _;
    let mut key = String::new();
    let part = |key: &mut String, s: &str| {
        let _ = write!(key, "{}:{s}", s.len());
    };
    match spec {
        ViewSpec::Qbe(q) => {
            key.push_str("qbe");
            for col in &q.columns {
                key.push('|');
                match &col.name_hint {
                    Some(hint) => {
                        key.push('~');
                        part(&mut key, hint);
                    }
                    None => key.push('_'),
                }
                for v in &col.examples {
                    if v.is_null() {
                        key.push('0');
                    } else {
                        let _ = write!(key, "{}", v.data_type());
                        part(&mut key, &v.normalized());
                    }
                }
            }
        }
        ViewSpec::Keyword(terms) => {
            key.push_str("kw");
            for t in terms {
                part(&mut key, t);
            }
        }
        ViewSpec::Attribute(terms) => {
            key.push_str("attr");
            for t in terms {
                part(&mut key, t);
            }
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_present::OracleUser;
    use ver_qbe::{ExampleQuery, QueryColumn};
    use ver_store::table::TableBuilder;

    /// airports ⋈ state_pop plus a conflicting state_pop_old (mirrors the
    /// ver-core pipeline fixture so serving output can be compared 1:1).
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..40).map(|i| format!("st{i}")).collect();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("AP{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("state_pop", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("state_pop_old", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(900 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn config() -> ServeConfig {
        ServeConfig {
            pipeline: VerConfig::fast(),
            ..ServeConfig::default()
        }
    }

    fn spec() -> ViewSpec {
        ViewSpec::Qbe(ExampleQuery::from_rows(&[vec!["st1", "1001"], vec!["st2", "1002"]]).unwrap())
    }

    #[test]
    fn result_cache_serves_repeated_queries() {
        let engine = ServeEngine::build(catalog(), config()).unwrap();
        let a = engine.query(&spec()).unwrap();
        let b = engine.query(&spec()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second query must alias the first");
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.result_cache.hits, 1);
        assert_eq!(stats.result_cache.misses, 1);
    }

    #[test]
    fn warm_start_answers_like_cold_build() {
        let cold = ServeEngine::build(catalog(), config()).unwrap();
        let warm =
            ServeEngine::warm_start(cold.catalog_shared(), cold.index_shared(), config()).unwrap();
        let a = cold.query(&spec()).unwrap();
        let b = warm.query(&spec()).unwrap();
        assert_eq!(a.ranked, b.ranked);
        assert_eq!(a.views.len(), b.views.len());
        for (va, vb) in a.views.iter().zip(&b.views) {
            assert!(va.same_contents(vb));
        }
    }

    #[test]
    fn persisted_index_round_trips_through_open() {
        let dir = std::env::temp_dir().join(format!("ver_serve_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.bin");
        let cold = ServeEngine::build(catalog(), config()).unwrap();
        cold.save_index(&path).unwrap();
        let warm = ServeEngine::open(cold.catalog_shared(), &path, config()).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
        assert!(warm.index_shared().same_contents(&cold.index_shared()));
        let a = cold.query(&spec()).unwrap();
        let b = warm.query(&spec()).unwrap();
        assert_eq!(a.ranked, b.ranked);
    }

    #[test]
    fn sessions_share_results_and_reach_targets() {
        let engine = ServeEngine::build(catalog(), config()).unwrap();
        let s1 = engine.open_session(&spec()).unwrap();
        let s2 = engine.open_session(&spec()).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(engine.active_sessions(), 2);
        // Both sessions share one materialization via the result cache.
        assert_eq!(engine.stats().result_cache.hits, 1);
        assert!(engine.session_candidates(s1).unwrap() >= 1);

        let target = engine.query(&spec()).unwrap().ranked[0].0;
        let mut user = OracleUser::new(target);
        let outcome = engine.interact(s1, &mut user).unwrap();
        assert_eq!(outcome.found_view(), Some(target));

        assert!(engine.close_session(s1));
        assert!(!engine.close_session(s1), "double close reports false");
        assert_eq!(engine.active_sessions(), 1);
        let err = engine.interact(s1, &mut user);
        assert!(matches!(err, Err(VerError::NotFound(_))));
    }

    #[test]
    fn concurrent_queries_and_sessions_are_consistent() {
        let engine = Arc::new(ServeEngine::build(catalog(), config()).unwrap());
        let baseline = engine.query(&spec()).unwrap();
        let specs: Vec<ViewSpec> = vec![
            spec(),
            ViewSpec::Qbe(ExampleQuery::from_rows(&[vec!["st3", "1003"]]).unwrap()),
            ViewSpec::Keyword(vec!["st5".into()]),
            ViewSpec::Attribute(vec!["pop".into()]),
        ];
        std::thread::scope(|scope| {
            for t in 0..4 {
                let engine = Arc::clone(&engine);
                let specs = specs.clone();
                let baseline = Arc::clone(&baseline);
                scope.spawn(move || {
                    for round in 0..3 {
                        for s in &specs {
                            let out = engine.query(s).unwrap();
                            if s == &specs[0] {
                                assert_eq!(out.ranked, baseline.ranked, "t{t} r{round}");
                            }
                        }
                        let sid = engine.open_session(&specs[0]).unwrap();
                        let target = engine.query(&specs[0]).unwrap().ranked[0].0;
                        let outcome = engine.interact(sid, &mut OracleUser::new(target)).unwrap();
                        assert_eq!(outcome.found_view(), Some(target));
                        engine.close_session(sid);
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.sessions_active, 0);
        assert_eq!(stats.sessions_opened, 12);
        assert_eq!(stats.interactions, 12);
        assert!(stats.result_cache.hits > 0);
    }

    #[test]
    fn spec_keys_distinguish_interfaces_and_content() {
        let qbe1 = spec_key(&spec());
        let qbe2 = spec_key(&ViewSpec::Qbe(
            ExampleQuery::from_rows(&[vec!["st1", "1001"]]).unwrap(),
        ));
        assert_ne!(qbe1, qbe2);
        assert_ne!(
            spec_key(&ViewSpec::Keyword(vec!["pop".into()])),
            spec_key(&ViewSpec::Attribute(vec!["pop".into()]))
        );
        // Name hints participate.
        let plain = ViewSpec::Qbe(ExampleQuery::new(vec![QueryColumn::of_strs(&["st1"])]).unwrap());
        let hinted = ViewSpec::Qbe(
            ExampleQuery::new(vec![QueryColumn::of_strs(&["st1"]).named("state")]).unwrap(),
        );
        assert_ne!(spec_key(&plain), spec_key(&hinted));
        // Normalization unifies case (the pipeline is case-insensitive).
        let upper = ViewSpec::Qbe(ExampleQuery::new(vec![QueryColumn::of_strs(&["ST1"])]).unwrap());
        assert_eq!(spec_key(&plain), spec_key(&upper));
    }

    #[test]
    fn spec_keys_resist_separator_injection() {
        use ver_common::value::Value;
        // One example crafted to *look like* two concatenated key parts
        // must not collide with a genuine two-example column.
        let crafted = ViewSpec::Qbe(
            ExampleQuery::new(vec![QueryColumn::of_values(vec![Value::text(
                "x1:ytext1:z",
            )])])
            .unwrap(),
        );
        let genuine = ViewSpec::Qbe(
            ExampleQuery::new(vec![QueryColumn::of_values(vec![
                Value::text("x1:y"),
                Value::text("z"),
            ])])
            .unwrap(),
        );
        assert_ne!(spec_key(&crafted), spec_key(&genuine));
        // Control characters in terms don't merge keyword terms either.
        let one = ViewSpec::Keyword(vec!["a\u{1f}b".into()]);
        let two = ViewSpec::Keyword(vec!["a".into(), "b".into()]);
        assert_ne!(spec_key(&one), spec_key(&two));
    }

    #[test]
    fn admission_gate_fails_fast_when_full() {
        let engine = ServeEngine::build(catalog(), config().with_max_in_flight(1)).unwrap();
        // Claim the only slot by hand, exactly as an executing miss would.
        let permit = engine.admit().unwrap();
        match engine.query(&spec()) {
            Err(VerError::Overloaded(m)) => assert!(m.contains("1 queries"), "msg: {m}"),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(engine.stats().rejected, 1);
        assert_eq!(engine.stats().in_flight, 1);
        // Releasing the slot re-opens the gate.
        drop(permit);
        let full = engine.query(&spec()).unwrap();
        assert!(!full.views.is_empty());
        assert_eq!(engine.stats().in_flight, 0);
        // Cache hits bypass the gate entirely.
        let _block = engine.admit().unwrap();
        let hit = engine.query(&spec()).unwrap();
        assert!(Arc::ptr_eq(&full, &hit), "hit must bypass the full gate");
    }

    #[test]
    fn expired_budget_degrades_to_uncached_partial_result() {
        let engine = ServeEngine::build(catalog(), config()).unwrap();
        let exhausted = QueryBudget::none().with_timeout(std::time::Duration::ZERO);
        let partial = engine.query_with_budget(&spec(), &exhausted).unwrap();
        assert!(partial.partial);
        assert!(partial.views.is_empty());
        assert_eq!(engine.stats().partial_results, 1);

        // The partial result was NOT cached: the next unbudgeted query
        // recomputes and returns the complete answer...
        let full = engine.query(&spec()).unwrap();
        assert!(!full.partial);
        assert!(!full.views.is_empty());
        assert_eq!(engine.stats().result_cache.hits, 0);

        // ...and once the complete answer is cached, even an exhausted
        // budget is served from the LRU (a hit does no budgeted work).
        let served = engine.query_with_budget(&spec(), &exhausted).unwrap();
        assert!(Arc::ptr_eq(&full, &served));
        assert_eq!(engine.stats().partial_results, 1, "no new partials");
    }

    #[test]
    fn generous_budget_matches_unbudgeted_output() {
        let engine = ServeEngine::build(catalog(), config()).unwrap();
        let base = engine.query(&spec()).unwrap();
        let engine2 = ServeEngine::build(catalog(), config()).unwrap();
        let budget = QueryBudget::none().with_timeout(std::time::Duration::from_secs(3600));
        let budgeted = engine2.query_with_budget(&spec(), &budget).unwrap();
        assert!(!budgeted.partial);
        assert_eq!(budgeted.ranked, base.ranked);
        assert_eq!(budgeted.views.len(), base.views.len());
        for (a, b) in budgeted.views.iter().zip(&base.views) {
            assert!(a.same_contents(b));
        }
    }

    #[test]
    fn query_threads_budget_is_purely_a_resource_knob() {
        let one = ServeEngine::build(catalog(), config().with_query_threads(1)).unwrap();
        let four = ServeEngine::build(catalog(), config().with_query_threads(4)).unwrap();
        assert_eq!(one.config().query_threads(), 1);
        let a = one.query(&spec()).unwrap();
        let b = four.query(&spec()).unwrap();
        assert_eq!(a.ranked, b.ranked);
        for (va, vb) in a.views.iter().zip(&b.views) {
            assert!(va.same_contents(vb));
        }
    }
}
