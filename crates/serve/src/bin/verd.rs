//! `verd` — the Ver view-discovery daemon.
//!
//! Loads a CSV directory into a catalog, builds (or warm-starts from) a
//! discovery index, and serves the `verd` binary protocol on a TCP
//! socket until a `Shutdown` request arrives.
//!
//! ```text
//! verd --data DIR [--index FILE] [--save-index] [--addr HOST:PORT]
//!      [--max-conns N] [--shards N] [--page-size N] [--fast]
//! ```
//!
//! * `--data DIR` — directory of `.csv` files (header row expected),
//!   loaded in sorted filename order so table ids are deterministic
//!   across runs
//! * `--index FILE` — warm-start from this persisted index if it
//!   exists; otherwise cold-build
//! * `--save-index` — after a cold build, persist the index to the
//!   `--index` path for the next start
//! * `--addr HOST:PORT` — bind address (default: `VER_ADDR` knob, then
//!   127.0.0.1:7117; use port 0 for ephemeral)
//! * `--max-conns N` — connection cap, 0 = uncapped (default:
//!   `VER_MAX_CONNS` knob, then 64)
//! * `--shards N` — index shards: 1 = single engine, 0 = auto (the
//!   `VER_SHARDS` knob), >1 = scatter/gather
//! * `--page-size N` — server-side default page size for queries that
//!   don't request one (0 = whole result inline)
//! * `--fast` — fast pipeline profile (smaller sketches)

use std::process::ExitCode;
use std::sync::Arc;

use ver_core::VerConfig;
use ver_serve::net::{config, Backend, NetConfig, Server};
use ver_serve::{ServeConfig, ServeEngine, ShardedEngine};
use ver_store::catalog::TableCatalog;

struct Args {
    data: Option<String>,
    index: Option<String>,
    save_index: bool,
    addr: Option<String>,
    max_conns: Option<usize>,
    shards: usize,
    page_size: u32,
    fast: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: verd --data DIR [--index FILE] [--save-index] [--addr HOST:PORT] \
         [--max-conns N] [--shards N] [--page-size N] [--fast]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        data: None,
        index: None,
        save_index: false,
        addr: None,
        max_conns: None,
        shards: 1,
        page_size: 0,
        fast: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("verd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--data" => args.data = Some(value("--data")),
            "--index" => args.index = Some(value("--index")),
            "--save-index" => args.save_index = true,
            "--addr" => args.addr = Some(value("--addr")),
            "--max-conns" => {
                let raw = value("--max-conns");
                args.max_conns = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("verd: bad --max-conns {raw:?}");
                    usage()
                }))
            }
            "--shards" => {
                let raw = value("--shards");
                args.shards = raw.parse().unwrap_or_else(|_| {
                    eprintln!("verd: bad --shards {raw:?}");
                    usage()
                })
            }
            "--page-size" => {
                let raw = value("--page-size");
                args.page_size = raw.parse().unwrap_or_else(|_| {
                    eprintln!("verd: bad --page-size {raw:?}");
                    usage()
                })
            }
            "--fast" => args.fast = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("verd: unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

/// Load every `*.csv` under `dir` (sorted by filename, so `TableId`
/// assignment — and therefore every query result — is deterministic
/// across starts).
fn load_catalog(dir: &str) -> ver_common::error::Result<TableCatalog> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(ver_common::error::VerError::InvalidData(format!(
            "no .csv files under {dir}"
        )));
    }
    let mut catalog = TableCatalog::new();
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("table")
            .to_string();
        let file = std::fs::File::open(&path)?;
        let table = ver_store::csv::read_csv(&name, std::io::BufReader::new(file), true)?;
        catalog.add_table(table)?;
    }
    Ok(catalog)
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(data) = args.data.as_deref() else {
        eprintln!("verd: --data is required");
        usage();
    };

    let catalog = match load_catalog(data) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verd: loading {data}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "verd: catalog loaded: {} tables, {} columns",
        catalog.table_count(),
        catalog.column_count()
    );

    let serve_config = ServeConfig {
        pipeline: if args.fast {
            VerConfig::fast()
        } else {
            VerConfig::default()
        },
        ..ServeConfig::default()
    };

    let index_path = args.index.as_deref().map(std::path::Path::new);
    let warm = index_path.is_some_and(|p| p.exists());

    let backend = if args.shards == 1 {
        let engine = if warm {
            ServeEngine::open(Arc::new(catalog), index_path.unwrap(), serve_config)
        } else {
            ServeEngine::build(catalog, serve_config)
        };
        match engine {
            Ok(engine) => {
                if !warm && args.save_index {
                    if let Some(p) = index_path {
                        match engine.save_index(p) {
                            Ok(()) => eprintln!("verd: index saved to {}", p.display()),
                            Err(e) => eprintln!("verd: saving index: {e} (serving anyway)"),
                        }
                    }
                }
                Backend::Single(Arc::new(engine))
            }
            Err(e) => {
                eprintln!("verd: building engine: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let engine = if warm {
            ShardedEngine::open(
                Arc::new(catalog),
                index_path.unwrap(),
                serve_config,
                args.shards,
            )
        } else {
            ShardedEngine::build(catalog, serve_config, args.shards)
        };
        match engine {
            Ok(engine) => {
                if !warm && args.save_index {
                    if let Some(p) = index_path {
                        match engine.save_index(p) {
                            Ok(()) => eprintln!("verd: index saved to {}", p.display()),
                            Err(e) => eprintln!("verd: saving index: {e} (serving anyway)"),
                        }
                    }
                }
                eprintln!("verd: sharded backend: {} shards", engine.shard_count());
                Backend::Sharded(Arc::new(engine))
            }
            Err(e) => {
                eprintln!("verd: building sharded engine: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!(
        "verd: engine ready ({})",
        if warm { "warm start" } else { "cold build" }
    );

    let mut net = NetConfig::default();
    if let Some(raw) = args.addr.as_deref() {
        match config::parse_addr(raw) {
            Some(a) => net.addr = a,
            None => {
                eprintln!("verd: bad --addr {raw:?}");
                usage();
            }
        }
    }
    if let Some(n) = args.max_conns {
        net.max_conns = n;
    }
    net.default_page_size = args.page_size;

    let server = match Server::bind(backend, net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("verd: bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // stdout, and flushed: harnesses parse this line for the ephemeral port.
    println!("verd listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(()) => {
            eprintln!("verd: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("verd: serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
