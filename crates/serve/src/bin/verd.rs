//! `verd` — the Ver view-discovery daemon.
//!
//! Loads a CSV directory into a catalog, builds (or warm-starts from) a
//! discovery index, and serves the `verd` binary protocol on a TCP
//! socket until a `Shutdown` request arrives.
//!
//! ```text
//! verd --data DIR [--index FILE] [--save-index] [--addr HOST:PORT]
//!      [--max-conns N] [--shards N] [--route ADDR,ADDR,...] [--shard-leg]
//!      [--page-size N] [--fast]
//! ```
//!
//! * `--data DIR` — directory of `.csv` files (header row expected),
//!   loaded in sorted filename order so table ids are deterministic
//!   across runs
//! * `--index FILE` — warm-start from this persisted index if it
//!   exists; otherwise cold-build
//! * `--save-index` — after a cold build, persist the index to the
//!   `--index` path for the next start
//! * `--addr HOST:PORT` — bind address (default: `VER_ADDR` knob, then
//!   127.0.0.1:7117; use port 0 for ephemeral)
//! * `--max-conns N` — connection cap, 0 = uncapped (default:
//!   `VER_MAX_CONNS` knob, then 64)
//! * `--shards N` — index shards: 1 = single engine, 0 = auto (the
//!   `VER_SHARDS` knob), >1 = in-process scatter/gather
//! * `--route ADDR,ADDR,...` — router mode: fan each query out over
//!   these remote shard-leg `verd` processes (one address per shard, in
//!   shard order) and merge centrally; `--data`/`--index` still describe
//!   the full catalog, which the router needs for column selection and
//!   the merge tail. Mutually exclusive with `--shards`
//! * `--shard-leg` — marker for a process serving as a remote shard leg
//!   under a router (a plain single-engine `verd`; legs answer
//!   `ShardQuery` requests). Implies `--shards 1`
//! * `--page-size N` — server-side default page size for queries that
//!   don't request one (0 = whole result inline)
//! * `--fast` — fast pipeline profile (smaller sketches)

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use ver_core::{Ver, VerConfig};
use ver_serve::net::{config, Backend, NetConfig, RetryPolicy, Server};
use ver_serve::{RouterEngine, ServeConfig, ServeEngine, ShardedEngine};
use ver_store::catalog::TableCatalog;

struct Args {
    data: Option<String>,
    index: Option<String>,
    save_index: bool,
    addr: Option<String>,
    max_conns: Option<usize>,
    shards: usize,
    route: Option<String>,
    shard_leg: bool,
    page_size: u32,
    fast: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: verd --data DIR [--index FILE] [--save-index] [--addr HOST:PORT] \
         [--max-conns N] [--shards N] [--route ADDR,ADDR,...] [--shard-leg] \
         [--page-size N] [--fast]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        data: None,
        index: None,
        save_index: false,
        addr: None,
        max_conns: None,
        shards: 1,
        route: None,
        shard_leg: false,
        page_size: 0,
        fast: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("verd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--data" => args.data = Some(value("--data")),
            "--index" => args.index = Some(value("--index")),
            "--save-index" => args.save_index = true,
            "--addr" => args.addr = Some(value("--addr")),
            "--max-conns" => {
                let raw = value("--max-conns");
                args.max_conns = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("verd: bad --max-conns {raw:?}");
                    usage()
                }))
            }
            "--shards" => {
                let raw = value("--shards");
                args.shards = raw.parse().unwrap_or_else(|_| {
                    eprintln!("verd: bad --shards {raw:?}");
                    usage()
                })
            }
            "--route" => args.route = Some(value("--route")),
            "--shard-leg" => args.shard_leg = true,
            "--page-size" => {
                let raw = value("--page-size");
                args.page_size = raw.parse().unwrap_or_else(|_| {
                    eprintln!("verd: bad --page-size {raw:?}");
                    usage()
                })
            }
            "--fast" => args.fast = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("verd: unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

/// Load every `*.csv` under `dir` (sorted by filename, so `TableId`
/// assignment — and therefore every query result — is deterministic
/// across starts).
fn load_catalog(dir: &str) -> ver_common::error::Result<TableCatalog> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(ver_common::error::VerError::InvalidData(format!(
            "no .csv files under {dir}"
        )));
    }
    let mut catalog = TableCatalog::new();
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("table")
            .to_string();
        let file = std::fs::File::open(&path)?;
        let table = ver_store::csv::read_csv(&name, std::io::BufReader::new(file), true)?;
        catalog.add_table(table)?;
    }
    Ok(catalog)
}

/// Parse `--route`'s comma-separated shard-leg addresses. One address per
/// shard, in shard order; order decides which slice of the column space
/// each leg is asked to cover.
fn parse_route(raw: &str) -> Vec<SocketAddr> {
    let mut addrs = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match config::parse_addr(part) {
            Some(a) => addrs.push(a),
            None => {
                eprintln!("verd: bad --route address {part:?}");
                usage();
            }
        }
    }
    if addrs.is_empty() {
        eprintln!("verd: --route needs at least one HOST:PORT address");
        usage();
    }
    addrs
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(data) = args.data.as_deref() else {
        eprintln!("verd: --data is required");
        usage();
    };
    if args.route.is_some() && args.shards != 1 {
        eprintln!("verd: --route and --shards are mutually exclusive");
        usage();
    }
    if args.shard_leg && (args.route.is_some() || args.shards != 1) {
        eprintln!("verd: --shard-leg is a plain single-engine verd (no --route / --shards)");
        usage();
    }

    let catalog = match load_catalog(data) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verd: loading {data}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "verd: catalog loaded: {} tables, {} columns",
        catalog.table_count(),
        catalog.column_count()
    );

    let serve_config = ServeConfig {
        pipeline: if args.fast {
            VerConfig::fast()
        } else {
            VerConfig::default()
        },
        ..ServeConfig::default()
    };

    let index_path = args.index.as_deref().map(std::path::Path::new);
    let warm = index_path.is_some_and(|p| p.exists());

    let backend = if let Some(route) = args.route.as_deref() {
        let addrs = parse_route(route);
        // The router keeps the full catalog + index: it runs column
        // selection itself and merges the legs' shard outputs centrally,
        // so a healthy-leg router answers bit-identically to one process.
        let ver = if warm {
            ver_index::persist::load_index(index_path.unwrap()).and_then(|ix| {
                Ver::from_parts(
                    Arc::new(catalog),
                    Arc::new(ix),
                    serve_config.pipeline.clone(),
                )
            })
        } else {
            Ver::build(catalog, serve_config.pipeline.clone())
        };
        match ver {
            Ok(ver) => {
                if !warm && args.save_index {
                    if let Some(p) = index_path {
                        match ver_index::persist::save_index(ver.index(), p) {
                            Ok(()) => eprintln!("verd: index saved to {}", p.display()),
                            Err(e) => eprintln!("verd: saving index: {e} (serving anyway)"),
                        }
                    }
                }
                match RouterEngine::new(ver, serve_config, &addrs, RetryPolicy::default()) {
                    Ok(router) => {
                        eprintln!("verd: router backend: {} remote legs", router.shard_count());
                        for leg in router.leg_stats() {
                            eprintln!("verd:   leg {}", leg.addr);
                        }
                        Backend::Router(Arc::new(router))
                    }
                    Err(e) => {
                        eprintln!("verd: building router: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("verd: building router pipeline: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.shards == 1 {
        let engine = if warm {
            ServeEngine::open(Arc::new(catalog), index_path.unwrap(), serve_config)
        } else {
            ServeEngine::build(catalog, serve_config)
        };
        match engine {
            Ok(engine) => {
                if !warm && args.save_index {
                    if let Some(p) = index_path {
                        match engine.save_index(p) {
                            Ok(()) => eprintln!("verd: index saved to {}", p.display()),
                            Err(e) => eprintln!("verd: saving index: {e} (serving anyway)"),
                        }
                    }
                }
                if args.shard_leg {
                    eprintln!("verd: serving as a shard leg (answers ShardQuery)");
                }
                Backend::Single(Arc::new(engine))
            }
            Err(e) => {
                eprintln!("verd: building engine: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let engine = if warm {
            ShardedEngine::open(
                Arc::new(catalog),
                index_path.unwrap(),
                serve_config,
                args.shards,
            )
        } else {
            ShardedEngine::build(catalog, serve_config, args.shards)
        };
        match engine {
            Ok(engine) => {
                if !warm && args.save_index {
                    if let Some(p) = index_path {
                        match engine.save_index(p) {
                            Ok(()) => eprintln!("verd: index saved to {}", p.display()),
                            Err(e) => eprintln!("verd: saving index: {e} (serving anyway)"),
                        }
                    }
                }
                eprintln!("verd: sharded backend: {} shards", engine.shard_count());
                Backend::Sharded(Arc::new(engine))
            }
            Err(e) => {
                eprintln!("verd: building sharded engine: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!(
        "verd: engine ready ({})",
        if warm { "warm start" } else { "cold build" }
    );

    let mut net = NetConfig::default();
    if let Some(raw) = args.addr.as_deref() {
        match config::parse_addr(raw) {
            Some(a) => net.addr = a,
            None => {
                eprintln!("verd: bad --addr {raw:?}");
                usage();
            }
        }
    }
    if let Some(n) = args.max_conns {
        net.max_conns = n;
    }
    net.default_page_size = args.page_size;

    let server = match Server::bind(backend, net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("verd: bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // stdout, and flushed: harnesses parse this line for the ephemeral port.
    println!("verd listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(()) => {
            eprintln!("verd: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("verd: serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
