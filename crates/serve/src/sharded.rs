//! Sharded serving: one logical catalog scattered over N shard handles.
//!
//! [`ShardedEngine`] presents the exact [`ServeEngine`](crate::ServeEngine) query surface —
//! [`query`](ShardedEngine::query) /
//! [`query_with_budget`](ShardedEngine::query_with_budget), the same
//! fail-fast admission gate, the same result-LRU and partial-result
//! semantics — but executes every result-cache miss as a scatter/gather
//! over `shard_count` logical shards on `ver_common::pool`. Where a leg
//! *runs* is behind the [`ShardBackend`] trait: the engine built here
//! scatters over in-process [`LocalLeg`]s ([`Ver::run_shard_leg`]), and
//! the router in [`crate::remote`] scatters the same way over remote
//! `verd` processes. One [`SearchCaches`] bundle is shared by every local
//! leg: the score memo makes each shard's (identical) global scoring pass
//! cheap, and cache hits stay bit-identical to misses.
//!
//! **Determinism invariant 11.** For every shard count the merged answer
//! is bit-identical to the single-engine [`ServeEngine`](crate::ServeEngine) run — same views,
//! same ids, same ranking (`tests/parallel_determinism.rs` pins this
//! across shard × thread counts against the golden snapshot).
//!
//! **Failure model.** A scatter leg that trips the query deadline degrades
//! *inside* its shard; a leg whose worker panics is dropped at the gather.
//! Either way the merged result is flagged partial and returned — a shard
//! failure is never an error (`tests/chaos.rs`) — and partial results
//! are never cached, exactly as on the single-engine path. Per-shard
//! health is visible in [`ShardedEngine::shard_stats`].
//!
//! The shard count comes from the constructor, or from the `VER_SHARDS`
//! environment knob when `0` (auto) is passed — same contract as
//! `VER_THREADS`: malformed values warn once and fall back to `1`.

use crate::engine::{spec_key, ServeConfig, ServeStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ver_common::budget::QueryBudget;
use ver_common::cache::LruCache;
use ver_common::error::{Result, VerError};
use ver_core::{QueryResult, ShardLeg, Ver};
use ver_index::persist::{load_index, save_index};
use ver_index::DiscoveryIndex;
use ver_qbe::ViewSpec;
use ver_search::{SearchCaches, ShardSearchOutput};
use ver_store::catalog::TableCatalog;

/// Parse a `VER_SHARDS`-style value: a positive shard count.
fn parse_shards(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Default shard count: the `VER_SHARDS` environment variable, or `1`
/// (unsharded) when unset. A malformed value warns on stderr once per
/// process and falls back to `1` — a typo'd knob must not change results,
/// and invariant 11 means the fallback computes identical output anyway.
pub fn default_shards() -> usize {
    static KNOB: ver_common::env::EnvKnob<usize> =
        ver_common::env::EnvKnob::new("VER_SHARDS", "want a positive integer");
    KNOB.get(parse_shards, 1)
}

/// One scatter leg's executor: where shard `shard` of `shard_count`
/// actually runs. The in-process [`LocalLeg`] answers on this process's
/// own catalog/index; `ver_serve::remote::RemoteLeg` speaks the `verd`
/// protocol to a shard-serving peer. The merge contract (invariants 11
/// and 13) holds for any mix, because every backend computes the same
/// pure function of (index, spec, shard identity, budget).
pub trait ShardBackend: Send + Sync {
    /// Human-readable identity for stats and logs (an address, "local").
    fn describe(&self) -> String;

    /// Run one scatter leg: shard `shard` of `shard_count` under `budget`.
    fn leg_query(
        &self,
        spec: &ViewSpec,
        shard: usize,
        shard_count: usize,
        budget: &QueryBudget,
    ) -> Result<ShardSearchOutput>;

    /// Whether `e` **degrades** this leg (dropped at the gather, merged
    /// result flagged partial) rather than failing the whole query. The
    /// in-process default mirrors [`Ver::run_sharded_with_legs`]: worker
    /// panics and un-degraded deadlines are droppable, anything else is a
    /// real error. Remote backends widen this to transport failures.
    fn degradable(&self, e: &VerError) -> bool {
        matches!(e, VerError::DeadlineExceeded(_) | VerError::Internal(_))
    }
}

/// The in-process [`ShardBackend`]: runs a leg on this process's own
/// catalog and index via [`Ver::run_shard_leg`], sharing one
/// [`SearchCaches`] bundle across every leg (cache hits are bit-identical
/// to misses, so sharing never changes results).
pub struct LocalLeg {
    ver: Ver,
    caches: Arc<SearchCaches>,
}

impl LocalLeg {
    pub fn new(ver: Ver, caches: Arc<SearchCaches>) -> LocalLeg {
        LocalLeg { ver, caches }
    }
}

impl ShardBackend for LocalLeg {
    fn describe(&self) -> String {
        "local".into()
    }

    fn leg_query(
        &self,
        spec: &ViewSpec,
        shard: usize,
        shard_count: usize,
        budget: &QueryBudget,
    ) -> Result<ShardSearchOutput> {
        self.ver
            .run_shard_leg(spec, Some(self.caches.as_ref()), budget, shard, shard_count)
    }
}

/// Scatter `spec` over one backend per shard on `ver_common::pool`,
/// classifying each leg exactly as [`Ver::run_sharded_with_legs`] does:
/// a leg whose error its backend calls [`ShardBackend::degradable`] is
/// dropped (reported `ok: false`, gather proceeds flagged partial); any
/// other error fails the query. Worker panics arrive here as
/// [`VerError::Internal`] via `try_par_map` and are droppable by default.
/// Returns the surviving outputs, a per-leg report, and whether every leg
/// survived.
pub(crate) fn scatter_over_backends(
    backends: &[Arc<dyn ShardBackend>],
    spec: &ViewSpec,
    budget: &QueryBudget,
    threads: usize,
) -> Result<(Vec<ShardSearchOutput>, Vec<ShardLeg>, bool)> {
    let shard_count = backends.len();
    assert!(shard_count >= 1, "scatter needs at least one backend");
    let pool = ver_common::pool::ThreadPool::new(threads);
    let shard_ids: Vec<usize> = (0..shard_count).collect();
    let legs = pool.try_par_map(&shard_ids, |&shard| {
        backends[shard].leg_query(spec, shard, shard_count, budget)
    });
    let mut outputs = Vec::with_capacity(shard_count);
    let mut reports = Vec::with_capacity(shard_count);
    let mut complete = true;
    for (shard, leg) in legs.into_iter().enumerate() {
        match leg {
            Ok(out) => {
                reports.push(ShardLeg {
                    shard,
                    ok: true,
                    partial: out.partial,
                    views: out.views.len(),
                });
                outputs.push(out);
            }
            Err(e) if backends[shard].degradable(&e) => {
                complete = false;
                reports.push(ShardLeg {
                    shard,
                    ok: false,
                    partial: true,
                    views: 0,
                });
            }
            Err(e) => return Err(e),
        }
    }
    Ok((outputs, reports, complete))
}

/// Point-in-time health counters for one shard of a [`ShardedEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Scatter legs dispatched to this shard (one per result-cache miss).
    pub legs: u64,
    /// Legs dropped at the gather (worker panic / un-degraded deadline).
    pub failed: u64,
    /// Legs that came back degraded (budget trimmed their slice, or the
    /// leg was dropped).
    pub partial: u64,
    /// Views this shard contributed to merged results.
    pub views: u64,
}

/// Per-shard counter cells ([`ShardStats`] is the snapshot form).
#[derive(Default)]
struct ShardCounters {
    legs: AtomicU64,
    failed: AtomicU64,
    partial: AtomicU64,
    views: AtomicU64,
}

/// RAII admission permit — one in-flight slot, released on drop even when
/// the query errors, so failed queries can never leak the gate shut.
/// Shared with the remote router, which runs the same admission gate.
pub(crate) struct InFlightPermit<'a>(pub(crate) &'a AtomicU64);

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A long-lived, concurrently shareable **sharded** serving engine.
///
/// Same contract as [`ServeEngine`](crate::ServeEngine): all entry points take `&self`, the
/// engine sits behind an `Arc` with any number of client threads calling
/// [`query`](Self::query) simultaneously, and every answer is
/// bit-identical to the single-engine run (invariant 11).
pub struct ShardedEngine {
    ver: Ver,
    config: ServeConfig,
    shard_count: usize,
    /// One [`ShardBackend`] per shard (all [`LocalLeg`]s here; the remote
    /// router in `ver_serve::remote` reuses the same scatter over
    /// `RemoteLeg`s).
    backends: Vec<Arc<dyn ShardBackend>>,
    /// Whole-result cache keyed by the canonical query form.
    results: LruCache<String, Arc<QueryResult>>,
    /// The ONE cross-query cache bundle every scatter leg shares.
    caches: Arc<SearchCaches>,
    shards: Vec<ShardCounters>,
    queries: AtomicU64,
    in_flight: AtomicU64,
    rejected: AtomicU64,
    partial_results: AtomicU64,
}

impl ShardedEngine {
    /// Cold start: profile the catalog and build the discovery index in
    /// process. `shard_count = 0` means auto ([`default_shards`], i.e. the
    /// `VER_SHARDS` knob).
    pub fn build(
        catalog: TableCatalog,
        config: ServeConfig,
        shard_count: usize,
    ) -> Result<ShardedEngine> {
        let ver = Ver::build(catalog, config.pipeline.clone())?;
        Self::assemble(ver, config, shard_count)
    }

    /// Warm start from an already-built index (e.g. merged from persisted
    /// `VERSHD` shard artifacts via [`ver_index::shard::load_sharded_index`]).
    pub fn warm_start(
        catalog: Arc<TableCatalog>,
        index: Arc<DiscoveryIndex>,
        config: ServeConfig,
        shard_count: usize,
    ) -> Result<ShardedEngine> {
        let ver = Ver::from_parts(catalog, index, config.pipeline.clone())?;
        Self::assemble(ver, config, shard_count)
    }

    /// Warm start from a persisted full-index file.
    pub fn open(
        catalog: Arc<TableCatalog>,
        index_path: &std::path::Path,
        config: ServeConfig,
        shard_count: usize,
    ) -> Result<ShardedEngine> {
        let index = load_index(index_path)?;
        Self::warm_start(catalog, Arc::new(index), config, shard_count)
    }

    fn assemble(ver: Ver, config: ServeConfig, shard_count: usize) -> Result<ShardedEngine> {
        let shard_count = if shard_count == 0 {
            default_shards()
        } else {
            shard_count
        };
        let caches = Arc::new(SearchCaches::new(config.view_cache_capacity));
        // One local backend serves every shard index — `leg_query` takes
        // the shard identity per call, so the instance is shared.
        let leg_ver = Ver::from_parts(
            ver.catalog_shared(),
            ver.index_shared(),
            config.pipeline.clone(),
        )?;
        let local: Arc<dyn ShardBackend> = Arc::new(LocalLeg::new(leg_ver, Arc::clone(&caches)));
        Ok(ShardedEngine {
            results: LruCache::new(config.result_cache_capacity),
            caches,
            backends: (0..shard_count).map(|_| Arc::clone(&local)).collect(),
            shards: (0..shard_count).map(|_| ShardCounters::default()).collect(),
            queries: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            partial_results: AtomicU64::new(0),
            ver,
            config,
            shard_count,
        })
    }

    /// Claim an admission slot, failing fast with [`VerError::Overloaded`]
    /// when [`ServeConfig::max_in_flight`] slots are already taken. The
    /// gate counts *queries*, not scatter legs: one admitted query fans
    /// out to all shards.
    fn admit(&self) -> Result<InFlightPermit<'_>> {
        let limit = self.config.max_in_flight;
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if limit != 0 && prev as usize >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(VerError::Overloaded(format!(
                "{limit} queries already in flight"
            )));
        }
        Ok(InFlightPermit(&self.in_flight))
    }

    /// Number of logical shards queries scatter over.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The wrapped pipeline facade.
    pub fn ver(&self) -> &Ver {
        &self.ver
    }

    /// Shared handle to the catalog.
    pub fn catalog_shared(&self) -> Arc<TableCatalog> {
        self.ver.catalog_shared()
    }

    /// Shared handle to the (logical, merged) index.
    pub fn index_shared(&self) -> Arc<DiscoveryIndex> {
        self.ver.index_shared()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Persist this engine's logical index as `shard_count` per-shard
    /// `VERSHD` artifacts under `dir` (invariant: loading and merging them
    /// reconstructs the index exactly).
    pub fn save_shards(&self, dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>> {
        ver_index::shard::save_sharded_index(self.ver.index(), self.shard_count, dir)
    }

    /// Persist the logical index as one full-index artifact.
    pub fn save_index(&self, path: &std::path::Path) -> Result<()> {
        save_index(self.ver.index(), path)
    }

    /// Answer a view specification — [`ServeEngine`](crate::ServeEngine)'s contract, executed
    /// as a scatter/gather. Unbudgeted shorthand for
    /// [`query_with_budget`](Self::query_with_budget).
    pub fn query(&self, spec: &ViewSpec) -> Result<Arc<QueryResult>> {
        self.query_with_budget(spec, &QueryBudget::none())
    }

    /// [`query`](Self::query) under a per-query [`QueryBudget`]. Failure
    /// model, in order, identical to [`ServeEngine::query_with_budget`](crate::ServeEngine::query_with_budget):
    /// cache hits are free (no gate, no budget), misses claim an
    /// admission slot or fail fast with [`VerError::Overloaded`], budget
    /// exhaustion and shard failures degrade to a partial (never-cached)
    /// result, a hard [`VerError::DeadlineExceeded`] consults the LRU once
    /// more before surfacing, and any other error propagates typed. The
    /// budget's deadline is an absolute instant threaded to every scatter
    /// leg by value, so all shards race the same wall clock.
    pub fn query_with_budget(
        &self,
        spec: &ViewSpec,
        budget: &QueryBudget,
    ) -> Result<Arc<QueryResult>> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = spec_key(spec);
        if let Some(hit) = self.results.get(&key) {
            return Ok(hit);
        }
        let _permit = self.admit()?;
        ver_common::fault::hit(ver_common::fault::points::SERVE_QUERY)?;
        let scattered = scatter_over_backends(
            &self.backends,
            spec,
            budget,
            self.ver.config().search.threads,
        )
        .and_then(|(outputs, legs, complete)| {
            self.ver
                .gather_shard_outputs(spec, budget, outputs, complete)
                .map(|result| (result, legs))
        });
        match scattered {
            Ok((result, legs)) => {
                for leg in legs {
                    let cell = &self.shards[leg.shard];
                    cell.legs.fetch_add(1, Ordering::Relaxed);
                    cell.failed.fetch_add(u64::from(!leg.ok), Ordering::Relaxed);
                    cell.partial
                        .fetch_add(u64::from(leg.partial), Ordering::Relaxed);
                    cell.views.fetch_add(leg.views as u64, Ordering::Relaxed);
                }
                let result = Arc::new(result);
                if result.partial {
                    // Never cache a degraded result: the next query with
                    // headroom must be able to compute the full answer.
                    self.partial_results.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.results.insert(key, Arc::clone(&result));
                }
                Ok(result)
            }
            Err(e @ VerError::DeadlineExceeded(_)) => match self.results.get(&key) {
                Some(hit) => Ok(hit),
                None => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Merged serving statistics — the same [`ServeStats`] shape a
    /// [`ServeEngine`](crate::ServeEngine) reports (session counters are zero: sessions live
    /// on the single-engine surface).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            result_cache: self.results.stats(),
            view_cache: self.caches.view_stats(),
            score_memo: self.caches.score_stats(),
            cached_views: self.caches.cached_views(),
            sessions_opened: 0,
            sessions_active: 0,
            interactions: 0,
            rejected: self.rejected.load(Ordering::Relaxed),
            partial_results: self.partial_results.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed) as usize,
        }
    }

    /// Per-shard health counters, indexed by shard id.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|c| ShardStats {
                legs: c.legs.load(Ordering::Relaxed),
                failed: c.failed.load(Ordering::Relaxed),
                partial: c.partial.load(Ordering::Relaxed),
                views: c.views.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeEngine;
    use ver_common::value::Value;
    use ver_core::VerConfig;
    use ver_qbe::ExampleQuery;
    use ver_store::table::TableBuilder;

    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..40).map(|i| format!("st{i}")).collect();
        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("AP{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("state_pop", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("state_pop_old", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(900 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn config() -> ServeConfig {
        ServeConfig {
            pipeline: VerConfig::fast(),
            ..ServeConfig::default()
        }
    }

    fn spec() -> ViewSpec {
        ViewSpec::Qbe(ExampleQuery::from_rows(&[vec!["st1", "1001"], vec!["st2", "1002"]]).unwrap())
    }

    #[test]
    fn sharded_engine_matches_single_engine_for_every_shard_count() {
        let single = ServeEngine::build(catalog(), config()).unwrap();
        let base = single.query(&spec()).unwrap();
        for count in [1usize, 2, 4] {
            let sharded = ShardedEngine::build(catalog(), config(), count).unwrap();
            assert_eq!(sharded.shard_count(), count);
            let out = sharded.query(&spec()).unwrap();
            assert!(!out.partial, "count={count}");
            assert_eq!(out.ranked, base.ranked, "count={count}");
            assert_eq!(out.views.len(), base.views.len());
            for (a, b) in out.views.iter().zip(&base.views) {
                assert_eq!(a.id, b.id, "count={count}");
                assert!(a.same_contents(b), "count={count}: {} differs", a.id);
            }
            // Every shard ran exactly one leg, none failed, and the legs'
            // contributions partition the merged output.
            let per_shard = sharded.shard_stats();
            assert_eq!(per_shard.len(), count);
            assert!(per_shard.iter().all(|s| s.legs == 1 && s.failed == 0));
            let contributed: u64 = per_shard.iter().map(|s| s.views).sum();
            assert_eq!(contributed as usize, base.views.len(), "count={count}");
        }
    }

    #[test]
    fn result_cache_and_admission_behave_like_the_single_engine() {
        let engine = ShardedEngine::build(catalog(), config(), 2).unwrap();
        let a = engine.query(&spec()).unwrap();
        let b = engine.query(&spec()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second query must alias the first");
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.result_cache.hits, 1);
        // The cache hit dispatched no new scatter legs.
        assert!(engine.shard_stats().iter().all(|s| s.legs == 1));

        // Admission: claim the only slot, the next miss is rejected.
        let gated = ShardedEngine::build(catalog(), config().with_max_in_flight(1), 2).unwrap();
        let permit = gated.admit().unwrap();
        assert!(matches!(gated.query(&spec()), Err(VerError::Overloaded(_))));
        assert_eq!(gated.stats().rejected, 1);
        drop(permit);
        assert!(!gated.query(&spec()).unwrap().views.is_empty());
        assert_eq!(gated.stats().in_flight, 0);
    }

    #[test]
    fn expired_budget_degrades_partial_and_uncached_across_shards() {
        let engine = ShardedEngine::build(catalog(), config(), 2).unwrap();
        let exhausted = QueryBudget::none().with_timeout(std::time::Duration::ZERO);
        let partial = engine.query_with_budget(&spec(), &exhausted).unwrap();
        assert!(partial.partial);
        assert!(partial.views.is_empty());
        assert_eq!(engine.stats().partial_results, 1);
        assert!(engine.shard_stats().iter().all(|s| s.partial == 1));
        // Not cached: the next unbudgeted query computes the full answer.
        let full = engine.query(&spec()).unwrap();
        assert!(!full.partial);
        assert!(!full.views.is_empty());
        assert_eq!(engine.stats().result_cache.hits, 0);
    }

    #[test]
    fn warm_start_from_shard_artifacts_answers_identically() {
        let dir = std::env::temp_dir().join(format!("ver_sharded_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cold = ShardedEngine::build(catalog(), config(), 3).unwrap();
        let paths = cold.save_shards(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        let merged = ver_index::shard::load_sharded_index(&dir, 3).unwrap();
        assert!(merged.same_contents(cold.index_shared().as_ref()));
        let warm = ShardedEngine::warm_start(cold.catalog_shared(), Arc::new(merged), config(), 3)
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let a = cold.query(&spec()).unwrap();
        let b = warm.query(&spec()).unwrap();
        assert_eq!(a.ranked, b.ranked);
        for (va, vb) in a.views.iter().zip(&b.views) {
            assert!(va.same_contents(vb));
        }
    }

    #[test]
    fn shard_knob_parses_like_the_thread_knob() {
        assert_eq!(parse_shards("4"), Some(4));
        assert_eq!(parse_shards(" 2 "), Some(2));
        assert_eq!(parse_shards("1"), Some(1));
        assert_eq!(parse_shards("0"), None, "zero shards is malformed");
        assert_eq!(parse_shards("-1"), None);
        assert_eq!(parse_shards("two"), None);
        assert_eq!(parse_shards(""), None);
        // The process default is in range regardless of the environment.
        assert!(default_shards() >= 1);
    }
}
