//! `ver-serve` — the long-lived serving layer: **many users, one index**.
//!
//! Everything upstream of this crate is single-shot: build an index, answer
//! one query, exit. A deployment instead keeps one [`ServeEngine`] alive
//! and pushes every user's queries and interactive sessions through it:
//!
//! * **warm-start** — the engine loads a [persisted discovery
//!   index](ver_index::persist) instead of re-profiling and re-sketching
//!   the catalog ([`ServeEngine::open`] / [`ServeEngine::warm_start`]);
//!   cold building remains available as [`ServeEngine::build`];
//! * **concurrent readers** — catalog and index sit behind `Arc`, every
//!   serving entry point takes `&self`, and each query fans out onto
//!   `ver_common::pool` under the configured per-query thread budget
//!   ([`ServeConfig::with_query_threads`]);
//! * **three caches on the hot path** — a whole-result LRU keyed by the
//!   canonical query form, plus the cross-query
//!   [`SearchCaches`](ver_search::SearchCaches) (materialized-view LRU +
//!   memoized signature/containment join scores), all surfaced with
//!   hit/miss counters in [`ServeStats`];
//! * **sessions** — many simultaneous QBE sessions
//!   ([`ServeEngine::open_session`]) reusing `ver-present`'s Algorithm-2
//!   interaction loop over shared query results.
//!
//! Serving preserves the pipeline's determinism contract: a warm-started,
//! cache-hitting engine answers every query **bit-identically** to a cold
//! `Ver::run` (pinned by `tests/serve_warm_start.rs` against the golden
//! snapshot). See ARCHITECTURE.md ("Serving layer") for how this crate
//! sits on top of the offline → online pipeline.
//!
//! ```
//! use std::sync::Arc;
//! use ver_core::VerConfig;
//! use ver_qbe::{ExampleQuery, ViewSpec};
//! use ver_serve::{ServeConfig, ServeEngine};
//! use ver_store::catalog::TableCatalog;
//! use ver_store::table::TableBuilder;
//!
//! let mut catalog = TableCatalog::new();
//! let mut t = TableBuilder::new("airports", &["iata", "state"]);
//! for (i, s) in [("IND", "Indiana"), ("ATL", "Georgia"), ("ORD", "Illinois")] {
//!     t.push_row(vec![i.into(), s.into()]).unwrap();
//! }
//! catalog.add_table(t.build()).unwrap();
//!
//! // Offline, once: cold-build and persist the index.
//! let config = ServeConfig {
//!     pipeline: VerConfig::fast(),
//!     ..ServeConfig::default()
//! };
//! let cold = ServeEngine::build(catalog, config.clone()).unwrap();
//! let dir = std::env::temp_dir().join(format!("ver_serve_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("index.bin");
//! cold.save_index(&path).unwrap();
//!
//! // Every later process: warm-start and serve.
//! let engine = ServeEngine::open(cold.catalog_shared(), &path, config).unwrap();
//! let spec = ViewSpec::Qbe(ExampleQuery::from_rows(&[vec!["IND", "Indiana"]]).unwrap());
//! let first = engine.query(&spec).unwrap();
//! let second = engine.query(&spec).unwrap(); // served from the result cache
//! assert!(Arc::ptr_eq(&first, &second));
//! assert_eq!(engine.stats().result_cache.hits, 1);
//! std::fs::remove_file(&path).ok();
//! ```
//!
//! Layer 5 of the crate map in the repo-root `ARCHITECTURE.md` — the
//! serving layer; see its "Determinism invariants" before changing
//! anything on the query path.

pub mod engine;
pub mod net;
pub mod remote;
pub mod session;
pub mod sharded;

pub use engine::{ServeConfig, ServeEngine, ServeStats};
pub use remote::{RemoteLeg, RouterEngine, RouterLegStats};
pub use session::SessionId;
pub use sharded::{default_shards, LocalLeg, ShardBackend, ShardStats, ShardedEngine};
