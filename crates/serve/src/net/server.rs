//! The `verd` server core: a thread-per-connection accept loop over the
//! framed protocol of [`super::frame`] / [`super::wire`].
//!
//! Deliberately std-only — `TcpListener` + OS threads, no async runtime
//! (the ROADMAP's vendored-deps constraint). Each connection gets one
//! thread that reads frames in a loop; the heavy lifting inside a query
//! still fans out over `ver_common::pool` exactly as in-process callers
//! do, so thread-per-connection costs one mostly-blocked thread per
//! client, not one core.
//!
//! **Blast-radius contract** (mirrors the engine's): any single
//! connection's failure — peer death mid-frame, protocol garbage, a
//! tripped read/write timeout, even a panicking handler — ends *that
//! connection only*. The accept loop, every other connection, and the
//! engine keep going, and `NetStats` counts what happened. The
//! socket-level chaos tests in `tests/chaos.rs` pin this through the
//! `net.accept` / `net.read` / `net.write` fault points.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ver_common::budget::QueryBudget;
use ver_common::error::{Result, VerError};
use ver_common::fault::{self, points};
use ver_common::fxhash::FxHashMap;
use ver_core::QueryResult;
use ver_qbe::ViewSpec;

use super::config::NetConfig;
use super::frame::{read_frame, write_frame, ReadOutcome};
use super::wire::{
    HealthReply, NetStats, Page, QueryHead, Request, Response, StatsReply, WireResult,
    WireRouterLeg, WireShardOutput, WireView, PROTOCOL_VERSION,
};
use crate::remote::RouterEngine;
use crate::{ServeEngine, ServeStats, ShardedEngine};

/// The engine a server fronts: a single [`ServeEngine`], an in-process
/// [`ShardedEngine`], or a [`RouterEngine`] scattering to remote shard
/// `verd`s — same wire surface every way (scatter/gather is invisible to
/// clients, as invariants 11 and 13 require).
#[derive(Clone)]
pub enum Backend {
    Single(Arc<ServeEngine>),
    Sharded(Arc<ShardedEngine>),
    Router(Arc<RouterEngine>),
}

impl Backend {
    fn query_with_budget(&self, spec: &ViewSpec, budget: &QueryBudget) -> Result<Arc<QueryResult>> {
        match self {
            Backend::Single(e) => e.query_with_budget(spec, budget),
            Backend::Sharded(e) => e.query_with_budget(spec, budget),
            Backend::Router(e) => e.query_with_budget(spec, budget),
        }
    }

    /// Serve one scatter leg (`ShardQuery`). Only a single engine serves
    /// legs: a sharded or routing backend answering a leg request would
    /// nest scatters, which the deployment shape rules out — the router
    /// fans out to *shard-serving* `verd`s, never to another router.
    fn shard_query(
        &self,
        spec: &ViewSpec,
        shard: usize,
        shard_count: usize,
        budget: &QueryBudget,
    ) -> Result<ver_search::ShardSearchOutput> {
        match self {
            Backend::Single(e) => e.shard_query(spec, shard, shard_count, budget),
            Backend::Sharded(_) | Backend::Router(_) => Err(VerError::InvalidQuery(
                "this verd is not a shard leg (sharded/router backends do not serve ShardQuery)"
                    .into(),
            )),
        }
    }

    fn stats(&self) -> ServeStats {
        match self {
            Backend::Single(e) => e.stats(),
            Backend::Sharded(e) => e.stats(),
            Backend::Router(e) => e.stats(),
        }
    }

    /// Per-leg router health — empty for non-router backends.
    fn router_stats(&self) -> Vec<WireRouterLeg> {
        match self {
            Backend::Single(_) | Backend::Sharded(_) => Vec::new(),
            Backend::Router(e) => e
                .leg_stats()
                .into_iter()
                .map(|l| WireRouterLeg {
                    addr: l.addr,
                    attempts: l.attempts,
                    retries: l.retries,
                    failures: l.failures,
                    failovers: l.failovers,
                    breaker: l.breaker.wire_tag(),
                })
                .collect(),
        }
    }

    fn health(&self) -> (u64, u64, u32) {
        let (catalog, shards) = match self {
            Backend::Single(e) => (e.catalog_shared(), 1),
            Backend::Sharded(e) => (e.catalog_shared(), e.shard_count() as u32),
            Backend::Router(e) => (e.ver().catalog_shared(), e.shard_count() as u32),
        };
        (
            catalog.table_count() as u64,
            catalog.column_count() as u64,
            shards,
        )
    }
}

/// Lifetime counters, lock-free on the hot path.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    active: AtomicU64,
    rejected_conns: AtomicU64,
    dropped_conns: AtomicU64,
    protocol_errors: AtomicU64,
    handler_panics: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    pages_served: AtomicU64,
    cursors_evicted: AtomicU64,
}

impl Counters {
    fn snapshot(&self, cursors_open: u64) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            rejected_conns: self.rejected_conns.load(Ordering::Relaxed),
            dropped_conns: self.dropped_conns.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            pages_served: self.pages_served.load(Ordering::Relaxed),
            cursors_open,
            cursors_evicted: self.cursors_evicted.load(Ordering::Relaxed),
        }
    }
}

/// One paginated result parked server-side between `FetchPage`s. The
/// views are shared (`Arc`), so a cursor costs a map entry, not a copy
/// of the result.
struct CursorState {
    views: Arc<Vec<WireView>>,
    page_size: u32,
}

/// Open cursors, FIFO-evicted at `max_cursors` (a cursor leak from
/// clients that never finish paging must not grow without bound).
#[derive(Default)]
struct CursorTable {
    map: FxHashMap<u64, CursorState>,
    order: std::collections::VecDeque<u64>,
}

struct Shared {
    backend: Backend,
    config: NetConfig,
    counters: Counters,
    cursors: Mutex<CursorTable>,
    next_cursor: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
    /// Actual bound address (resolves `:0` ephemeral binds).
    addr: SocketAddr,
}

impl Shared {
    fn net_stats(&self) -> NetStats {
        let open = self.cursors.lock().map(|t| t.map.len()).unwrap_or(0);
        self.counters.snapshot(open as u64)
    }

    /// Set the shutdown flag and nudge the accept loop awake with a
    /// throwaway connection (std has no selectable listener).
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
    }
}

/// A bound-but-not-yet-running server. [`Server::run`] serves on the
/// calling thread; [`Server::spawn`] serves on a background thread and
/// returns a [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `config.addr` (use port 0 for an ephemeral port — the real
    /// address is available from [`Server::local_addr`]).
    pub fn bind(backend: Backend, config: NetConfig) -> Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                backend,
                config,
                counters: Counters::default(),
                cursors: Mutex::new(CursorTable::default()),
                next_cursor: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                addr,
            }),
        })
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serve until a `Shutdown` request (or [`ServerHandle::stop`])
    /// lands. Connection threads are detached; in-flight requests on
    /// other connections finish writing, but no new connection is
    /// accepted once the flag is up.
    pub fn run(self) -> Result<()> {
        let shared = self.shared;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _peer) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection itself
            }
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            let cap = shared.config.max_conns;
            if cap > 0 && shared.counters.active.load(Ordering::Relaxed) >= cap as u64 {
                shared
                    .counters
                    .rejected_conns
                    .fetch_add(1, Ordering::Relaxed);
                reject_overloaded(stream, &shared.config);
                continue;
            }
            shared.counters.active.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                // A panicking handler (or injected `net.*` panic) costs
                // this connection, nothing else.
                let result = catch_unwind(AssertUnwindSafe(|| serve_conn(&stream, &shared)));
                if result.is_err() {
                    shared
                        .counters
                        .handler_panics
                        .fetch_add(1, Ordering::Relaxed);
                    shared
                        .counters
                        .dropped_conns
                        .fetch_add(1, Ordering::Relaxed);
                }
                shared.counters.active.fetch_sub(1, Ordering::Relaxed);
            });
        }
        Ok(())
    }

    /// Serve on a background thread; the handle stops (and joins) the
    /// accept loop on demand and exposes live counters for tests.
    pub fn spawn(self) -> ServerHandle {
        let shared = Arc::clone(&self.shared);
        let join = std::thread::spawn(move || self.run());
        ServerHandle {
            shared,
            join: Some(join),
        }
    }
}

/// Control handle for a spawned [`Server`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    join: Option<std::thread::JoinHandle<Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live network counters (the same snapshot `Stats` returns on the
    /// wire).
    pub fn net_stats(&self) -> NetStats {
        self.shared.net_stats()
    }

    /// Stop accepting and join the accept loop. Idempotent.
    pub fn stop(&mut self) {
        self.shared.begin_shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Tell an over-cap peer why it is being turned away — best-effort, with
/// a short write timeout so a full socket cannot stall the accept loop.
fn reject_overloaded(mut stream: TcpStream, config: &NetConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout.min(Duration::from_secs(1))));
    let resp = Response::Error {
        code: VerError::Overloaded(String::new()).wire_code(),
        message: format!("connection cap ({}) reached", config.max_conns),
    };
    let _ = write_frame(&mut &stream, &resp.encode());
    let _ = stream.flush();
}

/// Serve one connection until the peer closes, errors out, or asks for
/// shutdown.
fn serve_conn(stream: &TcpStream, shared: &Shared) {
    let c = &shared.counters;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(nonzero(shared.config.read_timeout));
    let _ = stream.set_write_timeout(nonzero(shared.config.write_timeout));
    if fault::hit(points::NET_ACCEPT).is_err() {
        c.dropped_conns.fetch_add(1, Ordering::Relaxed);
        return;
    }
    loop {
        if fault::hit(points::NET_READ).is_err() {
            c.dropped_conns.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let payload = match read_frame(&mut &*stream) {
            Ok(ReadOutcome::Eof) => return, // clean close between frames
            Ok(ReadOutcome::Frame(p)) => {
                c.frames_in.fetch_add(1, Ordering::Relaxed);
                p
            }
            Err(VerError::Protocol(_)) => {
                // Bad preamble / oversized length / checksum mismatch /
                // death mid-frame: the stream can no longer be trusted
                // to be frame-aligned. Best-effort error frame, then cut.
                c.protocol_errors.fetch_add(1, Ordering::Relaxed);
                c.dropped_conns.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: VerError::Protocol(String::new()).wire_code(),
                    message: "malformed frame".into(),
                };
                let _ = write_frame(&mut &*stream, &resp.encode());
                return;
            }
            Err(_) => {
                // Socket error or read timeout.
                c.dropped_conns.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let response = match Request::decode(&payload) {
            Ok(req) => handle_request(shared, req),
            Err(e) => {
                // The frame checksum passed, so framing is still aligned
                // — report the typed error and keep the connection.
                c.protocol_errors.fetch_add(1, Ordering::Relaxed);
                error_response(&e)
            }
        };
        let shutdown_after = matches!(response, Response::ShutdownAck);
        if fault::hit(points::NET_WRITE).is_err() {
            c.dropped_conns.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match write_frame(&mut &*stream, &response.encode()) {
            Ok(()) => {
                c.frames_out.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Write failure or tripped write timeout (slow-loris
                // peer): this connection is done.
                c.dropped_conns.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if shutdown_after {
            shared.begin_shutdown();
            return;
        }
    }
}

fn nonzero(d: Duration) -> Option<Duration> {
    if d.is_zero() {
        None
    } else {
        Some(d)
    }
}

/// Map a `VerError` onto a typed wire status frame. The message carries
/// the error's rendered form minus the variant prefix the client will
/// re-attach via `from_wire` → `Display`.
fn error_response(e: &VerError) -> Response {
    let rendered = e.to_string();
    let message = match rendered.split_once(": ") {
        Some((_prefix, m)) => m.to_string(),
        None => rendered,
    };
    Response::Error {
        code: e.wire_code(),
        message,
    }
}

fn handle_request(shared: &Shared, req: Request) -> Response {
    let c = &shared.counters;
    match req {
        Request::Query {
            spec,
            page_size,
            timeout_ms,
        } => {
            let budget = if timeout_ms == 0 {
                QueryBudget::none()
            } else {
                QueryBudget::none().with_timeout(Duration::from_millis(timeout_ms))
            };
            match shared.backend.query_with_budget(&spec, &budget) {
                Ok(result) => {
                    c.queries_ok.fetch_add(1, Ordering::Relaxed);
                    Response::Query(paginate(shared, &result, page_size))
                }
                Err(e) => {
                    c.queries_err.fetch_add(1, Ordering::Relaxed);
                    error_response(&e)
                }
            }
        }
        Request::ShardQuery {
            spec,
            shard,
            shard_count,
            budget_ms,
        } => {
            // The wire carries the budget *remaining at the router*; the
            // leg rebuilds a local deadline from it (0 = no deadline).
            let budget = if budget_ms == 0 {
                QueryBudget::none()
            } else {
                QueryBudget::none().with_timeout(Duration::from_millis(budget_ms))
            };
            match shared
                .backend
                .shard_query(&spec, shard as usize, shard_count as usize, &budget)
            {
                Ok(out) => {
                    c.queries_ok.fetch_add(1, Ordering::Relaxed);
                    Response::ShardOutput(WireShardOutput::from_output(&out))
                }
                Err(e) => {
                    c.queries_err.fetch_add(1, Ordering::Relaxed);
                    error_response(&e)
                }
            }
        }
        Request::FetchPage { cursor, page } => fetch_page(shared, cursor, page),
        Request::Stats => Response::Stats(StatsReply {
            serve: shared.backend.stats(),
            net: shared.net_stats(),
            router: shared.backend.router_stats(),
        }),
        Request::Health => {
            let (tables, columns, shards) = shared.backend.health();
            Response::Health(HealthReply {
                protocol_version: PROTOCOL_VERSION,
                tables,
                columns,
                shards,
                uptime_ms: shared.started.elapsed().as_millis() as u64,
            })
        }
        Request::Shutdown => Response::ShutdownAck,
    }
}

/// Split a result into a head (+ optional server-side cursor for the
/// remaining pages).
fn paginate(shared: &Shared, result: &QueryResult, requested_page_size: u32) -> QueryHead {
    let wire = WireResult::from_query_result(result);
    let page_size = if requested_page_size == 0 {
        shared.config.default_page_size
    } else {
        requested_page_size
    };
    let total = wire.views.len() as u32;
    let (cursor, views, effective) = if page_size == 0 || total <= page_size {
        (0, wire.views, 0)
    } else {
        let all = Arc::new(wire.views);
        let first: Vec<WireView> = all[..page_size as usize].to_vec();
        let id = shared.next_cursor.fetch_add(1, Ordering::Relaxed);
        let mut table = shared.cursors.lock().expect("cursor lock");
        table.map.insert(
            id,
            CursorState {
                views: all,
                page_size,
            },
        );
        table.order.push_back(id);
        while table.map.len() > shared.config.max_cursors.max(1) {
            if let Some(old) = table.order.pop_front() {
                if table.map.remove(&old).is_some() {
                    shared
                        .counters
                        .cursors_evicted
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        (id, first, page_size)
    };
    QueryHead {
        partial: wire.partial,
        stats: wire.stats,
        survivors_c2: wire.survivors_c2,
        ranked: wire.ranked,
        total_views: total,
        page_size: effective,
        cursor,
        views,
    }
}

fn fetch_page(shared: &Shared, cursor: u64, page: u32) -> Response {
    let mut table = shared.cursors.lock().expect("cursor lock");
    let state = match table.map.get(&cursor) {
        Some(s) => s,
        None => {
            return error_response(&VerError::NotFound(format!(
                "cursor {cursor} (expired, drained, or never issued)"
            )))
        }
    };
    let page_size = state.page_size as usize;
    let total = state.views.len();
    let start = (page as usize).saturating_mul(page_size);
    if start >= total {
        return error_response(&VerError::InvalidQuery(format!(
            "page {page} out of range for cursor {cursor} ({total} views, page size {page_size})"
        )));
    }
    let end = (start + page_size).min(total);
    let views = state.views[start..end].to_vec();
    let last = end == total;
    if last {
        table.map.remove(&cursor);
        table.order.retain(|c| *c != cursor);
    }
    drop(table);
    shared.counters.pages_served.fetch_add(1, Ordering::Relaxed);
    Response::Page(Page {
        cursor,
        page,
        last,
        views,
    })
}
