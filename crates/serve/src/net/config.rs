//! Server configuration and its environment knobs.
//!
//! `VER_ADDR` and `VER_MAX_CONNS` follow the same warn-once-and-fall-back
//! contract as `VER_THREADS` / `VER_SHARDS` / `VER_SIMD`: a malformed
//! value is *never* fatal — it warns on stderr once per process and the
//! default takes over. A typo'd knob must not take the server down (and,
//! per invariant 11, can never change results either way).

use std::net::SocketAddr;
use std::time::Duration;
use ver_common::env::EnvKnob;

/// Bind address used when neither `--addr` nor `VER_ADDR` says otherwise.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7117";

/// Connection cap used when neither `--max-conns` nor `VER_MAX_CONNS`
/// says otherwise.
pub const DEFAULT_MAX_CONNS: usize = 64;

/// Parse a `VER_ADDR`-style value: a socket address like
/// `127.0.0.1:7117` or `[::1]:7117`.
pub fn parse_addr(raw: &str) -> Option<SocketAddr> {
    raw.trim().parse::<SocketAddr>().ok()
}

/// Parse a `VER_MAX_CONNS`-style value: a connection cap (`0` disables
/// the cap entirely).
pub fn parse_max_conns(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// Default bind address: the `VER_ADDR` environment variable, or
/// [`DEFAULT_ADDR`] when unset. Malformed values warn once and fall back.
pub fn default_addr() -> SocketAddr {
    static KNOB: EnvKnob<SocketAddr> =
        EnvKnob::new("VER_ADDR", "want host:port, e.g. 127.0.0.1:7117");
    KNOB.get(
        parse_addr,
        DEFAULT_ADDR.parse().expect("default addr parses"),
    )
}

/// Default connection cap: the `VER_MAX_CONNS` environment variable, or
/// [`DEFAULT_MAX_CONNS`] when unset. Malformed values warn once and fall
/// back; an explicit `0` disables the cap.
pub fn default_max_conns() -> usize {
    static KNOB: EnvKnob<usize> = EnvKnob::new("VER_MAX_CONNS", "want a non-negative integer");
    KNOB.get(parse_max_conns, DEFAULT_MAX_CONNS)
}

/// Tunables for one [`Server`](super::server::Server).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address. [`NetConfig::default`] resolves `VER_ADDR`.
    pub addr: SocketAddr,
    /// Concurrent-connection cap; `0` = uncapped. Connections over the
    /// cap are told `Overloaded` and closed, mirroring the engine's
    /// admission gate one layer down. Resolves `VER_MAX_CONNS`.
    pub max_conns: usize,
    /// Per-read socket timeout; a peer that stays silent longer loses
    /// its connection (`Io` on the read path).
    pub read_timeout: Duration,
    /// Per-write socket timeout; a peer that won't drain its responses
    /// (slow-loris) loses its connection.
    pub write_timeout: Duration,
    /// Page size applied when a `Query` asks for `page_size == 0`;
    /// `0` here means "whole result inline".
    pub default_page_size: u32,
    /// Open-cursor cap; the oldest cursor is evicted (FIFO) when a new
    /// paginated query would exceed it.
    pub max_cursors: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: default_addr(),
            max_conns: default_max_conns(),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            default_page_size: 0,
            max_cursors: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The warn-once fallback itself is pinned by the regression tests
    // next to the other knob tests (`net_knob_*` in this crate's test
    // suite); these cover the parsers the fallback is built from.

    #[test]
    fn addr_knob_parses_socket_addresses() {
        assert_eq!(
            parse_addr("127.0.0.1:7117"),
            Some("127.0.0.1:7117".parse().unwrap())
        );
        assert_eq!(
            parse_addr("  0.0.0.0:80  "),
            Some("0.0.0.0:80".parse().unwrap())
        );
        assert_eq!(parse_addr("localhost:7117"), None); // no resolver — knob wants a literal
        assert_eq!(parse_addr("7117"), None);
        assert_eq!(parse_addr(""), None);
        assert_eq!(parse_addr("127.0.0.1:"), None);
    }

    #[test]
    fn max_conns_knob_parses_caps() {
        assert_eq!(parse_max_conns("64"), Some(64));
        assert_eq!(parse_max_conns(" 0 "), Some(0)); // 0 = uncapped, allowed
        assert_eq!(parse_max_conns("-3"), None);
        assert_eq!(parse_max_conns("many"), None);
        assert_eq!(parse_max_conns(""), None);
    }

    #[test]
    fn default_config_is_sane() {
        let c = NetConfig::default();
        assert!(c.read_timeout > Duration::ZERO);
        assert!(c.write_timeout > Duration::ZERO);
        assert!(c.max_cursors > 0);
    }
}
