//! The length-prefixed binary framing layer of the `verd` protocol.
//!
//! Every message in either direction travels as one frame:
//!
//! ```text
//! frame   "VERNET\x01"            7-byte magic preamble
//!         len u32 LE              payload byte count (<= MAX_FRAME_LEN)
//!         payload                 len bytes (request/response codec, wire.rs)
//!         checksum u64 LE         fxhash fold over the payload
//! ```
//!
//! The checksum follows the `ver-index::persist` convention: seed with a
//! section constant, fold the payload as little-endian 64-bit words with a
//! zero-padded tail, and close over the length so zero-extension cannot
//! collide. Not cryptographic — it catches the accidents that matter on a
//! socket: truncation, a peer that lost frame sync, and bit rot on the
//! path.
//!
//! **Failure typing.** Every malformed input — bad preamble, oversized
//! length prefix, truncated frame, checksum mismatch — decodes to
//! [`VerError::Protocol`], never a panic and never an unbounded
//! allocation (the length prefix is validated against [`MAX_FRAME_LEN`]
//! *before* any buffer is sized). Socket-level failures (timeouts, resets)
//! surface as [`VerError::Io`]; a clean end-of-stream at a frame boundary
//! is [`ReadOutcome::Eof`], which is not an error. The distinction is what
//! lets the server count protocol abuse separately from peers that simply
//! died (`NetStats`).

use std::io::{Read, Write};
use ver_common::error::{Result, VerError};
use ver_common::fxhash::fx_step;

/// Frame preamble: protocol name + wire-format version.
pub const MAGIC: &[u8; 7] = b"VERNET\x01";

/// Upper bound on one frame's payload. Large enough for a full golden
/// query result with materialized view data; small enough that a hostile
/// length prefix cannot make the peer allocate unbounded memory.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Checksum seed — distinct from every `ver-index::persist` section seed
/// so a persisted-index section can never masquerade as a wire frame.
const FRAME_SEED: u64 = 0x7E52_4E45_5401_C3A5;

/// Frame checksum: the `persist` convention (seeded fxhash fold over LE
/// 64-bit words, zero-padded tail, closed over the length).
pub fn frame_checksum(payload: &[u8]) -> u64 {
    let mut h = fx_step(FRAME_SEED, payload.len() as u64);
    let mut words = payload.chunks_exact(8);
    for w in &mut words {
        h = fx_step(h, u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = fx_step(h, u64::from_le_bytes(tail));
    }
    fx_step(h, payload.len() as u64)
}

/// Encode one frame around `payload`.
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — producing an
/// un-decodable frame would be a programming error, not a runtime
/// condition (the codec layer never builds payloads near the cap).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload of {} bytes exceeds MAX_FRAME_LEN",
        payload.len()
    );
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + payload.len() + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    out
}

/// Decode one complete frame from a byte buffer, requiring exact
/// consumption (trailing garbage is a protocol error). This is the
/// reference decoder the corruption proptests exercise; the streaming
/// reader ([`read_frame`]) enforces the identical checks.
pub fn decode_frame(buf: &[u8]) -> Result<Vec<u8>> {
    if buf.len() < MAGIC.len() + 4 {
        return Err(VerError::Protocol("truncated frame header".into()));
    }
    if &buf[..MAGIC.len()] != MAGIC {
        return Err(VerError::Protocol("bad frame preamble".into()));
    }
    let len = u32::from_le_bytes(
        buf[MAGIC.len()..MAGIC.len() + 4]
            .try_into()
            .expect("4 bytes"),
    );
    if len > MAX_FRAME_LEN {
        return Err(VerError::Protocol(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN}"
        )));
    }
    let body = &buf[MAGIC.len() + 4..];
    let len = len as usize;
    if body.len() < len + 8 {
        return Err(VerError::Protocol("truncated frame body".into()));
    }
    if body.len() != len + 8 {
        return Err(VerError::Protocol("trailing bytes after frame".into()));
    }
    let payload = &body[..len];
    let stated = u64::from_le_bytes(body[len..].try_into().expect("8 bytes"));
    if frame_checksum(payload) != stated {
        return Err(VerError::Protocol("frame checksum mismatch".into()));
    }
    Ok(payload.to_vec())
}

/// Write one frame to a stream. Socket failures (including a tripped
/// write timeout) surface as [`VerError::Io`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let frame = encode_frame(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Outcome of reading one frame off a stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-verified payload.
    Frame(Vec<u8>),
    /// Clean end-of-stream at a frame boundary (the peer closed the
    /// connection between requests) — not an error.
    Eof,
}

/// Fill `buf` from the stream, distinguishing a clean EOF before the
/// first byte (`Ok(false)`) from one mid-buffer (`Protocol`).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(VerError::Protocol(
                    "connection closed mid-frame".to_string(),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(VerError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// Read one frame off a stream.
///
/// * clean close between frames → [`ReadOutcome::Eof`];
/// * a peer that died mid-frame, a bad preamble, an oversized length
///   prefix, or a checksum mismatch → [`VerError::Protocol`];
/// * socket errors and tripped read timeouts → [`VerError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<ReadOutcome> {
    let mut header = [0u8; 11]; // MAGIC + u32 len
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(ReadOutcome::Eof);
    }
    if &header[..MAGIC.len()] != MAGIC {
        return Err(VerError::Protocol("bad frame preamble".into()));
    }
    let len = u32::from_le_bytes(header[MAGIC.len()..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(VerError::Protocol(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN}"
        )));
    }
    let mut body = vec![0u8; len as usize + 8];
    if !read_exact_or_eof(r, &mut body)? {
        return Err(VerError::Protocol(
            "connection closed mid-frame".to_string(),
        ));
    }
    let payload_len = len as usize;
    let stated = u64::from_le_bytes(body[payload_len..].try_into().expect("8 bytes"));
    body.truncate(payload_len);
    if frame_checksum(&body) != stated {
        return Err(VerError::Protocol("frame checksum mismatch".into()));
    }
    Ok(ReadOutcome::Frame(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], &b"x"[..], &b"hello verd"[..], &[0u8; 1000][..]] {
            let frame = encode_frame(payload);
            assert_eq!(decode_frame(&frame).unwrap(), payload);
            let mut cursor = std::io::Cursor::new(frame);
            match read_frame(&mut cursor).unwrap() {
                ReadOutcome::Frame(p) => assert_eq!(p, payload),
                ReadOutcome::Eof => panic!("unexpected eof"),
            }
        }
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty).unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn mid_frame_eof_is_a_protocol_error() {
        let frame = encode_frame(b"payload");
        for keep in 1..frame.len() {
            let mut cursor = std::io::Cursor::new(frame[..keep].to_vec());
            match read_frame(&mut cursor) {
                Err(VerError::Protocol(_)) => {}
                other => panic!("prefix of {keep} bytes: expected Protocol, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_preamble_is_rejected() {
        let mut frame = encode_frame(b"payload");
        frame[0] ^= 0xFF;
        assert!(matches!(decode_frame(&frame), Err(VerError::Protocol(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut frame = encode_frame(b"p");
        frame[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&frame) {
            Err(VerError::Protocol(m)) => assert!(m.contains("exceeds cap"), "{m}"),
            other => panic!("expected Protocol, got {other:?}"),
        }
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(VerError::Protocol(_))
        ));
    }

    #[test]
    fn checksum_catches_payload_flips() {
        let frame = encode_frame(b"some payload bytes");
        let payload_start = MAGIC.len() + 4;
        for i in payload_start..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(decode_frame(&bad), Err(VerError::Protocol(_))),
                "flip at {i} was not caught"
            );
        }
    }

    #[test]
    fn checksum_closes_over_length() {
        assert_ne!(frame_checksum(b""), frame_checksum(&[0u8]));
        assert_ne!(frame_checksum(&[0u8; 8]), frame_checksum(&[0u8; 16]));
    }
}
