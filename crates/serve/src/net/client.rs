//! A blocking client for the `verd` protocol — the `DiscoveryView`
//! counterpart to the server: it can take a whole result in one frame or
//! fetch it incrementally over a server-side cursor, and either way
//! reassembles the exact full [`WireResult`].
//!
//! One `Client` wraps one connection and is intentionally *not* `Sync`:
//! the protocol is strictly request→response per connection, so
//! concurrent callers should each open their own (connections are cheap;
//! the server is thread-per-connection).

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ver_common::error::{Result, VerError};
use ver_qbe::ViewSpec;

use super::frame::{read_frame, write_frame, ReadOutcome};
use super::wire::{
    HealthReply, Page, QueryHead, Request, Response, StatsReply, WireResult, WireShardOutput,
};

/// Blocking `verd` client over one TCP connection.
///
/// **Poisoning.** After any I/O or protocol failure mid-exchange the
/// stream may sit anywhere inside a frame — nothing read after that
/// point can be trusted to be frame-aligned. The first such failure
/// poisons the client: every later call fails fast with a typed
/// [`VerError::Protocol`] telling the caller to reconnect, instead of
/// decoding garbage. Typed `Error` *frames* from the server are clean,
/// completed exchanges and do not poison.
pub struct Client {
    stream: TcpStream,
    poisoned: bool,
}

impl Client {
    /// Connect with 30-second read/write timeouts.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        Client::connect_with_timeouts(addr, Duration::from_secs(30), Duration::from_secs(30))
    }

    /// Connect with explicit socket timeouts (zero = no timeout).
    pub fn connect_with_timeouts(
        addr: SocketAddr,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        if !read_timeout.is_zero() {
            stream.set_read_timeout(Some(read_timeout))?;
        }
        if !write_timeout.is_zero() {
            stream.set_write_timeout(Some(write_timeout))?;
        }
        Ok(Client {
            stream,
            poisoned: false,
        })
    }

    /// `true` once an exchange has failed on this connection; every
    /// further call returns a typed error until the caller reconnects.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// One request→response exchange. A server-sent `Error` frame comes
    /// back as the typed [`VerError`] it encodes (and does *not* poison
    /// the connection — the exchange completed cleanly).
    fn call(&mut self, req: &Request) -> Result<Response> {
        if self.poisoned {
            return Err(VerError::Protocol(
                "connection poisoned by an earlier failed exchange; reconnect".into(),
            ));
        }
        let exchanged = (|| {
            write_frame(&mut self.stream, &req.encode())?;
            match read_frame(&mut self.stream)? {
                ReadOutcome::Eof => Err(VerError::Protocol(
                    "server closed the connection mid-exchange".into(),
                )),
                ReadOutcome::Frame(payload) => Response::decode(&payload),
            }
        })();
        match exchanged {
            Ok(Response::Error { code, message }) => Err(VerError::from_wire(code, message)),
            Ok(resp) => Ok(resp),
            Err(e) => {
                // The stream may be mid-frame; nothing after this point
                // is trustworthy on this connection.
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Run a query and return the response head as-is: first page of
    /// views plus the cursor (if the server paginated). Most callers
    /// want [`Client::query`] instead.
    pub fn query_head(
        &mut self,
        spec: &ViewSpec,
        page_size: u32,
        timeout_ms: u64,
    ) -> Result<QueryHead> {
        match self.call(&Request::Query {
            spec: spec.clone(),
            page_size,
            timeout_ms,
        })? {
            Response::Query(head) => Ok(head),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// Fetch one follow-up page from a cursor.
    pub fn fetch_page(&mut self, cursor: u64, page: u32) -> Result<Page> {
        match self.call(&Request::FetchPage { cursor, page })? {
            Response::Page(p) => Ok(p),
            other => Err(unexpected("Page", &other)),
        }
    }

    /// Run a query and reassemble the complete result, fetching every
    /// follow-up page if the server paginated. `page_size == 0` defers
    /// to the server's default; `timeout_ms == 0` means no deadline.
    pub fn query(
        &mut self,
        spec: &ViewSpec,
        page_size: u32,
        timeout_ms: u64,
    ) -> Result<WireResult> {
        let head = self.query_head(spec, page_size, timeout_ms)?;
        let total = head.total_views as usize;
        let mut result = WireResult {
            partial: head.partial,
            stats: head.stats,
            survivors_c2: head.survivors_c2,
            ranked: head.ranked,
            views: head.views,
        };
        if head.cursor != 0 {
            let mut page = 1u32;
            while result.views.len() < total {
                let p = self.fetch_page(head.cursor, page)?;
                let done = p.last;
                // A non-final page that adds no views makes no progress
                // toward `total` — looping again would replay it forever.
                // That's a server-side contract violation, not a state
                // this client can recover from.
                if p.views.is_empty() && !done {
                    self.poisoned = true;
                    return Err(VerError::Protocol(format!(
                        "zero-progress pagination: page {page} was empty but not final"
                    )));
                }
                result.views.extend(p.views);
                page += 1;
                if done {
                    break;
                }
            }
        }
        if result.views.len() != total {
            return Err(VerError::Protocol(format!(
                "paginated reassembly produced {} views, head promised {total}",
                result.views.len()
            )));
        }
        Ok(result)
    }

    /// Run **one scatter leg** of a sharded query on a shard server and
    /// return the raw leg output for a router-side merge. `budget_ms` is
    /// the remaining query budget (`0` = no deadline).
    pub fn shard_query(
        &mut self,
        spec: &ViewSpec,
        shard: u32,
        shard_count: u32,
        budget_ms: u64,
    ) -> Result<WireShardOutput> {
        match self.call(&Request::ShardQuery {
            spec: spec.clone(),
            shard,
            shard_count,
            budget_ms,
        })? {
            Response::ShardOutput(o) => Ok(o),
            other => Err(unexpected("ShardOutput", &other)),
        }
    }

    /// Engine + network counters.
    pub fn stats(&mut self) -> Result<StatsReply> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Liveness / deployment-shape probe.
    pub fn health(&mut self) -> Result<HealthReply> {
        match self.call(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(unexpected("Health", &other)),
        }
    }

    /// Ask the server to shut down; returns once the ack arrives.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> VerError {
    let got = match got {
        Response::Query(_) => "Query",
        Response::Page(_) => "Page",
        Response::Stats(_) => "Stats",
        Response::Health(_) => "Health",
        Response::ShutdownAck => "ShutdownAck",
        Response::ShardOutput(_) => "ShardOutput",
        Response::Error { .. } => "Error",
    };
    VerError::Protocol(format!("expected {wanted} response, got {got}"))
}
