//! Request/response codecs for the `verd` protocol.
//!
//! Everything here is hand-rolled little-endian binary on plain byte
//! buffers, following the `ver-index::persist` conventions: explicit
//! length prefixes, tagged unions, a bounds-checked [`Reader`] that turns
//! every malformed payload into a typed error instead of a panic, and no
//! reliance on untrusted counts for allocation sizing. Payloads produced
//! here travel inside the checksummed frames of [`super::frame`].
//!
//! The response side ships *materialized view data* — schemas and rows —
//! not just metadata, so a client can reassemble a byte-identical replica
//! of the in-process [`QueryResult`] rendering
//! (invariant 12: over-the-wire result ≡ in-process result).
//! `f64` scores travel as raw IEEE-754 bits to keep that equivalence
//! bit-exact.

use std::fmt::Write as _;
use std::sync::Arc;

use ver_common::error::{Result, VerError};
use ver_common::value::Value;
use ver_core::QueryResult;
use ver_qbe::{ExampleQuery, QueryColumn, ViewSpec};

use crate::ServeStats;

/// Wire-format version carried in `Health` replies; bump on any breaking
/// codec change (the frame preamble version covers framing only).
pub const PROTOCOL_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// bounds-checked reader + write helpers
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader over an untrusted payload.
///
/// Mirrors the `ver-index::persist` cursor, but types failures as
/// [`VerError::Protocol`]: a short read here means a peer sent garbage,
/// not that a file on disk rotted.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.buf.len() - self.pos < n {
            return Err(VerError::Protocol(format!(
                "payload truncated reading {what} at offset {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.need(n, what)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `u32` collection count, sanity-capped against the bytes that
    /// remain: every element occupies at least `min_elem_bytes`, so a
    /// count that could not possibly fit is rejected *before* any loop
    /// or allocation.
    pub fn count(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize> {
        let n = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(VerError::Protocol(format!(
                "count {n} for {what} exceeds remaining payload"
            )));
        }
        Ok(n)
    }

    pub fn string(&mut self, what: &str) -> Result<String> {
        let len = self.count(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| VerError::Protocol(format!("invalid utf-8 in {what}")))
    }

    pub fn opt_string(&mut self, what: &str) -> Result<Option<String>> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.string(what)?)),
            t => Err(VerError::Protocol(format!("bad option tag {t} for {what}"))),
        }
    }

    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(VerError::Protocol(format!("bad bool tag {t} for {what}"))),
        }
    }

    pub fn value(&mut self, what: &str) -> Result<Value> {
        match self.u8(what)? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.u64(what)? as i64)),
            2 => Ok(Value::Float(f64::from_bits(self.u64(what)?))),
            3 => Ok(Value::Text(Arc::from(self.string(what)?.as_str()))),
            t => Err(VerError::Protocol(format!("bad value tag {t} for {what}"))),
        }
    }

    /// Decoding must consume the payload exactly — trailing bytes mean
    /// the peer and we disagree about the format.
    pub fn finish(self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(VerError::Protocol(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_string(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_string(out, s);
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Text(t) => {
            out.push(3);
            put_string(out, t);
        }
    }
}

// ---------------------------------------------------------------------
// ViewSpec codec
// ---------------------------------------------------------------------

fn put_spec(out: &mut Vec<u8>, spec: &ViewSpec) {
    match spec {
        ViewSpec::Qbe(q) => {
            out.push(0);
            put_u32(out, q.columns.len() as u32);
            for col in &q.columns {
                put_opt_string(out, col.name_hint.as_deref());
                put_u32(out, col.examples.len() as u32);
                for v in &col.examples {
                    put_value(out, v);
                }
            }
        }
        ViewSpec::Keyword(terms) => {
            out.push(1);
            put_u32(out, terms.len() as u32);
            for t in terms {
                put_string(out, t);
            }
        }
        ViewSpec::Attribute(terms) => {
            out.push(2);
            put_u32(out, terms.len() as u32);
            for t in terms {
                put_string(out, t);
            }
        }
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<ViewSpec> {
    match r.u8("spec tag")? {
        0 => {
            let ncols = r.count(1, "qbe columns")?;
            let mut columns = Vec::new();
            for _ in 0..ncols {
                let name_hint = r.opt_string("qbe name hint")?;
                let nex = r.count(1, "qbe examples")?;
                let mut examples = Vec::new();
                for _ in 0..nex {
                    examples.push(r.value("qbe example")?);
                }
                let mut col = QueryColumn::of_values(examples);
                if let Some(h) = name_hint {
                    col = col.named(h);
                }
                columns.push(col);
            }
            // Re-validate: a hostile peer can encode a spec the public
            // constructor would reject (zero columns, all-empty column).
            let q = ExampleQuery::new(columns)
                .map_err(|e| VerError::Protocol(format!("invalid qbe spec on wire: {e}")))?;
            Ok(ViewSpec::Qbe(q))
        }
        1 => {
            let n = r.count(1, "keyword terms")?;
            let mut terms = Vec::new();
            for _ in 0..n {
                terms.push(r.string("keyword term")?);
            }
            Ok(ViewSpec::Keyword(terms))
        }
        2 => {
            let n = r.count(1, "attribute terms")?;
            let mut terms = Vec::new();
            for _ in 0..n {
                terms.push(r.string("attribute term")?);
            }
            Ok(ViewSpec::Attribute(terms))
        }
        t => Err(VerError::Protocol(format!("bad spec tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// requests
// ---------------------------------------------------------------------

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a discovery query. `page_size == 0` asks for the whole result
    /// inline; otherwise the head carries the first page and a cursor for
    /// [`Request::FetchPage`]. `timeout_ms == 0` means no deadline.
    Query {
        spec: ViewSpec,
        page_size: u32,
        timeout_ms: u64,
    },
    /// Fetch page `page` (0-based; page 0 is the one already delivered
    /// inline) from a server-side cursor opened by a paginated `Query`.
    FetchPage { cursor: u64, page: u32 },
    /// Snapshot engine + network counters.
    Stats,
    /// Liveness / deployment-shape probe.
    Health,
    /// Ask the server to stop accepting connections and exit its accept
    /// loop. Acked before the listener closes.
    Shutdown,
}

const REQ_QUERY: u8 = 1;
const REQ_FETCH_PAGE: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_HEALTH: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                spec,
                page_size,
                timeout_ms,
            } => {
                out.push(REQ_QUERY);
                put_spec(&mut out, spec);
                put_u32(&mut out, *page_size);
                put_u64(&mut out, *timeout_ms);
            }
            Request::FetchPage { cursor, page } => {
                out.push(REQ_FETCH_PAGE);
                put_u64(&mut out, *cursor);
                put_u32(&mut out, *page);
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Health => out.push(REQ_HEALTH),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8("request tag")? {
            REQ_QUERY => {
                let spec = read_spec(&mut r)?;
                let page_size = r.u32("page size")?;
                let timeout_ms = r.u64("timeout")?;
                Request::Query {
                    spec,
                    page_size,
                    timeout_ms,
                }
            }
            REQ_FETCH_PAGE => Request::FetchPage {
                cursor: r.u64("cursor")?,
                page: r.u32("page")?,
            },
            REQ_STATS => Request::Stats,
            REQ_HEALTH => Request::Health,
            REQ_SHUTDOWN => Request::Shutdown,
            t => return Err(VerError::Protocol(format!("bad request tag {t}"))),
        };
        r.finish("request")?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// response payload types
// ---------------------------------------------------------------------

/// One materialized view, shipped whole: identity, provenance summary,
/// schema, and row data. Carrying the data (not just metadata) is what
/// lets the client verify invariant 12 byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct WireView {
    /// `ViewId` ordinal.
    pub id: u32,
    /// `provenance.join_score` as IEEE-754 bits (bit-exact transport).
    pub score_bits: u64,
    /// Join hops (`provenance.hops()`).
    pub hops: u32,
    /// Source `TableId` ordinals, base table first.
    pub source_tables: Vec<u32>,
    /// Column headers; `None` models a missing header.
    pub columns: Vec<Option<String>>,
    /// Materialized, deduplicated rows (each `columns.len()` wide).
    pub rows: Vec<Vec<Value>>,
}

impl WireView {
    pub fn join_score(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }

    pub fn from_view(v: &ver_core::engine::View) -> WireView {
        WireView {
            id: v.id.0,
            score_bits: v.provenance.join_score.to_bits(),
            hops: v.provenance.hops() as u32,
            source_tables: v.provenance.source_tables.iter().map(|t| t.0).collect(),
            columns: v
                .table
                .schema
                .columns
                .iter()
                .map(|c| c.name.as_deref().map(str::to_string))
                .collect(),
            rows: v.table.iter_rows().collect(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.id);
        put_u64(out, self.score_bits);
        put_u32(out, self.hops);
        put_u32(out, self.source_tables.len() as u32);
        for t in &self.source_tables {
            put_u32(out, *t);
        }
        put_u32(out, self.columns.len() as u32);
        for c in &self.columns {
            put_opt_string(out, c.as_deref());
        }
        put_u32(out, self.rows.len() as u32);
        for row in &self.rows {
            for v in row {
                put_value(out, v);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireView> {
        let id = r.u32("view id")?;
        let score_bits = r.u64("view score")?;
        let hops = r.u32("view hops")?;
        let ntables = r.count(4, "view tables")?;
        let mut source_tables = Vec::new();
        for _ in 0..ntables {
            source_tables.push(r.u32("view table id")?);
        }
        let ncols = r.count(1, "view columns")?;
        let mut columns = Vec::new();
        for _ in 0..ncols {
            columns.push(r.opt_string("view column name")?);
        }
        let nrows = r.count(ncols.max(1), "view rows")?;
        let mut rows = Vec::new();
        for _ in 0..nrows {
            let mut row = Vec::new();
            for _ in 0..ncols {
                row.push(r.value("view cell")?);
            }
            rows.push(row);
        }
        Ok(WireView {
            id,
            score_bits,
            hops,
            source_tables,
            columns,
            rows,
        })
    }
}

/// `ver_search::SearchStats` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSearchStats {
    pub combinations: u64,
    pub skipped_by_cache: u64,
    pub joinable_groups: u64,
    pub join_graphs: u64,
    pub views: u64,
}

impl WireSearchStats {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.combinations);
        put_u64(out, self.skipped_by_cache);
        put_u64(out, self.joinable_groups);
        put_u64(out, self.join_graphs);
        put_u64(out, self.views);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireSearchStats> {
        Ok(WireSearchStats {
            combinations: r.u64("stats combinations")?,
            skipped_by_cache: r.u64("stats skipped")?,
            joinable_groups: r.u64("stats groups")?,
            join_graphs: r.u64("stats graphs")?,
            views: r.u64("stats views")?,
        })
    }
}

/// The head of a query response: result-level facts plus the first page
/// of views. `cursor == 0` means the result is complete as delivered;
/// otherwise the remaining pages are fetched with [`Request::FetchPage`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHead {
    pub partial: bool,
    pub stats: WireSearchStats,
    /// C2 survivor `ViewId` ordinals (distillation output).
    pub survivors_c2: Vec<u32>,
    /// Ranked `(ViewId ordinal, overlap score)` pairs.
    pub ranked: Vec<(u32, u64)>,
    /// Total views in the result across all pages.
    pub total_views: u32,
    /// Effective page size the server applied (0 = everything inline).
    pub page_size: u32,
    /// Cursor id for `FetchPage`; 0 when no pages remain.
    pub cursor: u64,
    /// Page 0 of the views, id order.
    pub views: Vec<WireView>,
}

/// One follow-up page from a server-side cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    pub cursor: u64,
    pub page: u32,
    /// `true` on the final page; the server frees the cursor after
    /// serving it.
    pub last: bool,
    pub views: Vec<WireView>,
}

/// Network-layer counters, snapshot over the server's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted (including ones later rejected by the cap).
    pub accepted: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Connections turned away by the `max_conns` cap.
    pub rejected_conns: u64,
    /// Connections dropped by peer death, timeouts, or handler panics.
    pub dropped_conns: u64,
    /// Malformed frames / payloads received.
    pub protocol_errors: u64,
    /// Request handlers that panicked (each cost its connection only).
    pub handler_panics: u64,
    /// Frames successfully read.
    pub frames_in: u64,
    /// Frames successfully written.
    pub frames_out: u64,
    /// Queries answered with a result.
    pub queries_ok: u64,
    /// Queries answered with an error status.
    pub queries_err: u64,
    /// Follow-up pages served from cursors.
    pub pages_served: u64,
    /// Cursors currently open.
    pub cursors_open: u64,
    /// Cursors evicted before being drained (FIFO cap).
    pub cursors_evicted: u64,
}

impl NetStats {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.accepted,
            self.active,
            self.rejected_conns,
            self.dropped_conns,
            self.protocol_errors,
            self.handler_panics,
            self.frames_in,
            self.frames_out,
            self.queries_ok,
            self.queries_err,
            self.pages_served,
            self.cursors_open,
            self.cursors_evicted,
        ] {
            put_u64(out, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<NetStats> {
        Ok(NetStats {
            accepted: r.u64("net accepted")?,
            active: r.u64("net active")?,
            rejected_conns: r.u64("net rejected")?,
            dropped_conns: r.u64("net dropped")?,
            protocol_errors: r.u64("net protocol errors")?,
            handler_panics: r.u64("net panics")?,
            frames_in: r.u64("net frames in")?,
            frames_out: r.u64("net frames out")?,
            queries_ok: r.u64("net queries ok")?,
            queries_err: r.u64("net queries err")?,
            pages_served: r.u64("net pages")?,
            cursors_open: r.u64("net cursors open")?,
            cursors_evicted: r.u64("net cursors evicted")?,
        })
    }
}

fn put_cache_stats(out: &mut Vec<u8>, c: &ver_common::cache::CacheStats) {
    put_u64(out, c.hits);
    put_u64(out, c.misses);
    out.push(c.disabled as u8);
}

fn read_cache_stats(r: &mut Reader<'_>, what: &str) -> Result<ver_common::cache::CacheStats> {
    Ok(ver_common::cache::CacheStats {
        hits: r.u64(what)?,
        misses: r.u64(what)?,
        disabled: r.bool(what)?,
    })
}

/// Engine + network counters together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsReply {
    pub serve: ServeStats,
    pub net: NetStats,
}

impl StatsReply {
    fn encode(&self, out: &mut Vec<u8>) {
        let s = &self.serve;
        put_u64(out, s.queries);
        put_cache_stats(out, &s.result_cache);
        put_cache_stats(out, &s.view_cache);
        put_cache_stats(out, &s.score_memo);
        put_u64(out, s.cached_views as u64);
        put_u64(out, s.sessions_opened);
        put_u64(out, s.sessions_active as u64);
        put_u64(out, s.interactions);
        put_u64(out, s.rejected);
        put_u64(out, s.partial_results);
        put_u64(out, s.in_flight as u64);
        self.net.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<StatsReply> {
        let serve = ServeStats {
            queries: r.u64("serve queries")?,
            result_cache: read_cache_stats(r, "result cache")?,
            view_cache: read_cache_stats(r, "view cache")?,
            score_memo: read_cache_stats(r, "score memo")?,
            cached_views: r.u64("cached views")? as usize,
            sessions_opened: r.u64("sessions opened")?,
            sessions_active: r.u64("sessions active")? as usize,
            interactions: r.u64("interactions")?,
            rejected: r.u64("rejected")?,
            partial_results: r.u64("partial results")?,
            in_flight: r.u64("in flight")? as usize,
        };
        let net = NetStats::decode(r)?;
        Ok(StatsReply { serve, net })
    }
}

/// Liveness + deployment shape (the `ViewDiscoveryService` health
/// endpoint, over binary frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReply {
    pub protocol_version: u32,
    /// Tables in the served catalog.
    pub tables: u64,
    /// Columns in the served catalog.
    pub columns: u64,
    /// Index shards behind this server (1 = single engine).
    pub shards: u32,
    pub uptime_ms: u64,
}

impl HealthReply {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.protocol_version);
        put_u64(out, self.tables);
        put_u64(out, self.columns);
        put_u32(out, self.shards);
        put_u64(out, self.uptime_ms);
    }

    fn decode(r: &mut Reader<'_>) -> Result<HealthReply> {
        Ok(HealthReply {
            protocol_version: r.u32("protocol version")?,
            tables: r.u64("health tables")?,
            columns: r.u64("health columns")?,
            shards: r.u32("health shards")?,
            uptime_ms: r.u64("health uptime")?,
        })
    }
}

// ---------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Query(QueryHead),
    Page(Page),
    Stats(StatsReply),
    Health(HealthReply),
    ShutdownAck,
    /// Typed failure: `code` is [`VerError::wire_code`], `message` the
    /// error's inner message. The client rebuilds the `VerError` with
    /// [`VerError::from_wire`].
    Error {
        code: u16,
        message: String,
    },
}

const RESP_QUERY: u8 = 1;
const RESP_PAGE: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_HEALTH: u8 = 4;
const RESP_SHUTDOWN_ACK: u8 = 5;
const RESP_ERROR: u8 = 6;

fn put_views(out: &mut Vec<u8>, views: &[WireView]) {
    put_u32(out, views.len() as u32);
    for v in views {
        v.encode(out);
    }
}

fn read_views(r: &mut Reader<'_>) -> Result<Vec<WireView>> {
    let n = r.count(20, "views")?;
    let mut views = Vec::new();
    for _ in 0..n {
        views.push(WireView::decode(r)?);
    }
    Ok(views)
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Query(head) => {
                out.push(RESP_QUERY);
                out.push(head.partial as u8);
                head.stats.encode(&mut out);
                put_u32(&mut out, head.survivors_c2.len() as u32);
                for v in &head.survivors_c2 {
                    put_u32(&mut out, *v);
                }
                put_u32(&mut out, head.ranked.len() as u32);
                for (v, s) in &head.ranked {
                    put_u32(&mut out, *v);
                    put_u64(&mut out, *s);
                }
                put_u32(&mut out, head.total_views);
                put_u32(&mut out, head.page_size);
                put_u64(&mut out, head.cursor);
                put_views(&mut out, &head.views);
            }
            Response::Page(p) => {
                out.push(RESP_PAGE);
                put_u64(&mut out, p.cursor);
                put_u32(&mut out, p.page);
                out.push(p.last as u8);
                put_views(&mut out, &p.views);
            }
            Response::Stats(s) => {
                out.push(RESP_STATS);
                s.encode(&mut out);
            }
            Response::Health(h) => {
                out.push(RESP_HEALTH);
                h.encode(&mut out);
            }
            Response::ShutdownAck => out.push(RESP_SHUTDOWN_ACK),
            Response::Error { code, message } => {
                out.push(RESP_ERROR);
                put_u16(&mut out, *code);
                put_string(&mut out, message);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8("response tag")? {
            RESP_QUERY => {
                let partial = r.bool("partial flag")?;
                let stats = WireSearchStats::decode(&mut r)?;
                let nsurv = r.count(4, "survivors")?;
                let mut survivors_c2 = Vec::new();
                for _ in 0..nsurv {
                    survivors_c2.push(r.u32("survivor id")?);
                }
                let nranked = r.count(12, "ranked")?;
                let mut ranked = Vec::new();
                for _ in 0..nranked {
                    let v = r.u32("ranked id")?;
                    let s = r.u64("ranked score")?;
                    ranked.push((v, s));
                }
                let total_views = r.u32("total views")?;
                let page_size = r.u32("page size")?;
                let cursor = r.u64("cursor")?;
                let views = read_views(&mut r)?;
                Response::Query(QueryHead {
                    partial,
                    stats,
                    survivors_c2,
                    ranked,
                    total_views,
                    page_size,
                    cursor,
                    views,
                })
            }
            RESP_PAGE => {
                let cursor = r.u64("cursor")?;
                let page = r.u32("page")?;
                let last = r.bool("last flag")?;
                let views = read_views(&mut r)?;
                Response::Page(Page {
                    cursor,
                    page,
                    last,
                    views,
                })
            }
            RESP_STATS => Response::Stats(StatsReply::decode(&mut r)?),
            RESP_HEALTH => Response::Health(HealthReply::decode(&mut r)?),
            RESP_SHUTDOWN_ACK => Response::ShutdownAck,
            RESP_ERROR => {
                let code = r.u16("error code")?;
                let message = r.string("error message")?;
                Response::Error { code, message }
            }
            t => return Err(VerError::Protocol(format!("bad response tag {t}"))),
        };
        r.finish("response")?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// assembled results
// ---------------------------------------------------------------------

/// A fully reassembled query result on the client side: the head's
/// result-level facts plus every page of views. `PartialEq` makes
/// "paginated fetch ≡ single-shot fetch" a one-line assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    pub partial: bool,
    pub stats: WireSearchStats,
    pub survivors_c2: Vec<u32>,
    pub ranked: Vec<(u32, u64)>,
    pub views: Vec<WireView>,
}

impl WireResult {
    /// Server-side conversion from the in-process result. The golden
    /// test pins `render` of this against `render` of a client-fetched
    /// copy *and* against the in-process snapshot file.
    pub fn from_query_result(result: &QueryResult) -> WireResult {
        let s = &result.search_stats;
        WireResult {
            partial: result.partial,
            stats: WireSearchStats {
                combinations: s.combinations as u64,
                skipped_by_cache: s.skipped_by_cache as u64,
                joinable_groups: s.joinable_groups as u64,
                join_graphs: s.join_graphs as u64,
                views: s.views as u64,
            },
            survivors_c2: result.distill.survivors_c2.iter().map(|v| v.0).collect(),
            ranked: result
                .ranked
                .iter()
                .map(|(v, s)| (v.0, *s as u64))
                .collect(),
            views: result.views.iter().map(WireView::from_view).collect(),
        }
    }

    /// Render in the exact format of `ver_bench::golden::render_query`,
    /// byte-for-byte — the network half of invariant 12.
    pub fn render(&self, out: &mut String, name: &str) {
        let s = &self.stats;
        let _ = writeln!(out, "# query {name}");
        let _ = writeln!(
            out,
            "stats combinations={} groups={} graphs={} views={}",
            s.combinations, s.joinable_groups, s.join_graphs, s.views
        );
        for v in &self.views {
            let tables: Vec<String> = v.source_tables.iter().map(|t| format!("T{t}")).collect();
            let _ = writeln!(
                out,
                "view V{} score={:.6} rows={} cols={} hops={} tables={}",
                v.id,
                v.join_score(),
                v.rows.len(),
                v.columns.len(),
                v.hops,
                tables.join(",")
            );
        }
        let survivors: Vec<String> = self.survivors_c2.iter().map(|v| format!("V{v}")).collect();
        let _ = writeln!(out, "survivors_c2 {}", survivors.join(" "));
        let ranked: Vec<String> = self
            .ranked
            .iter()
            .map(|(v, score)| format!("V{v}:{score}"))
            .collect();
        let _ = writeln!(out, "ranked {}", ranked.join(" "));
        let _ = writeln!(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_qbe::QueryColumn;

    fn sample_specs() -> Vec<ViewSpec> {
        vec![
            ViewSpec::Qbe(
                ExampleQuery::new(vec![
                    QueryColumn::of_strs(&["ATL", "JFK"]).named("code"),
                    QueryColumn::of_values(vec![Value::Int(42), Value::Null, Value::Float(2.5)]),
                ])
                .unwrap(),
            ),
            ViewSpec::Keyword(vec!["population".into(), "city".into()]),
            ViewSpec::Attribute(vec!["state".into()]),
        ]
    }

    fn sample_view() -> WireView {
        WireView {
            id: 7,
            score_bits: 1.25f64.to_bits(),
            hops: 1,
            source_tables: vec![0, 3],
            columns: vec![Some("a".into()), None],
            rows: vec![
                vec![Value::text("x"), Value::Int(-1)],
                vec![Value::Null, Value::Float(0.5)],
            ],
        }
    }

    #[test]
    fn requests_round_trip() {
        let mut reqs = vec![
            Request::FetchPage { cursor: 9, page: 2 },
            Request::Stats,
            Request::Health,
            Request::Shutdown,
        ];
        for spec in sample_specs() {
            reqs.push(Request::Query {
                spec,
                page_size: 16,
                timeout_ms: 250,
            });
        }
        for req in reqs {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Query(QueryHead {
                partial: true,
                stats: WireSearchStats {
                    combinations: 21,
                    skipped_by_cache: 2,
                    joinable_groups: 21,
                    join_graphs: 402,
                    views: 402,
                },
                survivors_c2: vec![0, 2, 5],
                ranked: vec![(2, 10), (0, 4)],
                total_views: 3,
                page_size: 2,
                cursor: 17,
                views: vec![sample_view()],
            }),
            Response::Page(Page {
                cursor: 17,
                page: 1,
                last: true,
                views: vec![sample_view(), sample_view()],
            }),
            Response::Stats(StatsReply {
                serve: ServeStats::default(),
                net: NetStats {
                    accepted: 4,
                    dropped_conns: 1,
                    ..NetStats::default()
                },
            }),
            Response::Health(HealthReply {
                protocol_version: PROTOCOL_VERSION,
                tables: 60,
                columns: 240,
                shards: 2,
                uptime_ms: 1234,
            }),
            Response::ShutdownAck,
            Response::Error {
                code: VerError::Overloaded("busy".into()).wire_code(),
                message: "busy".into(),
            },
        ];
        for resp in resps {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = Request::Stats.encode();
        enc.push(0);
        assert!(matches!(Request::decode(&enc), Err(VerError::Protocol(_))));
        let mut enc = Response::ShutdownAck.encode();
        enc.push(0);
        assert!(matches!(Response::decode(&enc), Err(VerError::Protocol(_))));
    }

    #[test]
    fn hostile_counts_fail_before_allocation() {
        // A Query head whose view count claims 4 billion entries must be
        // rejected by the count/remaining-bytes check, not OOM.
        let mut enc = Response::Page(Page {
            cursor: 1,
            page: 1,
            last: true,
            views: vec![],
        })
        .encode();
        let n = enc.len();
        enc[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Response::decode(&enc), Err(VerError::Protocol(_))));
    }

    #[test]
    fn invalid_qbe_spec_on_wire_is_a_protocol_error() {
        // Hand-encode a Qbe spec with zero columns — the public
        // constructor forbids it, so decode must too.
        let payload = vec![REQ_QUERY, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            Request::decode(&payload),
            Err(VerError::Protocol(_))
        ));
    }

    #[test]
    fn float_scores_travel_bit_exactly() {
        let v = WireView {
            score_bits: f64::NEG_INFINITY.to_bits(),
            ..sample_view()
        };
        let resp = Response::Page(Page {
            cursor: 0,
            page: 0,
            last: true,
            views: vec![v.clone()],
        });
        match Response::decode(&resp.encode()).unwrap() {
            Response::Page(p) => assert_eq!(p.views[0].score_bits, v.score_bits),
            other => panic!("expected Page, got {other:?}"),
        }
    }
}
