//! Request/response codecs for the `verd` protocol.
//!
//! Everything here is hand-rolled little-endian binary on plain byte
//! buffers, following the `ver-index::persist` conventions: explicit
//! length prefixes, tagged unions, a bounds-checked [`Reader`] that turns
//! every malformed payload into a typed error instead of a panic, and no
//! reliance on untrusted counts for allocation sizing. Payloads produced
//! here travel inside the checksummed frames of [`super::frame`].
//!
//! The response side ships *materialized view data* — schemas and rows —
//! not just metadata, so a client can reassemble a byte-identical replica
//! of the in-process [`QueryResult`] rendering
//! (invariant 12: over-the-wire result ≡ in-process result).
//! `f64` scores travel as raw IEEE-754 bits to keep that equivalence
//! bit-exact.

use std::fmt::Write as _;
use std::sync::Arc;

use ver_common::error::{Result, VerError};
use ver_common::value::Value;
use ver_core::QueryResult;
use ver_qbe::{ExampleQuery, QueryColumn, ViewSpec};

use crate::ServeStats;

/// Wire-format version carried in `Health` replies; bump on any breaking
/// codec change (the frame preamble version covers framing only).
///
/// v2: `ShardQuery` / `ShardOutput` messages for remote scatter legs, and
/// per-leg router stats appended to `Stats` replies.
pub const PROTOCOL_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// bounds-checked reader + write helpers
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader over an untrusted payload.
///
/// Mirrors the `ver-index::persist` cursor, but types failures as
/// [`VerError::Protocol`]: a short read here means a peer sent garbage,
/// not that a file on disk rotted.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.buf.len() - self.pos < n {
            return Err(VerError::Protocol(format!(
                "payload truncated reading {what} at offset {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.need(n, what)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `u32` collection count, sanity-capped against the bytes that
    /// remain: every element occupies at least `min_elem_bytes`, so a
    /// count that could not possibly fit is rejected *before* any loop
    /// or allocation.
    pub fn count(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize> {
        let n = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(VerError::Protocol(format!(
                "count {n} for {what} exceeds remaining payload"
            )));
        }
        Ok(n)
    }

    pub fn string(&mut self, what: &str) -> Result<String> {
        let len = self.count(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| VerError::Protocol(format!("invalid utf-8 in {what}")))
    }

    pub fn opt_string(&mut self, what: &str) -> Result<Option<String>> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.string(what)?)),
            t => Err(VerError::Protocol(format!("bad option tag {t} for {what}"))),
        }
    }

    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(VerError::Protocol(format!("bad bool tag {t} for {what}"))),
        }
    }

    pub fn value(&mut self, what: &str) -> Result<Value> {
        match self.u8(what)? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.u64(what)? as i64)),
            2 => Ok(Value::Float(f64::from_bits(self.u64(what)?))),
            3 => Ok(Value::Text(Arc::from(self.string(what)?.as_str()))),
            t => Err(VerError::Protocol(format!("bad value tag {t} for {what}"))),
        }
    }

    /// Decoding must consume the payload exactly — trailing bytes mean
    /// the peer and we disagree about the format.
    pub fn finish(self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(VerError::Protocol(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_string(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_string(out, s);
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Text(t) => {
            out.push(3);
            put_string(out, t);
        }
    }
}

// ---------------------------------------------------------------------
// ViewSpec codec
// ---------------------------------------------------------------------

fn put_spec(out: &mut Vec<u8>, spec: &ViewSpec) {
    match spec {
        ViewSpec::Qbe(q) => {
            out.push(0);
            put_u32(out, q.columns.len() as u32);
            for col in &q.columns {
                put_opt_string(out, col.name_hint.as_deref());
                put_u32(out, col.examples.len() as u32);
                for v in &col.examples {
                    put_value(out, v);
                }
            }
        }
        ViewSpec::Keyword(terms) => {
            out.push(1);
            put_u32(out, terms.len() as u32);
            for t in terms {
                put_string(out, t);
            }
        }
        ViewSpec::Attribute(terms) => {
            out.push(2);
            put_u32(out, terms.len() as u32);
            for t in terms {
                put_string(out, t);
            }
        }
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<ViewSpec> {
    match r.u8("spec tag")? {
        0 => {
            let ncols = r.count(1, "qbe columns")?;
            let mut columns = Vec::new();
            for _ in 0..ncols {
                let name_hint = r.opt_string("qbe name hint")?;
                let nex = r.count(1, "qbe examples")?;
                let mut examples = Vec::new();
                for _ in 0..nex {
                    examples.push(r.value("qbe example")?);
                }
                let mut col = QueryColumn::of_values(examples);
                if let Some(h) = name_hint {
                    col = col.named(h);
                }
                columns.push(col);
            }
            // Re-validate: a hostile peer can encode a spec the public
            // constructor would reject (zero columns, all-empty column).
            let q = ExampleQuery::new(columns)
                .map_err(|e| VerError::Protocol(format!("invalid qbe spec on wire: {e}")))?;
            Ok(ViewSpec::Qbe(q))
        }
        1 => {
            let n = r.count(1, "keyword terms")?;
            let mut terms = Vec::new();
            for _ in 0..n {
                terms.push(r.string("keyword term")?);
            }
            Ok(ViewSpec::Keyword(terms))
        }
        2 => {
            let n = r.count(1, "attribute terms")?;
            let mut terms = Vec::new();
            for _ in 0..n {
                terms.push(r.string("attribute term")?);
            }
            Ok(ViewSpec::Attribute(terms))
        }
        t => Err(VerError::Protocol(format!("bad spec tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// requests
// ---------------------------------------------------------------------

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a discovery query. `page_size == 0` asks for the whole result
    /// inline; otherwise the head carries the first page and a cursor for
    /// [`Request::FetchPage`]. `timeout_ms == 0` means no deadline.
    Query {
        spec: ViewSpec,
        page_size: u32,
        timeout_ms: u64,
    },
    /// Fetch page `page` (0-based; page 0 is the one already delivered
    /// inline) from a server-side cursor opened by a paginated `Query`.
    FetchPage { cursor: u64, page: u32 },
    /// Snapshot engine + network counters.
    Stats,
    /// Liveness / deployment-shape probe.
    Health,
    /// Ask the server to stop accepting connections and exit its accept
    /// loop. Acked before the listener closes.
    Shutdown,
    /// Run **one scatter leg** of a sharded query: this server's owned
    /// slice of the candidate space, returned raw (rank keys + full view
    /// data) for the router to merge. `budget_ms` is the budget
    /// *remaining* at the router when the request was sent (`0` = no
    /// deadline) — retries deduct elapsed time, so a retried leg races a
    /// shrinking clock.
    ShardQuery {
        spec: ViewSpec,
        shard: u32,
        shard_count: u32,
        budget_ms: u64,
    },
}

const REQ_QUERY: u8 = 1;
const REQ_FETCH_PAGE: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_HEALTH: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;
const REQ_SHARD_QUERY: u8 = 6;

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                spec,
                page_size,
                timeout_ms,
            } => {
                out.push(REQ_QUERY);
                put_spec(&mut out, spec);
                put_u32(&mut out, *page_size);
                put_u64(&mut out, *timeout_ms);
            }
            Request::FetchPage { cursor, page } => {
                out.push(REQ_FETCH_PAGE);
                put_u64(&mut out, *cursor);
                put_u32(&mut out, *page);
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Health => out.push(REQ_HEALTH),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::ShardQuery {
                spec,
                shard,
                shard_count,
                budget_ms,
            } => {
                out.push(REQ_SHARD_QUERY);
                put_spec(&mut out, spec);
                put_u32(&mut out, *shard);
                put_u32(&mut out, *shard_count);
                put_u64(&mut out, *budget_ms);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8("request tag")? {
            REQ_QUERY => {
                let spec = read_spec(&mut r)?;
                let page_size = r.u32("page size")?;
                let timeout_ms = r.u64("timeout")?;
                Request::Query {
                    spec,
                    page_size,
                    timeout_ms,
                }
            }
            REQ_FETCH_PAGE => Request::FetchPage {
                cursor: r.u64("cursor")?,
                page: r.u32("page")?,
            },
            REQ_STATS => Request::Stats,
            REQ_HEALTH => Request::Health,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_SHARD_QUERY => {
                let spec = read_spec(&mut r)?;
                let shard = r.u32("shard")?;
                let shard_count = r.u32("shard count")?;
                let budget_ms = r.u64("budget")?;
                if shard_count == 0 || shard >= shard_count {
                    return Err(VerError::Protocol(format!(
                        "shard {shard} out of range for {shard_count} shards"
                    )));
                }
                Request::ShardQuery {
                    spec,
                    shard,
                    shard_count,
                    budget_ms,
                }
            }
            t => return Err(VerError::Protocol(format!("bad request tag {t}"))),
        };
        r.finish("request")?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// response payload types
// ---------------------------------------------------------------------

/// One materialized view, shipped whole: identity, provenance summary,
/// schema, and row data. Carrying the data (not just metadata) is what
/// lets the client verify invariant 12 byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct WireView {
    /// `ViewId` ordinal.
    pub id: u32,
    /// `provenance.join_score` as IEEE-754 bits (bit-exact transport).
    pub score_bits: u64,
    /// Join hops (`provenance.hops()`).
    pub hops: u32,
    /// Source `TableId` ordinals, base table first.
    pub source_tables: Vec<u32>,
    /// Column headers; `None` models a missing header.
    pub columns: Vec<Option<String>>,
    /// Materialized, deduplicated rows (each `columns.len()` wide).
    pub rows: Vec<Vec<Value>>,
}

impl WireView {
    pub fn join_score(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }

    pub fn from_view(v: &ver_core::engine::View) -> WireView {
        WireView {
            id: v.id.0,
            score_bits: v.provenance.join_score.to_bits(),
            hops: v.provenance.hops() as u32,
            source_tables: v.provenance.source_tables.iter().map(|t| t.0).collect(),
            columns: v
                .table
                .schema
                .columns
                .iter()
                .map(|c| c.name.as_deref().map(str::to_string))
                .collect(),
            rows: v.table.iter_rows().collect(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.id);
        put_u64(out, self.score_bits);
        put_u32(out, self.hops);
        put_u32(out, self.source_tables.len() as u32);
        for t in &self.source_tables {
            put_u32(out, *t);
        }
        put_u32(out, self.columns.len() as u32);
        for c in &self.columns {
            put_opt_string(out, c.as_deref());
        }
        put_u32(out, self.rows.len() as u32);
        for row in &self.rows {
            for v in row {
                put_value(out, v);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireView> {
        let id = r.u32("view id")?;
        let score_bits = r.u64("view score")?;
        let hops = r.u32("view hops")?;
        let ntables = r.count(4, "view tables")?;
        let mut source_tables = Vec::new();
        for _ in 0..ntables {
            source_tables.push(r.u32("view table id")?);
        }
        let ncols = r.count(1, "view columns")?;
        let mut columns = Vec::new();
        for _ in 0..ncols {
            columns.push(r.opt_string("view column name")?);
        }
        let nrows = r.count(ncols.max(1), "view rows")?;
        let mut rows = Vec::new();
        for _ in 0..nrows {
            let mut row = Vec::new();
            for _ in 0..ncols {
                row.push(r.value("view cell")?);
            }
            rows.push(row);
        }
        Ok(WireView {
            id,
            score_bits,
            hops,
            source_tables,
            columns,
            rows,
        })
    }
}

/// `ver_search::SearchStats` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSearchStats {
    pub combinations: u64,
    pub skipped_by_cache: u64,
    pub joinable_groups: u64,
    pub join_graphs: u64,
    pub views: u64,
}

impl WireSearchStats {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.combinations);
        put_u64(out, self.skipped_by_cache);
        put_u64(out, self.joinable_groups);
        put_u64(out, self.join_graphs);
        put_u64(out, self.views);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireSearchStats> {
        Ok(WireSearchStats {
            combinations: r.u64("stats combinations")?,
            skipped_by_cache: r.u64("stats skipped")?,
            joinable_groups: r.u64("stats groups")?,
            join_graphs: r.u64("stats graphs")?,
            views: r.u64("stats views")?,
        })
    }
}

fn dtype_tag(d: ver_common::value::DataType) -> u8 {
    match d {
        ver_common::value::DataType::Int => 0,
        ver_common::value::DataType::Float => 1,
        ver_common::value::DataType::Text => 2,
        ver_common::value::DataType::Unknown => 3,
    }
}

fn dtype_from_tag(t: u8, what: &str) -> Result<ver_common::value::DataType> {
    Ok(match t {
        0 => ver_common::value::DataType::Int,
        1 => ver_common::value::DataType::Float,
        2 => ver_common::value::DataType::Text,
        3 => ver_common::value::DataType::Unknown,
        _ => return Err(VerError::Protocol(format!("bad dtype tag {t} for {what}"))),
    })
}

/// One view of a shard leg's output, shipped with its **rank keys**
/// (score, canonical edge form, projection) and *full-fidelity* view data
/// — schema metadata, provenance, rows — so the router can reconstruct
/// the exact `ShardView` the in-process scatter would have produced and
/// merge legs bit-identically (invariant 13).
#[derive(Debug, Clone, PartialEq)]
pub struct WireShardView {
    /// Rank key, primary: candidate join score as IEEE-754 bits.
    pub score_bits: u64,
    /// Rank key, secondary: canonical edge form of the join graph.
    pub canon: Vec<(u32, u32)>,
    /// Rank key, tie-break: projection columns as `(table, ordinal)`.
    pub projection: Vec<(u32, u16)>,
    /// `ViewId` ordinal (not final until the router's merge renumbers).
    pub view_id: u32,
    /// Materialized table: catalog id, name, per-column metadata, rows.
    pub table_id: u32,
    pub table_name: String,
    /// `(header, dtype tag)` per column; `None` models a missing header.
    pub columns: Vec<(Option<String>, u8)>,
    pub rows: Vec<Vec<Value>>,
    /// Provenance: join edges, source tables, projection, join score bits.
    pub join_edges: Vec<((u32, u16), (u32, u16))>,
    pub source_tables: Vec<u32>,
    pub prov_projection: Vec<(u32, u16)>,
    pub join_score_bits: u64,
}

impl WireShardView {
    pub fn from_shard_view(v: &ver_search::ShardView) -> WireShardView {
        let cref = |c: &ver_common::ids::ColumnRef| (c.table.0, c.ordinal);
        WireShardView {
            score_bits: v.score.to_bits(),
            canon: v.canon.clone(),
            projection: v.projection.iter().map(cref).collect(),
            view_id: v.view.id.0,
            table_id: v.view.table.id.0,
            table_name: v.view.table.name().to_string(),
            columns: v
                .view
                .table
                .schema
                .columns
                .iter()
                .map(|c| (c.name.as_deref().map(str::to_string), dtype_tag(c.dtype)))
                .collect(),
            rows: v.view.table.iter_rows().collect(),
            join_edges: v
                .view
                .provenance
                .join_edges
                .iter()
                .map(|(a, b)| (cref(a), cref(b)))
                .collect(),
            source_tables: v
                .view
                .provenance
                .source_tables
                .iter()
                .map(|t| t.0)
                .collect(),
            prov_projection: v.view.provenance.projection.iter().map(cref).collect(),
            join_score_bits: v.view.provenance.join_score.to_bits(),
        }
    }

    /// Rebuild the in-process `ShardView` this was encoded from. A
    /// payload that decoded cleanly can still describe an impossible
    /// table (hostile peer); those surface as [`VerError::Protocol`].
    pub fn into_shard_view(self) -> Result<ver_search::ShardView> {
        use ver_common::ids::{ColumnRef, TableId, ViewId};
        let cref = |(t, o): (u32, u16)| ColumnRef {
            table: TableId(t),
            ordinal: o,
        };
        let metas: Vec<ver_store::schema::ColumnMeta> = self
            .columns
            .iter()
            .map(|(name, tag)| {
                Ok(ver_store::schema::ColumnMeta {
                    name: name.as_deref().map(Arc::from),
                    dtype: dtype_from_tag(*tag, "shard view column")?,
                })
            })
            .collect::<Result<_>>()?;
        // Transpose the row-major wire form back into columns.
        let ncols = metas.len();
        let mut cols: Vec<Vec<Value>> = (0..ncols).map(|_| Vec::new()).collect();
        for row in self.rows {
            debug_assert_eq!(row.len(), ncols, "decoder reads exactly ncols per row");
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        let schema = ver_store::schema::TableSchema::new(self.table_name, metas);
        let columns = cols
            .into_iter()
            .map(ver_store::column::Column::from_values)
            .collect();
        let mut table = ver_store::table::Table::new(schema, columns)
            .map_err(|e| VerError::Protocol(format!("shard view table on wire: {e}")))?;
        table.id = TableId(self.table_id);
        let provenance = ver_core::engine::Provenance {
            join_edges: self
                .join_edges
                .into_iter()
                .map(|(a, b)| (cref(a), cref(b)))
                .collect(),
            source_tables: self.source_tables.into_iter().map(TableId).collect(),
            projection: self.prov_projection.into_iter().map(cref).collect(),
            join_score: f64::from_bits(self.join_score_bits),
        };
        Ok(ver_search::ShardView {
            score: f64::from_bits(self.score_bits),
            canon: self.canon,
            projection: self.projection.into_iter().map(cref).collect(),
            view: ver_core::engine::View::new(ViewId(self.view_id), table, provenance),
        })
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.score_bits);
        put_u32(out, self.canon.len() as u32);
        for (a, b) in &self.canon {
            put_u32(out, *a);
            put_u32(out, *b);
        }
        put_u32(out, self.projection.len() as u32);
        for (t, o) in &self.projection {
            put_u32(out, *t);
            put_u16(out, *o);
        }
        put_u32(out, self.view_id);
        put_u32(out, self.table_id);
        put_string(out, &self.table_name);
        put_u32(out, self.columns.len() as u32);
        for (name, tag) in &self.columns {
            put_opt_string(out, name.as_deref());
            out.push(*tag);
        }
        put_u32(out, self.rows.len() as u32);
        for row in &self.rows {
            for v in row {
                put_value(out, v);
            }
        }
        put_u32(out, self.join_edges.len() as u32);
        for ((at, ao), (bt, bo)) in &self.join_edges {
            put_u32(out, *at);
            put_u16(out, *ao);
            put_u32(out, *bt);
            put_u16(out, *bo);
        }
        put_u32(out, self.source_tables.len() as u32);
        for t in &self.source_tables {
            put_u32(out, *t);
        }
        put_u32(out, self.prov_projection.len() as u32);
        for (t, o) in &self.prov_projection {
            put_u32(out, *t);
            put_u16(out, *o);
        }
        put_u64(out, self.join_score_bits);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireShardView> {
        let score_bits = r.u64("shard view score")?;
        let ncanon = r.count(8, "shard view canon")?;
        let mut canon = Vec::new();
        for _ in 0..ncanon {
            canon.push((r.u32("canon edge")?, r.u32("canon edge")?));
        }
        let nproj = r.count(6, "shard view projection")?;
        let mut projection = Vec::new();
        for _ in 0..nproj {
            projection.push((r.u32("projection table")?, r.u16("projection ordinal")?));
        }
        let view_id = r.u32("shard view id")?;
        let table_id = r.u32("shard view table id")?;
        let table_name = r.string("shard view table name")?;
        let ncols = r.count(2, "shard view columns")?;
        let mut columns = Vec::new();
        for _ in 0..ncols {
            let name = r.opt_string("shard view column name")?;
            let tag = r.u8("shard view column dtype")?;
            dtype_from_tag(tag, "shard view column")?;
            columns.push((name, tag));
        }
        let nrows = r.count(ncols.max(1), "shard view rows")?;
        let mut rows = Vec::new();
        for _ in 0..nrows {
            let mut row = Vec::new();
            for _ in 0..ncols {
                row.push(r.value("shard view cell")?);
            }
            rows.push(row);
        }
        let nedges = r.count(12, "shard view join edges")?;
        let mut join_edges = Vec::new();
        for _ in 0..nedges {
            let a = (r.u32("edge table")?, r.u16("edge ordinal")?);
            let b = (r.u32("edge table")?, r.u16("edge ordinal")?);
            join_edges.push((a, b));
        }
        let ntables = r.count(4, "shard view source tables")?;
        let mut source_tables = Vec::new();
        for _ in 0..ntables {
            source_tables.push(r.u32("source table")?);
        }
        let npproj = r.count(6, "shard view prov projection")?;
        let mut prov_projection = Vec::new();
        for _ in 0..npproj {
            prov_projection.push((r.u32("prov table")?, r.u16("prov ordinal")?));
        }
        let join_score_bits = r.u64("shard view join score")?;
        Ok(WireShardView {
            score_bits,
            canon,
            projection,
            view_id,
            table_id,
            table_name,
            columns,
            rows,
            join_edges,
            source_tables,
            prov_projection,
            join_score_bits,
        })
    }
}

/// One whole shard leg's output on the wire: this shard's owned slice of
/// the global ranking. The leg's DAG counters and stage timers stay
/// server-side — they never influence merged *results* (only local
/// diagnostics), so shipping them would buy nothing but bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct WireShardOutput {
    pub shard: u32,
    pub shard_count: u32,
    /// `true` when the leg's slice was trimmed by the budget.
    pub partial: bool,
    pub stats: WireSearchStats,
    pub views: Vec<WireShardView>,
}

impl WireShardOutput {
    pub fn from_output(out: &ver_search::ShardSearchOutput) -> WireShardOutput {
        let s = &out.stats;
        WireShardOutput {
            shard: out.shard as u32,
            shard_count: out.shard_count as u32,
            partial: out.partial,
            stats: WireSearchStats {
                combinations: s.combinations as u64,
                skipped_by_cache: s.skipped_by_cache as u64,
                joinable_groups: s.joinable_groups as u64,
                join_graphs: s.join_graphs as u64,
                views: s.views as u64,
            },
            views: out
                .views
                .iter()
                .map(WireShardView::from_shard_view)
                .collect(),
        }
    }

    /// Rebuild the in-process leg output (timers and DAG counters reset —
    /// they are per-process diagnostics, not merge inputs).
    pub fn into_output(self) -> Result<ver_search::ShardSearchOutput> {
        let views: Vec<ver_search::ShardView> = self
            .views
            .into_iter()
            .map(WireShardView::into_shard_view)
            .collect::<Result<_>>()?;
        Ok(ver_search::ShardSearchOutput {
            shard: self.shard as usize,
            shard_count: self.shard_count as usize,
            views,
            stats: ver_search::SearchStats {
                combinations: self.stats.combinations as usize,
                skipped_by_cache: self.stats.skipped_by_cache as usize,
                joinable_groups: self.stats.joinable_groups as usize,
                join_graphs: self.stats.join_graphs as usize,
                views: self.stats.views as usize,
            },
            dag: ver_search::MaterializeStats::default(),
            timer: ver_common::timer::PhaseTimer::new(),
            partial: self.partial,
        })
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.shard);
        put_u32(out, self.shard_count);
        out.push(self.partial as u8);
        self.stats.encode(out);
        put_u32(out, self.views.len() as u32);
        for v in &self.views {
            v.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireShardOutput> {
        let shard = r.u32("shard")?;
        let shard_count = r.u32("shard count")?;
        let partial = r.bool("shard partial")?;
        let stats = WireSearchStats::decode(r)?;
        let nviews = r.count(40, "shard views")?;
        let mut views = Vec::new();
        for _ in 0..nviews {
            views.push(WireShardView::decode(r)?);
        }
        Ok(WireShardOutput {
            shard,
            shard_count,
            partial,
            stats,
            views,
        })
    }
}

/// The head of a query response: result-level facts plus the first page
/// of views. `cursor == 0` means the result is complete as delivered;
/// otherwise the remaining pages are fetched with [`Request::FetchPage`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHead {
    pub partial: bool,
    pub stats: WireSearchStats,
    /// C2 survivor `ViewId` ordinals (distillation output).
    pub survivors_c2: Vec<u32>,
    /// Ranked `(ViewId ordinal, overlap score)` pairs.
    pub ranked: Vec<(u32, u64)>,
    /// Total views in the result across all pages.
    pub total_views: u32,
    /// Effective page size the server applied (0 = everything inline).
    pub page_size: u32,
    /// Cursor id for `FetchPage`; 0 when no pages remain.
    pub cursor: u64,
    /// Page 0 of the views, id order.
    pub views: Vec<WireView>,
}

/// One follow-up page from a server-side cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    pub cursor: u64,
    pub page: u32,
    /// `true` on the final page; the server frees the cursor after
    /// serving it.
    pub last: bool,
    pub views: Vec<WireView>,
}

/// Network-layer counters, snapshot over the server's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted (including ones later rejected by the cap).
    pub accepted: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Connections turned away by the `max_conns` cap.
    pub rejected_conns: u64,
    /// Connections dropped by peer death, timeouts, or handler panics.
    pub dropped_conns: u64,
    /// Malformed frames / payloads received.
    pub protocol_errors: u64,
    /// Request handlers that panicked (each cost its connection only).
    pub handler_panics: u64,
    /// Frames successfully read.
    pub frames_in: u64,
    /// Frames successfully written.
    pub frames_out: u64,
    /// Queries answered with a result.
    pub queries_ok: u64,
    /// Queries answered with an error status.
    pub queries_err: u64,
    /// Follow-up pages served from cursors.
    pub pages_served: u64,
    /// Cursors currently open.
    pub cursors_open: u64,
    /// Cursors evicted before being drained (FIFO cap).
    pub cursors_evicted: u64,
}

impl NetStats {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.accepted,
            self.active,
            self.rejected_conns,
            self.dropped_conns,
            self.protocol_errors,
            self.handler_panics,
            self.frames_in,
            self.frames_out,
            self.queries_ok,
            self.queries_err,
            self.pages_served,
            self.cursors_open,
            self.cursors_evicted,
        ] {
            put_u64(out, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<NetStats> {
        Ok(NetStats {
            accepted: r.u64("net accepted")?,
            active: r.u64("net active")?,
            rejected_conns: r.u64("net rejected")?,
            dropped_conns: r.u64("net dropped")?,
            protocol_errors: r.u64("net protocol errors")?,
            handler_panics: r.u64("net panics")?,
            frames_in: r.u64("net frames in")?,
            frames_out: r.u64("net frames out")?,
            queries_ok: r.u64("net queries ok")?,
            queries_err: r.u64("net queries err")?,
            pages_served: r.u64("net pages")?,
            cursors_open: r.u64("net cursors open")?,
            cursors_evicted: r.u64("net cursors evicted")?,
        })
    }
}

fn put_cache_stats(out: &mut Vec<u8>, c: &ver_common::cache::CacheStats) {
    put_u64(out, c.hits);
    put_u64(out, c.misses);
    out.push(c.disabled as u8);
}

fn read_cache_stats(r: &mut Reader<'_>, what: &str) -> Result<ver_common::cache::CacheStats> {
    Ok(ver_common::cache::CacheStats {
        hits: r.u64(what)?,
        misses: r.u64(what)?,
        disabled: r.bool(what)?,
    })
}

/// Health of one remote scatter leg, as the router's `Stats` reply
/// reports it. Single and sharded backends reply with an empty leg list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireRouterLeg {
    /// The leg's shard-server address, as configured on the router.
    pub addr: String,
    /// Wire attempts made to this leg (first tries and retries alike).
    pub attempts: u64,
    /// Attempts beyond the first for some query (failure → backoff → retry).
    pub retries: u64,
    /// Attempts that failed (the breaker counts these consecutively).
    pub failures: u64,
    /// Queries that gave up on this leg and degraded the merge to partial.
    pub failovers: u64,
    /// Circuit-breaker state: 0 = closed, 1 = open, 2 = half-open.
    pub breaker: u8,
}

impl WireRouterLeg {
    fn encode(&self, out: &mut Vec<u8>) {
        put_string(out, &self.addr);
        put_u64(out, self.attempts);
        put_u64(out, self.retries);
        put_u64(out, self.failures);
        put_u64(out, self.failovers);
        out.push(self.breaker);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireRouterLeg> {
        Ok(WireRouterLeg {
            addr: r.string("router leg addr")?,
            attempts: r.u64("router leg attempts")?,
            retries: r.u64("router leg retries")?,
            failures: r.u64("router leg failures")?,
            failovers: r.u64("router leg failovers")?,
            breaker: {
                let b = r.u8("router leg breaker")?;
                if b > 2 {
                    return Err(VerError::Protocol(format!("bad breaker state {b}")));
                }
                b
            },
        })
    }
}

/// Engine + network counters together, plus per-leg router health when
/// the server is a router over remote shard legs.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    pub serve: ServeStats,
    pub net: NetStats,
    pub router: Vec<WireRouterLeg>,
}

impl StatsReply {
    fn encode(&self, out: &mut Vec<u8>) {
        let s = &self.serve;
        put_u64(out, s.queries);
        put_cache_stats(out, &s.result_cache);
        put_cache_stats(out, &s.view_cache);
        put_cache_stats(out, &s.score_memo);
        put_u64(out, s.cached_views as u64);
        put_u64(out, s.sessions_opened);
        put_u64(out, s.sessions_active as u64);
        put_u64(out, s.interactions);
        put_u64(out, s.rejected);
        put_u64(out, s.partial_results);
        put_u64(out, s.in_flight as u64);
        self.net.encode(out);
        put_u32(out, self.router.len() as u32);
        for leg in &self.router {
            leg.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<StatsReply> {
        let serve = ServeStats {
            queries: r.u64("serve queries")?,
            result_cache: read_cache_stats(r, "result cache")?,
            view_cache: read_cache_stats(r, "view cache")?,
            score_memo: read_cache_stats(r, "score memo")?,
            cached_views: r.u64("cached views")? as usize,
            sessions_opened: r.u64("sessions opened")?,
            sessions_active: r.u64("sessions active")? as usize,
            interactions: r.u64("interactions")?,
            rejected: r.u64("rejected")?,
            partial_results: r.u64("partial results")?,
            in_flight: r.u64("in flight")? as usize,
        };
        let net = NetStats::decode(r)?;
        let nlegs = r.count(37, "router legs")?;
        let mut router = Vec::new();
        for _ in 0..nlegs {
            router.push(WireRouterLeg::decode(r)?);
        }
        Ok(StatsReply { serve, net, router })
    }
}

/// Liveness + deployment shape (the `ViewDiscoveryService` health
/// endpoint, over binary frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReply {
    pub protocol_version: u32,
    /// Tables in the served catalog.
    pub tables: u64,
    /// Columns in the served catalog.
    pub columns: u64,
    /// Index shards behind this server (1 = single engine).
    pub shards: u32,
    pub uptime_ms: u64,
}

impl HealthReply {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.protocol_version);
        put_u64(out, self.tables);
        put_u64(out, self.columns);
        put_u32(out, self.shards);
        put_u64(out, self.uptime_ms);
    }

    fn decode(r: &mut Reader<'_>) -> Result<HealthReply> {
        Ok(HealthReply {
            protocol_version: r.u32("protocol version")?,
            tables: r.u64("health tables")?,
            columns: r.u64("health columns")?,
            shards: r.u32("health shards")?,
            uptime_ms: r.u64("health uptime")?,
        })
    }
}

// ---------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Query(QueryHead),
    Page(Page),
    Stats(StatsReply),
    Health(HealthReply),
    ShutdownAck,
    /// One shard leg's raw output (reply to [`Request::ShardQuery`]).
    ShardOutput(WireShardOutput),
    /// Typed failure: `code` is [`VerError::wire_code`], `message` the
    /// error's inner message. The client rebuilds the `VerError` with
    /// [`VerError::from_wire`].
    Error {
        code: u16,
        message: String,
    },
}

const RESP_QUERY: u8 = 1;
const RESP_PAGE: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_HEALTH: u8 = 4;
const RESP_SHUTDOWN_ACK: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_SHARD_OUTPUT: u8 = 7;

fn put_views(out: &mut Vec<u8>, views: &[WireView]) {
    put_u32(out, views.len() as u32);
    for v in views {
        v.encode(out);
    }
}

fn read_views(r: &mut Reader<'_>) -> Result<Vec<WireView>> {
    let n = r.count(20, "views")?;
    let mut views = Vec::new();
    for _ in 0..n {
        views.push(WireView::decode(r)?);
    }
    Ok(views)
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Query(head) => {
                out.push(RESP_QUERY);
                out.push(head.partial as u8);
                head.stats.encode(&mut out);
                put_u32(&mut out, head.survivors_c2.len() as u32);
                for v in &head.survivors_c2 {
                    put_u32(&mut out, *v);
                }
                put_u32(&mut out, head.ranked.len() as u32);
                for (v, s) in &head.ranked {
                    put_u32(&mut out, *v);
                    put_u64(&mut out, *s);
                }
                put_u32(&mut out, head.total_views);
                put_u32(&mut out, head.page_size);
                put_u64(&mut out, head.cursor);
                put_views(&mut out, &head.views);
            }
            Response::Page(p) => {
                out.push(RESP_PAGE);
                put_u64(&mut out, p.cursor);
                put_u32(&mut out, p.page);
                out.push(p.last as u8);
                put_views(&mut out, &p.views);
            }
            Response::Stats(s) => {
                out.push(RESP_STATS);
                s.encode(&mut out);
            }
            Response::Health(h) => {
                out.push(RESP_HEALTH);
                h.encode(&mut out);
            }
            Response::ShutdownAck => out.push(RESP_SHUTDOWN_ACK),
            Response::ShardOutput(o) => {
                out.push(RESP_SHARD_OUTPUT);
                o.encode(&mut out);
            }
            Response::Error { code, message } => {
                out.push(RESP_ERROR);
                put_u16(&mut out, *code);
                put_string(&mut out, message);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8("response tag")? {
            RESP_QUERY => {
                let partial = r.bool("partial flag")?;
                let stats = WireSearchStats::decode(&mut r)?;
                let nsurv = r.count(4, "survivors")?;
                let mut survivors_c2 = Vec::new();
                for _ in 0..nsurv {
                    survivors_c2.push(r.u32("survivor id")?);
                }
                let nranked = r.count(12, "ranked")?;
                let mut ranked = Vec::new();
                for _ in 0..nranked {
                    let v = r.u32("ranked id")?;
                    let s = r.u64("ranked score")?;
                    ranked.push((v, s));
                }
                let total_views = r.u32("total views")?;
                let page_size = r.u32("page size")?;
                let cursor = r.u64("cursor")?;
                let views = read_views(&mut r)?;
                Response::Query(QueryHead {
                    partial,
                    stats,
                    survivors_c2,
                    ranked,
                    total_views,
                    page_size,
                    cursor,
                    views,
                })
            }
            RESP_PAGE => {
                let cursor = r.u64("cursor")?;
                let page = r.u32("page")?;
                let last = r.bool("last flag")?;
                let views = read_views(&mut r)?;
                Response::Page(Page {
                    cursor,
                    page,
                    last,
                    views,
                })
            }
            RESP_STATS => Response::Stats(StatsReply::decode(&mut r)?),
            RESP_HEALTH => Response::Health(HealthReply::decode(&mut r)?),
            RESP_SHUTDOWN_ACK => Response::ShutdownAck,
            RESP_SHARD_OUTPUT => Response::ShardOutput(WireShardOutput::decode(&mut r)?),
            RESP_ERROR => {
                let code = r.u16("error code")?;
                let message = r.string("error message")?;
                Response::Error { code, message }
            }
            t => return Err(VerError::Protocol(format!("bad response tag {t}"))),
        };
        r.finish("response")?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// assembled results
// ---------------------------------------------------------------------

/// A fully reassembled query result on the client side: the head's
/// result-level facts plus every page of views. `PartialEq` makes
/// "paginated fetch ≡ single-shot fetch" a one-line assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    pub partial: bool,
    pub stats: WireSearchStats,
    pub survivors_c2: Vec<u32>,
    pub ranked: Vec<(u32, u64)>,
    pub views: Vec<WireView>,
}

impl WireResult {
    /// Server-side conversion from the in-process result. The golden
    /// test pins `render` of this against `render` of a client-fetched
    /// copy *and* against the in-process snapshot file.
    pub fn from_query_result(result: &QueryResult) -> WireResult {
        let s = &result.search_stats;
        WireResult {
            partial: result.partial,
            stats: WireSearchStats {
                combinations: s.combinations as u64,
                skipped_by_cache: s.skipped_by_cache as u64,
                joinable_groups: s.joinable_groups as u64,
                join_graphs: s.join_graphs as u64,
                views: s.views as u64,
            },
            survivors_c2: result.distill.survivors_c2.iter().map(|v| v.0).collect(),
            ranked: result
                .ranked
                .iter()
                .map(|(v, s)| (v.0, *s as u64))
                .collect(),
            views: result.views.iter().map(WireView::from_view).collect(),
        }
    }

    /// Render in the exact format of `ver_bench::golden::render_query`,
    /// byte-for-byte — the network half of invariant 12.
    pub fn render(&self, out: &mut String, name: &str) {
        let s = &self.stats;
        let _ = writeln!(out, "# query {name}");
        let _ = writeln!(
            out,
            "stats combinations={} groups={} graphs={} views={}",
            s.combinations, s.joinable_groups, s.join_graphs, s.views
        );
        for v in &self.views {
            let tables: Vec<String> = v.source_tables.iter().map(|t| format!("T{t}")).collect();
            let _ = writeln!(
                out,
                "view V{} score={:.6} rows={} cols={} hops={} tables={}",
                v.id,
                v.join_score(),
                v.rows.len(),
                v.columns.len(),
                v.hops,
                tables.join(",")
            );
        }
        let survivors: Vec<String> = self.survivors_c2.iter().map(|v| format!("V{v}")).collect();
        let _ = writeln!(out, "survivors_c2 {}", survivors.join(" "));
        let ranked: Vec<String> = self
            .ranked
            .iter()
            .map(|(v, score)| format!("V{v}:{score}"))
            .collect();
        let _ = writeln!(out, "ranked {}", ranked.join(" "));
        let _ = writeln!(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_qbe::QueryColumn;

    fn sample_specs() -> Vec<ViewSpec> {
        vec![
            ViewSpec::Qbe(
                ExampleQuery::new(vec![
                    QueryColumn::of_strs(&["ATL", "JFK"]).named("code"),
                    QueryColumn::of_values(vec![Value::Int(42), Value::Null, Value::Float(2.5)]),
                ])
                .unwrap(),
            ),
            ViewSpec::Keyword(vec!["population".into(), "city".into()]),
            ViewSpec::Attribute(vec!["state".into()]),
        ]
    }

    fn sample_view() -> WireView {
        WireView {
            id: 7,
            score_bits: 1.25f64.to_bits(),
            hops: 1,
            source_tables: vec![0, 3],
            columns: vec![Some("a".into()), None],
            rows: vec![
                vec![Value::text("x"), Value::Int(-1)],
                vec![Value::Null, Value::Float(0.5)],
            ],
        }
    }

    fn sample_shard_view() -> WireShardView {
        WireShardView {
            score_bits: 0.75f64.to_bits(),
            canon: vec![(1, 9), (2, 4)],
            projection: vec![(0, 1), (3, 0)],
            view_id: 5,
            table_id: 3,
            table_name: "joined".into(),
            columns: vec![(Some("a".into()), 2), (None, 0)],
            rows: vec![
                vec![Value::text("x"), Value::Int(-1)],
                vec![Value::Null, Value::Int(7)],
            ],
            join_edges: vec![((0, 1), (3, 0))],
            source_tables: vec![0, 3],
            prov_projection: vec![(0, 0), (3, 1)],
            join_score_bits: 0.75f64.to_bits(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let mut reqs = vec![
            Request::FetchPage { cursor: 9, page: 2 },
            Request::Stats,
            Request::Health,
            Request::Shutdown,
        ];
        for spec in sample_specs() {
            reqs.push(Request::Query {
                spec: spec.clone(),
                page_size: 16,
                timeout_ms: 250,
            });
            reqs.push(Request::ShardQuery {
                spec,
                shard: 1,
                shard_count: 4,
                budget_ms: 1500,
            });
        }
        for req in reqs {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req);
        }
    }

    #[test]
    fn shard_query_with_out_of_range_shard_is_a_protocol_error() {
        for (shard, shard_count) in [(2u32, 2u32), (0, 0), (7, 3)] {
            let enc = Request::ShardQuery {
                spec: sample_specs().remove(1),
                shard,
                shard_count,
                budget_ms: 0,
            }
            .encode();
            assert!(
                matches!(Request::decode(&enc), Err(VerError::Protocol(_))),
                "shard {shard}/{shard_count} must be rejected"
            );
        }
    }

    #[test]
    fn shard_view_reconstruction_is_lossless() {
        // wire → in-process → wire must be the identity: the router's
        // merge works on reconstructed `ShardView`s, so any loss here
        // would silently break invariant 13.
        let wire = sample_shard_view();
        let sv = wire.clone().into_shard_view().unwrap();
        assert_eq!(sv.view.table.row_count(), 2);
        assert_eq!(sv.view.table.schema.columns[0].name.as_deref(), Some("a"));
        assert_eq!(sv.view.provenance.join_edges.len(), 1);
        let back = WireShardView::from_shard_view(&sv);
        assert_eq!(back, wire);
    }

    #[test]
    fn shard_view_with_bad_dtype_tag_is_a_protocol_error() {
        let mut wire = sample_shard_view();
        wire.columns[0].1 = 9;
        let resp = Response::ShardOutput(WireShardOutput {
            shard: 0,
            shard_count: 1,
            partial: false,
            stats: WireSearchStats::default(),
            views: vec![wire],
        });
        assert!(matches!(
            Response::decode(&resp.encode()),
            Err(VerError::Protocol(_))
        ));
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Query(QueryHead {
                partial: true,
                stats: WireSearchStats {
                    combinations: 21,
                    skipped_by_cache: 2,
                    joinable_groups: 21,
                    join_graphs: 402,
                    views: 402,
                },
                survivors_c2: vec![0, 2, 5],
                ranked: vec![(2, 10), (0, 4)],
                total_views: 3,
                page_size: 2,
                cursor: 17,
                views: vec![sample_view()],
            }),
            Response::Page(Page {
                cursor: 17,
                page: 1,
                last: true,
                views: vec![sample_view(), sample_view()],
            }),
            Response::Stats(StatsReply {
                serve: ServeStats::default(),
                net: NetStats {
                    accepted: 4,
                    dropped_conns: 1,
                    ..NetStats::default()
                },
                router: vec![
                    WireRouterLeg {
                        addr: "127.0.0.1:7201".into(),
                        attempts: 12,
                        retries: 3,
                        failures: 3,
                        failovers: 1,
                        breaker: 1,
                    },
                    WireRouterLeg::default(),
                ],
            }),
            Response::ShardOutput(WireShardOutput {
                shard: 1,
                shard_count: 2,
                partial: true,
                stats: WireSearchStats {
                    combinations: 5,
                    skipped_by_cache: 0,
                    joinable_groups: 5,
                    join_graphs: 9,
                    views: 1,
                },
                views: vec![sample_shard_view()],
            }),
            Response::Health(HealthReply {
                protocol_version: PROTOCOL_VERSION,
                tables: 60,
                columns: 240,
                shards: 2,
                uptime_ms: 1234,
            }),
            Response::ShutdownAck,
            Response::Error {
                code: VerError::Overloaded("busy".into()).wire_code(),
                message: "busy".into(),
            },
        ];
        for resp in resps {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = Request::Stats.encode();
        enc.push(0);
        assert!(matches!(Request::decode(&enc), Err(VerError::Protocol(_))));
        let mut enc = Response::ShutdownAck.encode();
        enc.push(0);
        assert!(matches!(Response::decode(&enc), Err(VerError::Protocol(_))));
    }

    #[test]
    fn hostile_counts_fail_before_allocation() {
        // A Query head whose view count claims 4 billion entries must be
        // rejected by the count/remaining-bytes check, not OOM.
        let mut enc = Response::Page(Page {
            cursor: 1,
            page: 1,
            last: true,
            views: vec![],
        })
        .encode();
        let n = enc.len();
        enc[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Response::decode(&enc), Err(VerError::Protocol(_))));
    }

    #[test]
    fn invalid_qbe_spec_on_wire_is_a_protocol_error() {
        // Hand-encode a Qbe spec with zero columns — the public
        // constructor forbids it, so decode must too.
        let payload = vec![REQ_QUERY, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            Request::decode(&payload),
            Err(VerError::Protocol(_))
        ));
    }

    #[test]
    fn float_scores_travel_bit_exactly() {
        let v = WireView {
            score_bits: f64::NEG_INFINITY.to_bits(),
            ..sample_view()
        };
        let resp = Response::Page(Page {
            cursor: 0,
            page: 0,
            last: true,
            views: vec![v.clone()],
        });
        match Response::decode(&resp.encode()).unwrap() {
            Response::Page(p) => assert_eq!(p.views[0].score_bits, v.score_bits),
            other => panic!("expected Page, got {other:?}"),
        }
    }
}
