//! A resilient wrapper around [`Client`] for remote scatter legs.
//!
//! A remote shard leg can fail in ways the in-process scatter never sees:
//! the peer process dies mid-frame, the network stalls, a connect is
//! refused while the leg restarts. This module gives the router one
//! envelope for all of it:
//!
//! * **per-attempt timeouts** — every attempt gets a fresh socket
//!   deadline, so a slow-loris leg costs bounded wall-clock;
//! * **reconnect on error** — a [`Client`] that failed mid-exchange is
//!   poisoned (the stream may be mid-frame) and is dropped, never reused;
//! * **jittered exponential backoff with a retry budget** — attempt `n`
//!   retries after a deterministic jittered delay (the vendored RNG story,
//!   invariant 7: jitter comes from [`fx_hash_u64`], so the proptests can
//!   pin its bounds exactly);
//! * **a per-leg circuit breaker** — after [`RetryPolicy::breaker_threshold`]
//!   *consecutive* failures the breaker opens and the leg fails fast
//!   without touching the network; after [`RetryPolicy::cooldown`] one
//!   caller is admitted as a half-open probe (a cheap `Health` exchange)
//!   that either closes the breaker or re-opens it.
//!
//! Knobs (warn-once-and-fall-back like every other `VER_*` knob):
//! `VER_RETRIES` (extra attempts per call, default 2), `VER_BACKOFF_MS`
//! (base backoff, default 50), `VER_BREAKER` (consecutive failures that
//! trip the breaker, default 4).
//!
//! What the envelope does **not** decide: whether a failed leg degrades
//! the query to a partial result or fails it — that is the router's merge
//! contract (`ShardBackend::degradable`, ARCHITECTURE.md "Failure model").

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ver_common::budget::QueryBudget;
use ver_common::env::EnvKnob;
use ver_common::error::{Result, VerError};
use ver_common::fault;
use ver_common::fxhash::fx_hash_u64;
use ver_qbe::ViewSpec;

use super::client::Client;
use super::wire::{HealthReply, WireShardOutput};

/// Extra attempts per call when `VER_RETRIES` is unset.
pub const DEFAULT_RETRIES: u32 = 2;
/// Base backoff when `VER_BACKOFF_MS` is unset.
pub const DEFAULT_BACKOFF_MS: u64 = 50;
/// Breaker threshold when `VER_BREAKER` is unset.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 4;

/// `VER_RETRIES`: extra attempts after the first, per call. `0` disables
/// retries entirely (one attempt per call).
pub fn default_retries() -> u32 {
    static KNOB: EnvKnob<u32> = EnvKnob::new("VER_RETRIES", "want a non-negative retry count");
    KNOB.get(|v| v.trim().parse().ok(), DEFAULT_RETRIES)
}

/// `VER_BACKOFF_MS`: base backoff before the first retry; doubles per
/// retry up to [`RetryPolicy::backoff_cap`]. `0` retries immediately.
pub fn default_backoff() -> Duration {
    static KNOB: EnvKnob<u64> = EnvKnob::new("VER_BACKOFF_MS", "want milliseconds");
    Duration::from_millis(KNOB.get(|v| v.trim().parse().ok(), DEFAULT_BACKOFF_MS))
}

/// `VER_BREAKER`: consecutive failures that open the circuit breaker.
/// Must be at least 1 — a breaker that opens on zero failures would never
/// admit anything.
pub fn default_breaker_threshold() -> u32 {
    static KNOB: EnvKnob<u32> = EnvKnob::new("VER_BREAKER", "want a positive failure count");
    KNOB.get(
        |v| v.trim().parse().ok().filter(|&k| k >= 1),
        DEFAULT_BREAKER_THRESHOLD,
    )
}

/// Retry/backoff/breaker tunables for one remote leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first, per call (`2` ⇒ at most 3 attempts).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Consecutive failures that open the circuit breaker (≥ 1).
    pub breaker_threshold: u32,
    /// Open-state dwell before the breaker half-opens for one probe.
    pub cooldown: Duration,
    /// Socket read/write/connect timeout applied to each attempt.
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    /// Resolves `VER_RETRIES` / `VER_BACKOFF_MS` / `VER_BREAKER`; the
    /// un-knobbed fields get fixed defaults suited to a LAN deployment.
    fn default() -> Self {
        RetryPolicy {
            retries: default_retries(),
            backoff: default_backoff(),
            backoff_cap: Duration::from_secs(2),
            breaker_threshold: default_breaker_threshold(),
            cooldown: Duration::from_millis(500),
            attempt_timeout: Duration::from_secs(10),
        }
    }
}

/// Deterministic jittered exponential backoff.
///
/// Retry `attempt` (0-based) sleeps within `[exp/2, exp]` where
/// `exp = backoff · 2^attempt`, capped at `backoff_cap`. The jitter is a
/// pure function of `(seed, attempt)` via [`fx_hash_u64`] — no entropy
/// source (the vendored RNG is a stub, and determinism keeps the bounds
/// testable exactly).
pub fn backoff_delay(policy: &RetryPolicy, attempt: u32, seed: u64) -> Duration {
    let base = policy.backoff.as_millis().min(u128::from(u64::MAX)) as u64;
    let cap = policy.backoff_cap.as_millis().min(u128::from(u64::MAX)) as u64;
    let exp = base.saturating_mul(1u64 << attempt.min(32)).min(cap);
    if exp == 0 {
        return Duration::ZERO;
    }
    let jitter = fx_hash_u64(&(seed, attempt)) % (exp / 2 + 1);
    Duration::from_millis(exp - jitter)
}

/// Circuit-breaker state, as reported in per-leg router stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counting consecutive failures.
    Closed,
    /// Failing fast; no network traffic until the cooldown elapses.
    Open,
    /// One probe is out deciding whether to close or re-open.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire tag for `RouterStats` (`0` closed, `1` open, `2`
    /// half-open) — part of the protocol, do not renumber.
    pub fn wire_tag(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// What the breaker lets one caller do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: proceed normally.
    Allow,
    /// Half-open: *this* caller is the single probe; verify the leg with
    /// a cheap exchange before trusting it with real work.
    Probe,
    /// Open (or another probe is already out): fail fast.
    Reject,
}

/// A per-leg circuit breaker. Time is passed in (every transition takes a
/// `now: Instant`) so the state machine is clock-free and the proptests
/// can drive it through arbitrary schedules.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

impl Breaker {
    /// A closed breaker that opens after `threshold` consecutive failures
    /// (clamped to ≥ 1) and half-opens `cooldown` after opening.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
        }
    }

    /// Current state (for stats; [`Breaker::admit`] is the decision API).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Decide whether a call may proceed at `now`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits *this*
    /// caller as the probe; until the probe reports back, everyone else is
    /// rejected.
    pub fn admit(&mut self, now: Instant) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Reject,
            BreakerState::Open => {
                let opened = self.opened_at.expect("open breaker has an open time");
                if now.saturating_duration_since(opened) >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
        }
    }

    /// A call (or probe) succeeded: close and forget the failure streak.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// A call (or probe) failed at `now`. In the closed state the streak
    /// grows and opens the breaker at exactly `threshold`; a failed
    /// half-open probe re-opens immediately and restarts the cooldown.
    pub fn record_failure(&mut self, now: Instant) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                }
            }
            BreakerState::HalfOpen | BreakerState::Open => {
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
            }
        }
    }
}

/// Attempt/retry/failure counters for one leg, surfaced as `RouterStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilientCounters {
    /// Network attempts made (first tries, retries, and probes).
    pub attempts: u64,
    /// Attempts beyond the first within a single call.
    pub retries: u64,
    /// Attempts that failed at the transport level.
    pub failures: u64,
}

/// Is this error worth a reconnect-and-retry? Transport-level failures
/// and shedding are; clean typed answers (a malformed query, an exceeded
/// deadline) are not — the leg is healthy, retrying cannot change them.
fn retryable(e: &VerError) -> bool {
    matches!(
        e,
        VerError::Io(_) | VerError::Protocol(_) | VerError::Overloaded(_)
    )
}

/// A [`Client`] to one remote shard leg, wrapped in the retry/backoff/
/// breaker envelope. Healthy connections are kept and reused across
/// calls; any failed exchange drops the connection (see [`Client`]'s
/// poisoning contract) and the next attempt reconnects.
pub struct ResilientClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    breaker: Breaker,
    conn: Option<Client>,
    /// Jitter seed: fxhash of the address, so legs desynchronize their
    /// retry schedules without an entropy source.
    seed: u64,
    calls: u64,
    counters: ResilientCounters,
}

impl ResilientClient {
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr,
            breaker: Breaker::new(policy.breaker_threshold, policy.cooldown),
            policy,
            conn: None,
            seed: fx_hash_u64(&addr.to_string()),
            calls: 0,
            counters: ResilientCounters::default(),
        }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    pub fn counters(&self) -> ResilientCounters {
        self.counters
    }

    /// Run one scatter leg remotely, deducting the elapsed budget before
    /// every attempt: the wire carries the *remaining* milliseconds, so a
    /// leg reached after a retry storm gets a correspondingly smaller
    /// deadline (`0` on the wire = no deadline).
    pub fn shard_query(
        &mut self,
        spec: &ViewSpec,
        shard: u32,
        shard_count: u32,
        budget: &QueryBudget,
    ) -> Result<WireShardOutput> {
        self.call(budget, |client, budget_ms| {
            client.shard_query(spec, shard, shard_count, budget_ms)
        })
    }

    /// Liveness probe through the same envelope (no deadline).
    pub fn health(&mut self) -> Result<HealthReply> {
        self.call(&QueryBudget::none(), |client, _| client.health())
    }

    /// The envelope: breaker admission, per-attempt budget deduction,
    /// reconnect, and jittered backoff around `op`.
    fn call<T>(
        &mut self,
        budget: &QueryBudget,
        mut op: impl FnMut(&mut Client, u64) -> Result<T>,
    ) -> Result<T> {
        self.calls += 1;
        let call_seed = fx_hash_u64(&(self.seed, self.calls));
        let mut last_err = None;
        for attempt in 0..=self.policy.retries {
            // Deduct the elapsed budget first: an expired deadline means
            // no network traffic at all for this attempt.
            let budget_ms = match remaining_ms(budget) {
                Ok(ms) => ms,
                Err(e) => return Err(last_err.unwrap_or(e)),
            };
            match self.breaker.admit(Instant::now()) {
                Admission::Allow => {}
                Admission::Reject => {
                    return Err(VerError::Overloaded(format!(
                        "circuit open for shard leg {}",
                        self.addr
                    )));
                }
                Admission::Probe => {
                    // Half-open: one cheap Health exchange decides. A
                    // failed probe re-opens the breaker, so further
                    // attempts in this call would only be rejected.
                    self.counters.attempts += 1;
                    match self.probe() {
                        Ok(()) => self.breaker.record_success(),
                        Err(e) => {
                            self.counters.failures += 1;
                            self.breaker.record_failure(Instant::now());
                            return Err(e);
                        }
                    }
                }
            }
            self.counters.attempts += 1;
            if attempt > 0 {
                self.counters.retries += 1;
            }
            match self.attempt(budget_ms, &mut op) {
                Ok(v) => {
                    self.breaker.record_success();
                    return Ok(v);
                }
                Err(e) if retryable(&e) => {
                    self.counters.failures += 1;
                    self.breaker.record_failure(Instant::now());
                    last_err = Some(e);
                    if attempt < self.policy.retries {
                        sleep_within(backoff_delay(&self.policy, attempt, call_seed), budget);
                    }
                }
                Err(e) => {
                    // A clean typed answer from a healthy leg — not a
                    // transport failure, so the streak resets.
                    self.breaker.record_success();
                    return Err(e);
                }
            }
        }
        Err(last_err.expect("loop ran at least once and only exits on error"))
    }

    /// One attempt: (re)connect if needed, run `op`, keep the connection
    /// only if it stayed trustworthy.
    fn attempt<T>(
        &mut self,
        budget_ms: u64,
        op: &mut impl FnMut(&mut Client, u64) -> Result<T>,
    ) -> Result<T> {
        fault::hit(fault::points::REMOTE_LEG)?;
        let mut client = match self.conn.take() {
            Some(c) => c,
            None => Client::connect_with_timeouts(
                self.addr,
                self.policy.attempt_timeout,
                self.policy.attempt_timeout,
            )?,
        };
        let result = op(&mut client, budget_ms);
        if !client.is_poisoned() {
            self.conn = Some(client);
        }
        result
    }

    /// Half-open probe: a fresh connection and one `Health` exchange.
    fn probe(&mut self) -> Result<()> {
        self.conn = None;
        let mut client = Client::connect_with_timeouts(
            self.addr,
            self.policy.attempt_timeout,
            self.policy.attempt_timeout,
        )?;
        client.health()?;
        self.conn = Some(client);
        Ok(())
    }
}

impl std::fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("addr", &self.addr)
            .field("breaker", &self.breaker.state())
            .field("counters", &self.counters)
            .finish()
    }
}

/// Remaining budget in whole milliseconds for the wire (`0` = no
/// deadline); an already-expired budget is a `DeadlineExceeded` without
/// any network traffic.
fn remaining_ms(budget: &QueryBudget) -> Result<u64> {
    match budget.deadline() {
        None => Ok(0),
        Some(d) => {
            let rem = d.saturating_duration_since(Instant::now());
            if rem.is_zero() {
                Err(VerError::DeadlineExceeded("remote leg attempt".into()))
            } else {
                // Round sub-millisecond remainders up: a live deadline
                // must never encode as 0 ("no deadline") on the wire.
                Ok((rem.as_millis() as u64).max(1))
            }
        }
    }
}

/// Sleep for `delay`, clipped so the backoff never outlives the deadline.
fn sleep_within(delay: Duration, budget: &QueryBudget) {
    let d = match budget.deadline() {
        Some(deadline) => delay.min(deadline.saturating_duration_since(Instant::now())),
        None => delay,
    };
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(retries: u32, backoff_ms: u64, threshold: u32) -> RetryPolicy {
        RetryPolicy {
            retries,
            backoff: Duration::from_millis(backoff_ms),
            backoff_cap: Duration::from_millis(400),
            breaker_threshold: threshold,
            cooldown: Duration::from_millis(100),
            attempt_timeout: Duration::from_millis(200),
        }
    }

    #[test]
    fn backoff_doubles_and_stays_jittered_within_bounds() {
        let p = policy(8, 50, 4);
        for seed in [0u64, 1, 42, u64::MAX] {
            for attempt in 0..8u32 {
                let exp = (50u64 << attempt).min(400);
                let d = backoff_delay(&p, attempt, seed).as_millis() as u64;
                assert!(
                    d >= exp / 2 && d <= exp,
                    "attempt {attempt} seed {seed}: {d}ms outside [{}, {exp}]",
                    exp / 2
                );
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = policy(4, 50, 4);
        assert_eq!(backoff_delay(&p, 2, 7), backoff_delay(&p, 2, 7));
    }

    #[test]
    fn zero_base_backoff_is_zero() {
        let p = policy(4, 0, 4);
        assert_eq!(backoff_delay(&p, 3, 9), Duration::ZERO);
    }

    #[test]
    fn breaker_opens_at_exactly_threshold_consecutive_failures() {
        let t0 = Instant::now();
        let mut b = Breaker::new(3, Duration::from_millis(100));
        for i in 0..2 {
            b.record_failure(t0);
            assert_eq!(b.state(), BreakerState::Closed, "failure {i} keeps closed");
        }
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open, "third failure opens");
        assert_eq!(b.admit(t0), Admission::Reject);
    }

    #[test]
    fn success_resets_the_streak() {
        let t0 = Instant::now();
        let mut b = Breaker::new(2, Duration::from_millis(100));
        b.record_failure(t0);
        b.record_success();
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let t0 = Instant::now();
        let mut b = Breaker::new(1, Duration::from_millis(100));
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        // Before the cooldown: reject.
        assert_eq!(b.admit(t0 + Duration::from_millis(50)), Admission::Reject);
        // After the cooldown: exactly one probe, everyone else rejected.
        let later = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(later), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(later), Admission::Reject);
        // Probe success closes; probe failure would re-open.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(later), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_the_cooldown() {
        let t0 = Instant::now();
        let mut b = Breaker::new(1, Duration::from_millis(100));
        b.record_failure(t0);
        let probe_at = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(probe_at), Admission::Probe);
        b.record_failure(probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(
            b.admit(probe_at + Duration::from_millis(50)),
            Admission::Reject,
            "cooldown restarted from the failed probe"
        );
        assert_eq!(
            b.admit(probe_at + Duration::from_millis(150)),
            Admission::Probe
        );
    }

    #[test]
    fn dead_address_exhausts_the_retry_budget_with_typed_errors() {
        // Port 1 on localhost: connection refused, instantly.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut c = ResilientClient::new(addr, policy(2, 0, 10));
        let err = c
            .shard_query(
                &sample_spec(),
                0,
                2,
                &QueryBudget::none().with_timeout(Duration::from_secs(5)),
            )
            .expect_err("nothing listens on port 1");
        assert!(matches!(err, VerError::Io(_)), "got {err:?}");
        let counters = c.counters();
        assert_eq!(counters.attempts, 3, "1 try + 2 retries");
        assert_eq!(counters.retries, 2);
        assert_eq!(counters.failures, 3);
        assert_eq!(c.breaker_state(), BreakerState::Closed, "threshold is 10");
    }

    #[test]
    fn breaker_fails_fast_once_open() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        // Threshold 2: the first call's two attempts open the breaker.
        let mut c = ResilientClient::new(addr, policy(1, 0, 2));
        let budget = QueryBudget::none().with_timeout(Duration::from_secs(5));
        let err = c
            .shard_query(&sample_spec(), 0, 2, &budget)
            .expect_err("refused");
        assert!(matches!(err, VerError::Io(_)));
        assert_eq!(c.breaker_state(), BreakerState::Open);
        let attempts_so_far = c.counters().attempts;
        let err = c
            .shard_query(&sample_spec(), 0, 2, &budget)
            .expect_err("open circuit");
        assert!(
            matches!(err, VerError::Overloaded(ref m) if m.contains("circuit open")),
            "got {err:?}"
        );
        assert_eq!(
            c.counters().attempts,
            attempts_so_far,
            "open circuit makes no network attempts"
        );
    }

    #[test]
    fn expired_budget_never_touches_the_network() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut c = ResilientClient::new(addr, policy(3, 0, 10));
        let dead = QueryBudget::none().with_timeout(Duration::ZERO);
        let err = c
            .shard_query(&sample_spec(), 0, 2, &dead)
            .expect_err("budget already spent");
        assert!(matches!(err, VerError::DeadlineExceeded(_)), "got {err:?}");
        assert_eq!(c.counters().attempts, 0);
    }

    #[test]
    fn injected_remote_leg_fault_is_retried_through_the_envelope() {
        let _g = ver_common::sync::lock_unpoisoned(fault_guard());
        fault::reset();
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut c = ResilientClient::new(addr, policy(0, 0, 10));
        fault::arm_times(fault::points::REMOTE_LEG, fault::FaultKind::IoError, 1);
        let err = c.health().expect_err("fault fires before the connect");
        assert!(
            matches!(err, VerError::Io(ref m) if m.contains("injected")),
            "got {err:?}"
        );
        fault::reset();
    }

    fn fault_guard() -> &'static std::sync::Mutex<()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        &LOCK
    }

    fn sample_spec() -> ViewSpec {
        ViewSpec::Keyword(vec!["city".into()])
    }
}
