//! Network front end for the serving layer: the `verd` protocol.
//!
//! Std-only by design (ROADMAP: no tokio, vendored deps only) — a
//! [`TcpListener`](std::net::TcpListener) accept loop with one OS thread
//! per connection, length-prefixed checksummed binary frames, and a
//! blocking [`Client`]. The module tree:
//!
//! * [`frame`] — `VERNET\x01` framing: magic, u32 LE length, payload,
//!   u64 LE checksum (the `ver-index::persist` conventions, on a socket).
//! * [`wire`] — request/response codecs: `Query`, `FetchPage`, `Stats`,
//!   `Health`, `Shutdown`; materialized views travel whole so clients
//!   can verify invariant 12 (over-the-wire ≡ in-process) byte-for-byte.
//! * [`config`] — [`NetConfig`] plus the `VER_ADDR` / `VER_MAX_CONNS`
//!   knobs (warn-once-and-fall-back, like every other knob).
//! * [`server`] — the accept loop, connection cap, timeouts, pagination
//!   cursors, and [`NetStats`] counters behind the `verd` binary.
//! * [`client`] — the blocking [`Client`] used by tests, benches, and
//!   the load harness.
//! * [`resilient`] — the [`ResilientClient`] remote-leg envelope:
//!   per-attempt timeouts, reconnect-on-error, jittered exponential
//!   backoff with a retry budget, and a per-leg circuit breaker
//!   (`VER_RETRIES` / `VER_BACKOFF_MS` / `VER_BREAKER`).
//!
//! Error surface on the wire: every [`VerError`](ver_common::error::VerError)
//! maps to a stable status code ([`VerError::wire_code`](ver_common::error::VerError::wire_code)) in an `Error`
//! frame; the client rebuilds the typed error. Malformed *frames* are
//! [`VerError::Protocol`](ver_common::error::VerError::Protocol) and cost the sender its connection; malformed
//! *payloads* inside a valid frame get a typed error reply and the
//! connection survives.

pub mod client;
pub mod config;
pub mod frame;
pub mod resilient;
pub mod server;
pub mod wire;

pub use client::Client;
pub use config::{default_addr, default_max_conns, NetConfig, DEFAULT_ADDR, DEFAULT_MAX_CONNS};
pub use resilient::{backoff_delay, Breaker, BreakerState, ResilientClient, RetryPolicy};
pub use server::{Backend, Server, ServerHandle};
pub use wire::{
    HealthReply, NetStats, Page, QueryHead, Request, Response, StatsReply, WireResult,
    WireRouterLeg, WireSearchStats, WireShardOutput, WireShardView, WireView, PROTOCOL_VERSION,
};
