//! Candidate-column retrieval for each VIEW-SPECIFICATION interface.
//!
//! QBE specs run the full COLUMN-SELECTION (Algorithm 4). Keyword and
//! attribute specs retrieve one candidate set per term directly from the
//! keyword index (the paper's §VI-C1 alternative implementations), which is
//! why those interfaces "contain a large number of columns as compared to
//! QBE" — no overlap scoring narrows them.

use ver_common::ids::ColumnId;
use ver_index::{DiscoveryIndex, SearchTarget};
use ver_qbe::ViewSpec;
use ver_select::{
    column_selection, AttributeCandidates, CandidateColumn, SelectionConfig, SelectionResult,
};

/// Retrieve per-attribute candidate columns for any specification.
pub fn select_for_spec(
    index: &DiscoveryIndex,
    spec: &ViewSpec,
    config: &SelectionConfig,
) -> SelectionResult {
    match spec {
        ViewSpec::Qbe(query) => column_selection(index, query, config),
        ViewSpec::Keyword(terms) => terms_selection(index, terms, SearchTarget::Values, config),
        ViewSpec::Attribute(terms) => {
            terms_selection(index, terms, SearchTarget::Attributes, config)
        }
    }
}

fn terms_selection(
    index: &DiscoveryIndex,
    terms: &[String],
    target: SearchTarget,
    config: &SelectionConfig,
) -> SelectionResult {
    let per_attribute = terms
        .iter()
        .map(|term| {
            let hits: Vec<ColumnId> = index.search_keyword(term, target, config.fuzzy);
            let candidates: Vec<CandidateColumn> = hits
                .iter()
                .map(|&id| CandidateColumn { id, overlap: 1 })
                .collect();
            let n = candidates.len();
            AttributeCandidates {
                candidates,
                total_columns: n,
                num_clusters: n,
                clusters_selected: n,
            }
        })
        .collect();
    SelectionResult { per_attribute }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_qbe::ExampleQuery;
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    fn index() -> DiscoveryIndex {
        let mut cat = TableCatalog::new();
        let mut b = TableBuilder::new("states", &["state", "population"]);
        for i in 0..30 {
            b.push_row(vec![Value::text(format!("state{i}")), Value::Int(1000 + i)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn qbe_goes_through_column_selection() {
        let idx = index();
        let spec = ViewSpec::Qbe(ExampleQuery::from_rows(&[vec!["state1"]]).unwrap());
        let res = select_for_spec(&idx, &spec, &SelectionConfig::default());
        assert_eq!(res.per_attribute.len(), 1);
        assert_eq!(res.per_attribute[0].candidates.len(), 1);
    }

    #[test]
    fn keyword_spec_matches_values() {
        let idx = index();
        let spec = ViewSpec::Keyword(vec!["state7".into()]);
        let res = select_for_spec(&idx, &spec, &SelectionConfig::default());
        assert_eq!(res.per_attribute[0].candidates.len(), 1);
        assert_eq!(res.per_attribute[0].candidates[0].id, ColumnId(0));
    }

    #[test]
    fn attribute_spec_matches_headers_not_values() {
        let idx = index();
        let spec = ViewSpec::Attribute(vec!["population".into()]);
        let res = select_for_spec(&idx, &spec, &SelectionConfig::default());
        assert_eq!(res.per_attribute[0].candidates[0].id, ColumnId(1));
        // A value string finds nothing via the attribute interface.
        let spec = ViewSpec::Attribute(vec!["state7".into()]);
        let res = select_for_spec(&idx, &spec, &SelectionConfig::default());
        assert!(res.per_attribute[0].candidates.is_empty());
    }
}
