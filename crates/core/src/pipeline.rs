//! The Ver pipeline (Algorithm 1) with per-stage timing.
//!
//! Stage labels match Fig. 4(b): `cs` (COLUMN-SELECTION), `jgs`
//! (JOIN-GRAPH-SEARCH), `materialize` (MATERIALIZER), `vd_io` (reading
//! views into the distiller) and `4c` (4C categorisation).

use crate::config::{Mode, VerConfig};
use crate::spec_select::select_for_spec;
use std::sync::Arc;
use ver_common::budget::QueryBudget;
use ver_common::error::{Result, VerError};
use ver_common::ids::ViewId;
use ver_common::timer::PhaseTimer;
use ver_distill::{distill_budgeted, DistillOutput};
use ver_engine::view::View;
use ver_index::{build_index, DiscoveryIndex};
use ver_present::{fasttopk_rank, PresentationSession, SessionOutcome, SimulatedUser};
use ver_qbe::{ExampleQuery, ViewSpec};
use ver_search::{SearchCaches, SearchContext};
use ver_select::SelectionResult;
use ver_store::catalog::TableCatalog;

/// The assembled system: a catalog plus its discovery index.
///
/// Both are held behind [`Arc`] so a long-lived serving layer (`ver-serve`)
/// can share one catalog and one index across many concurrent readers —
/// queries take `&self`, and [`Ver::catalog_shared`] / [`Ver::index_shared`]
/// hand out cheap clones of the handles. Single-shot callers are
/// unaffected: [`Ver::build`] wraps its inputs and every accessor still
/// returns plain references.
pub struct Ver {
    catalog: Arc<TableCatalog>,
    index: Arc<DiscoveryIndex>,
    config: VerConfig,
}

/// Everything a query run produces.
#[derive(Debug)]
pub struct QueryResult {
    /// Materialised candidate PJ-views (pre-distillation), id order.
    pub views: Vec<View>,
    /// Column-selection details (Fig. 8c statistics).
    pub selection: SelectionResult,
    /// Search statistics (joinable groups / join graphs / views).
    pub search_stats: ver_search::SearchStats,
    /// Full distillation output (4C graph, survivors, contradictions).
    pub distill: DistillOutput,
    /// Overlap-ranked distilled views (Algorithm 1 line 13) — only the
    /// C2 survivors are ranked.
    pub ranked: Vec<(ViewId, usize)>,
    /// Per-stage wall times (`cs`, `jgs`, `materialize`, `vd_io`, `4c`).
    pub timer: PhaseTimer,
    /// `true` when a [`QueryBudget`] degraded this result: candidates were
    /// capped or skipped, the deadline tripped mid-stage, or distillation
    /// was abandoned (in which case every view counts as a survivor and
    /// ranking falls back to join scores). Budget-free runs are never
    /// partial.
    pub partial: bool,
}

impl QueryResult {
    /// Views surviving distillation, in ranked order.
    pub fn distilled_views(&self) -> Vec<&View> {
        self.ranked
            .iter()
            .filter_map(|&(id, _)| self.views.iter().find(|v| v.id == id))
            .collect()
    }
}

impl Ver {
    /// Offline stage: profile the catalog and build the discovery index.
    pub fn build(catalog: TableCatalog, config: VerConfig) -> Result<Ver> {
        let index = build_index(&catalog, config.index.clone())?;
        Ok(Ver {
            catalog: Arc::new(catalog),
            index: Arc::new(index),
            config,
        })
    }

    /// Assemble from an already-built (e.g. persisted and re-loaded) index
    /// — the warm-start path: no profiling, no sketching, no LSH.
    ///
    /// Fails fast when the index was clearly not built over `catalog` (the
    /// column counts disagree); deeper mismatches are the operator's
    /// contract, exactly as with any persisted-artifact system.
    pub fn from_parts(
        catalog: Arc<TableCatalog>,
        index: Arc<DiscoveryIndex>,
        config: VerConfig,
    ) -> Result<Ver> {
        if index.profiles().len() != catalog.column_count() {
            return Err(VerError::InvalidData(format!(
                "index covers {} columns but catalog has {}",
                index.profiles().len(),
                catalog.column_count()
            )));
        }
        Ok(Ver {
            catalog,
            index,
            config,
        })
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &TableCatalog {
        &self.catalog
    }

    /// The discovery index.
    pub fn index(&self) -> &DiscoveryIndex {
        &self.index
    }

    /// Shared handle to the catalog (for serving layers).
    pub fn catalog_shared(&self) -> Arc<TableCatalog> {
        Arc::clone(&self.catalog)
    }

    /// Shared handle to the index (for serving layers and persistence).
    pub fn index_shared(&self) -> Arc<DiscoveryIndex> {
        Arc::clone(&self.index)
    }

    /// The active configuration.
    pub fn config(&self) -> &VerConfig {
        &self.config
    }

    /// Run the automatic pipeline (Algorithm 1 lines 1-9 and 13) for any
    /// view specification.
    pub fn run(&self, spec: &ViewSpec) -> Result<QueryResult> {
        self.run_cached(spec, None)
    }

    /// [`Ver::run`] with optional cross-query [`SearchCaches`].
    ///
    /// The serving layer threads one cache bundle through every query of a
    /// long-lived engine; output is bit-identical to [`Ver::run`] for any
    /// cache state (see `ver_search::cache` for the contract).
    pub fn run_cached(
        &self,
        spec: &ViewSpec,
        caches: Option<&SearchCaches>,
    ) -> Result<QueryResult> {
        self.run_budgeted(spec, caches, &QueryBudget::none())
    }

    /// [`Ver::run_cached`] under a [`QueryBudget`].
    ///
    /// The budget is threaded through every stage: search checks it per
    /// candidate scored, per DAG step and per view projected (skipping
    /// candidates that trip), and distillation checks it per block and per
    /// view. Exhaustion degrades instead of failing — the result keeps
    /// whatever ranked views completed, with [`QueryResult::partial`] set.
    /// If distillation itself runs out of budget (or a distill worker
    /// panics), the views are returned *undistilled*: every view counts as
    /// a C2 survivor and ranking falls back to the non-QBE join-score
    /// order. Errors that are neither deadline nor panic (e.g. genuine
    /// I/O failures) still fail the query. An unlimited budget makes this
    /// byte-identical to [`Ver::run_cached`].
    pub fn run_budgeted(
        &self,
        spec: &ViewSpec,
        caches: Option<&SearchCaches>,
        budget: &QueryBudget,
    ) -> Result<QueryResult> {
        let mut timer = PhaseTimer::new();

        // COLUMN-SELECTION (lines 3-7).
        let selection = timer.time("cs", || {
            select_for_spec(&self.index, spec, &self.config.selection)
        });

        // JOIN-GRAPH-SEARCH + MATERIALIZER (line 8).
        let mut search_cx = SearchContext::new(&self.catalog, &self.index).with_budget(*budget);
        if let Some(caches) = caches {
            search_cx = search_cx.with_caches(caches);
        }
        let search_out = search_cx.search(&selection, &self.config.search)?;
        self.finish_query(spec, budget, timer, selection, search_out)
    }

    /// [`Ver::run_budgeted`] with JOIN-GRAPH-SEARCH + MATERIALIZER
    /// scattered over `shard_count` logical shards and gathered back
    /// through the content-based rank order — determinism invariant 11:
    /// the result is **bit-identical** to the single-engine
    /// [`Ver::run_budgeted`] for every shard count (same views, same
    /// [`ViewId`]s, same ranking), because candidate ownership partitions
    /// the globally-ranked candidate list exactly and the gather merges
    /// through the same total order the single path sorts by.
    ///
    /// Each scatter leg runs on `ver_common::pool` with the query's
    /// [`QueryBudget`] threaded through by value (the deadline is an
    /// absolute instant, so every shard races the same wall clock). A leg
    /// that trips its deadline degrades *inside* the shard (its slice
    /// comes back partial); a leg whose worker panics is dropped and the
    /// merged result is flagged [`QueryResult::partial`] — never an error.
    /// Distillation and ranking run centrally on the merged views, exactly
    /// as in the single-engine path.
    pub fn run_sharded(
        &self,
        spec: &ViewSpec,
        caches: Option<&SearchCaches>,
        budget: &QueryBudget,
        shard_count: usize,
    ) -> Result<QueryResult> {
        self.run_sharded_with_legs(spec, caches, budget, shard_count)
            .map(|(result, _)| result)
    }

    /// [`Ver::run_sharded`] that also reports what happened to each
    /// scatter leg, so a serving layer can keep per-shard health counters.
    pub fn run_sharded_with_legs(
        &self,
        spec: &ViewSpec,
        caches: Option<&SearchCaches>,
        budget: &QueryBudget,
        shard_count: usize,
    ) -> Result<(QueryResult, Vec<ShardLeg>)> {
        assert!(shard_count >= 1, "shard_count must be at least 1");
        let mut timer = PhaseTimer::new();

        // COLUMN-SELECTION runs once; the scatter shares the result.
        let selection = timer.time("cs", || {
            select_for_spec(&self.index, spec, &self.config.selection)
        });

        // Scatter: one search leg per shard, fanned out on the pool. Legs
        // are independent (shared caches are bit-identical to none), and
        // `try_par_map` degrades a panicking leg to an error we can drop.
        let pool = ver_common::pool::ThreadPool::new(self.config.search.threads);
        let shard_ids: Vec<usize> = (0..shard_count).collect();
        let legs = pool.try_par_map(&shard_ids, |&shard| {
            let mut cx = SearchContext::new(&self.catalog, &self.index).with_budget(*budget);
            if let Some(caches) = caches {
                cx = cx.with_caches(caches);
            }
            cx.search_shard(&selection, &self.config.search, shard, shard_count)
        });
        let mut outputs = Vec::with_capacity(shard_count);
        let mut reports = Vec::with_capacity(shard_count);
        let mut complete = true;
        for (shard, leg) in legs.into_iter().enumerate() {
            match leg {
                Ok(out) => {
                    reports.push(ShardLeg {
                        shard,
                        ok: true,
                        partial: out.partial,
                        views: out.views.len(),
                    });
                    outputs.push(out);
                }
                // A shard whose worker panicked or that ran out the clock
                // before degrading internally is dropped: the gather
                // proceeds on the healthy shards, flagged partial.
                Err(VerError::DeadlineExceeded(_)) | Err(VerError::Internal(_)) => {
                    complete = false;
                    reports.push(ShardLeg {
                        shard,
                        ok: false,
                        partial: true,
                        views: 0,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        let search_out = ver_search::merge_shard_outputs(outputs, complete);
        self.finish_query(spec, budget, timer, selection, search_out)
            .map(|result| (result, reports))
    }

    /// One scatter leg of the sharded search, runnable **in a separate
    /// process** from the gather: COLUMN-SELECTION (deterministic, so
    /// every leg computes the identical selection the gather will) plus
    /// this shard's JOIN-GRAPH-SEARCH + MATERIALIZER slice.
    ///
    /// [`Ver::run_sharded_with_legs`] shares one selection across its
    /// in-process legs as an optimisation; this entry point recomputes it
    /// per call so a remote shard server needs nothing but the spec and
    /// its shard identity on the wire. Selection is a pure function of
    /// (index, spec, config), so the two paths are bit-identical.
    pub fn run_shard_leg(
        &self,
        spec: &ViewSpec,
        caches: Option<&SearchCaches>,
        budget: &QueryBudget,
        shard: usize,
        shard_count: usize,
    ) -> Result<ver_search::ShardSearchOutput> {
        assert!(
            shard < shard_count,
            "shard {shard} out of range for {shard_count} shards"
        );
        let selection = select_for_spec(&self.index, spec, &self.config.selection);
        let mut cx = SearchContext::new(&self.catalog, &self.index).with_budget(*budget);
        if let Some(caches) = caches {
            cx = cx.with_caches(caches);
        }
        cx.search_shard(&selection, &self.config.search, shard, shard_count)
    }

    /// Gather step over leg outputs produced by [`Ver::run_shard_leg`] —
    /// locally or in remote shard processes: merge the legs through the
    /// content-based rank order, then finish the query centrally (VD-IO,
    /// budgeted distillation, survivor ranking), exactly as the
    /// single-engine path would. Pass `complete = false` when any leg was
    /// dropped; the merged result is then flagged
    /// [`QueryResult::partial`] — a missing leg is never an error. With
    /// every leg present the result is bit-identical to
    /// [`Ver::run_budgeted`] (invariants 11 and 13 build on this).
    pub fn gather_shard_outputs(
        &self,
        spec: &ViewSpec,
        budget: &QueryBudget,
        outputs: Vec<ver_search::ShardSearchOutput>,
        complete: bool,
    ) -> Result<QueryResult> {
        let mut timer = PhaseTimer::new();
        let selection = timer.time("cs", || {
            select_for_spec(&self.index, spec, &self.config.selection)
        });
        let search_out = ver_search::merge_shard_outputs(outputs, complete);
        self.finish_query(spec, budget, timer, selection, search_out)
    }

    /// Shared tail of the single-engine and sharded paths: VD-IO,
    /// budgeted distillation with the undistilled fallback, and survivor
    /// ranking over a search output.
    fn finish_query(
        &self,
        spec: &ViewSpec,
        budget: &QueryBudget,
        mut timer: PhaseTimer,
        selection: SelectionResult,
        search_out: ver_search::SearchOutput,
    ) -> Result<QueryResult> {
        timer.add("jgs", search_out.timer.get("jgs"));
        timer.add("materialize", search_out.timer.get("materialize"));
        let mut partial = search_out.partial;
        let mut views = search_out.views;

        // VD-IO: optionally round-trip the views through CSV on disk, the
        // cost the paper identifies as the distillation bottleneck.
        if self.config.simulate_view_io {
            views = timer.time("vd_io", || roundtrip_views(&views))?;
        } else {
            timer.add("vd_io", std::time::Duration::ZERO);
        }

        // VIEW-DISTILLATION (line 9). Out of budget (or a panicked distill
        // worker) degrades to "no distillation": the ranked views are
        // still useful without 4C labels, and the partial flag tells the
        // caller which contract they got.
        let distill_out = match distill_budgeted(&views, &self.config.distill, budget) {
            Ok(out) => out,
            Err(VerError::DeadlineExceeded(_)) | Err(VerError::Internal(_)) => {
                partial = true;
                undistilled(&views)
            }
            Err(e) => return Err(e),
        };
        timer.add("4c", distill_out.timer.total());

        // Automatic mode ranking (line 13): overlap score over survivors.
        let ranked = rank_survivors(&views, &distill_out, spec);

        Ok(QueryResult {
            views,
            selection,
            search_stats: search_out.stats,
            distill: distill_out,
            ranked,
            timer,
            partial,
        })
    }

    /// Run interactively (Algorithm 1 lines 10-11): execute the pipeline,
    /// then drive VIEW-PRESENTATION's question loop with `user`.
    pub fn run_interactive(
        &self,
        spec: &ViewSpec,
        user: &mut dyn SimulatedUser,
    ) -> Result<(QueryResult, SessionOutcome)> {
        let result = self.run(spec)?;
        let query = presentation_query(spec);
        let mut session = PresentationSession::new(
            &result.views,
            &result.distill,
            &query,
            self.config.presentation.clone(),
        );
        let outcome = session.run(user);
        Ok((result, outcome))
    }

    /// Operation mode configured for this instance.
    pub fn mode(&self) -> Mode {
        self.config.mode
    }
}

/// Outcome of one scatter leg of [`Ver::run_sharded_with_legs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLeg {
    /// Which shard the leg queried.
    pub shard: usize,
    /// `false` when the leg was dropped (worker panic or un-degraded
    /// deadline) and contributed nothing to the merge.
    pub ok: bool,
    /// `true` when the leg's slice was trimmed by the budget (or the leg
    /// was dropped entirely).
    pub partial: bool,
    /// Views the leg contributed to the merge.
    pub views: usize,
}

/// The degraded stand-in for an abandoned distillation: an unlabelled
/// graph where every view survives C1 and C2, so downstream ranking and
/// presentation still have the full candidate set to work with.
fn undistilled(views: &[View]) -> DistillOutput {
    let ids: Vec<ViewId> = views.iter().map(|v| v.id).collect();
    DistillOutput {
        graph: ver_distill::ViewGraph::new(ids.clone()),
        view_keys: Default::default(),
        compatible_groups: Vec::new(),
        survivors_c1: ids.clone(),
        survivors_c2: ids,
        contradictions: Vec::new(),
        complementary_pairs: Vec::new(),
        timer: PhaseTimer::new(),
    }
}

/// Round-trip views through CSV files in a temp dir (VD-IO simulation).
fn roundtrip_views(views: &[View]) -> Result<Vec<View>> {
    let dir = std::env::temp_dir().join(format!("ver_views_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut out = Vec::with_capacity(views.len());
    for v in views {
        let path = dir.join(format!("view_{}.csv", v.id.0));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        ver_store::csv::write_csv(&v.table, &mut file)?;
        drop(file);
        let file = std::fs::File::open(&path)?;
        let mut table = ver_store::csv::read_csv(v.table.name(), file, true)?;
        table.infer_types();
        out.push(View::new(v.id, table, v.provenance.clone()));
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir(&dir).ok();
    Ok(out)
}

/// Overlap-ranked survivors (only meaningful for QBE specs; keyword and
/// attribute specs rank by join score).
fn rank_survivors(
    views: &[View],
    distill_out: &DistillOutput,
    spec: &ViewSpec,
) -> Vec<(ViewId, usize)> {
    let survivors: Vec<&View> = views
        .iter()
        .filter(|v| distill_out.survivors_c2.contains(&v.id))
        .collect();
    match spec {
        ViewSpec::Qbe(query) => {
            let owned: Vec<View> = survivors.iter().map(|v| (*v).clone()).collect();
            fasttopk_rank(&owned, query)
        }
        _ => {
            let mut ranked: Vec<(ViewId, usize)> = survivors
                .iter()
                .map(|v| (v.id, (v.provenance.join_score * 1000.0) as usize))
                .collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            ranked
        }
    }
}

/// The example query driving presentation distances; non-QBE specs get a
/// synthetic one from their terms. Public so serving-layer sessions
/// (`ver-serve`) can build [`PresentationSession`]s over stored results
/// with exactly the query [`Ver::run_interactive`] would use.
pub fn presentation_query(spec: &ViewSpec) -> ExampleQuery {
    match spec {
        ViewSpec::Qbe(q) => q.clone(),
        ViewSpec::Keyword(terms) | ViewSpec::Attribute(terms) => {
            let rows: Vec<Vec<&str>> = vec![terms.iter().map(String::as_str).collect()];
            ExampleQuery::from_rows(&rows).unwrap_or_else(|_| {
                ExampleQuery::from_rows(&[vec!["query"]]).expect("static query is valid")
            })
        }
    }
}

/// Convenience: assert the pipeline found a non-empty result (used by
/// examples; returns a descriptive error instead of panicking).
pub fn expect_views(result: &QueryResult) -> Result<()> {
    if result.views.is_empty() {
        return Err(VerError::NotFound(
            "no candidate views were materialised for this query".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_store::table::TableBuilder;

    /// airports ⋈ states ⋈ regions plus a conflicting states table.
    fn catalog() -> TableCatalog {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..40).map(|i| format!("st{i}")).collect();

        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("AP{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("state_pop", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("state_pop_old", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(900 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();
        cat
    }

    fn qbe(rows: &[Vec<&str>]) -> ViewSpec {
        ViewSpec::Qbe(ExampleQuery::from_rows(rows).unwrap())
    }

    #[test]
    fn end_to_end_automatic_run() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let result = ver.run(&spec).unwrap();
        assert!(result.search_stats.views >= 1);
        assert!(!result.ranked.is_empty());
        // Phase timer covers the Fig. 4b stages.
        for phase in ["cs", "jgs", "materialize", "vd_io", "4c"] {
            assert!(
                result.timer.phases().any(|(p, _)| p == phase),
                "missing phase {phase}"
            );
        }
    }

    #[test]
    fn distillation_prunes_duplicate_pop_views() {
        // Two pop tables produce contradictory (not duplicate) views; both
        // survive distillation but are mutually contradictory.
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let result = ver.run(&spec).unwrap();
        assert!(result.distill.survivors_c2.len() <= result.views.len());
    }

    #[test]
    fn interactive_run_reaches_target() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let result = ver.run(&spec).unwrap();
        // Oracle targets the top-ranked view.
        let target = result.ranked[0].0;
        let mut user = ver_present::OracleUser::new(target);
        let (_, outcome) = ver.run_interactive(&spec, &mut user).unwrap();
        assert_eq!(outcome.found_view(), Some(target));
    }

    #[test]
    fn keyword_and_attribute_specs_run() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let kw = ver.run(&ViewSpec::Keyword(vec!["st5".into()])).unwrap();
        assert!(kw.search_stats.views >= 1);
        let attr = ver.run(&ViewSpec::Attribute(vec!["pop".into()])).unwrap();
        assert!(attr.search_stats.views >= 1);
    }

    #[test]
    fn view_io_roundtrip_preserves_row_sets() {
        let mut config = VerConfig::fast();
        config.simulate_view_io = true;
        let ver = Ver::build(catalog(), config).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let with_io = ver.run(&spec).unwrap();

        let ver2 = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let without_io = ver2.run(&spec).unwrap();
        assert_eq!(with_io.views.len(), without_io.views.len());
        for (a, b) in with_io.views.iter().zip(&without_io.views) {
            assert_eq!(a.hash_set(), b.hash_set(), "IO roundtrip changed rows");
        }
    }

    #[test]
    fn empty_query_result_is_graceful() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["does-not-exist"]]);
        let result = ver.run(&spec).unwrap();
        assert_eq!(result.views.len(), 0);
        assert!(expect_views(&result).is_err());
    }

    #[test]
    fn from_parts_reproduces_build_exactly() {
        let built = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let warm = Ver::from_parts(
            built.catalog_shared(),
            built.index_shared(),
            VerConfig::fast(),
        )
        .unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let a = built.run(&spec).unwrap();
        let b = warm.run(&spec).unwrap();
        assert_eq!(a.ranked, b.ranked);
        assert_eq!(a.views.len(), b.views.len());
        for (va, vb) in a.views.iter().zip(&b.views) {
            assert!(va.same_contents(vb));
        }
    }

    #[test]
    fn from_parts_rejects_mismatched_catalog() {
        let built = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let mut other = TableCatalog::new();
        let mut b = TableBuilder::new("only", &["x"]);
        b.push_row(vec![Value::Int(1)]).unwrap();
        other.add_table(b.build()).unwrap();
        let err = Ver::from_parts(
            std::sync::Arc::new(other),
            built.index_shared(),
            VerConfig::fast(),
        );
        assert!(matches!(err, Err(VerError::InvalidData(_))));
    }

    #[test]
    fn run_cached_matches_run_and_hits_on_repeat() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let base = ver.run(&spec).unwrap();
        let caches = SearchCaches::new(32);
        for pass in 0..2 {
            let out = ver.run_cached(&spec, Some(&caches)).unwrap();
            assert_eq!(out.ranked, base.ranked, "pass {pass}");
            assert_eq!(out.distill.survivors_c2, base.distill.survivors_c2);
            for (a, b) in out.views.iter().zip(&base.views) {
                assert!(a.same_contents(b), "pass {pass}");
            }
        }
        assert!(caches.view_stats().hits > 0, "repeat pass must hit");
    }

    #[test]
    fn sharded_run_is_bit_identical_for_every_shard_count() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let single = ver.run(&spec).unwrap();
        assert!(single.views.len() > 1, "need a multi-view query");
        for count in [1usize, 2, 4] {
            let caches = SearchCaches::new(32);
            let sharded = ver
                .run_sharded(&spec, Some(&caches), &QueryBudget::none(), count)
                .unwrap();
            assert!(!sharded.partial, "count={count}");
            assert_eq!(sharded.ranked, single.ranked, "count={count}");
            assert_eq!(sharded.search_stats, single.search_stats, "count={count}");
            assert_eq!(
                sharded.distill.survivors_c2, single.distill.survivors_c2,
                "count={count}"
            );
            assert_eq!(sharded.views.len(), single.views.len());
            for (a, b) in sharded.views.iter().zip(&single.views) {
                assert_eq!(a.id, b.id, "count={count}");
                assert!(a.same_contents(b), "count={count}: {} differs", a.id);
            }
        }
    }

    #[test]
    fn shard_leg_plus_gather_reproduces_the_single_run() {
        // The process-separable decomposition: independent `run_shard_leg`
        // calls (each recomputing selection) gathered by
        // `gather_shard_outputs` must be bit-identical to `run`.
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let single = ver.run(&spec).unwrap();
        for count in [1usize, 2, 4] {
            let outputs: Vec<_> = (0..count)
                .map(|s| {
                    ver.run_shard_leg(&spec, None, &QueryBudget::none(), s, count)
                        .unwrap()
                })
                .collect();
            let gathered = ver
                .gather_shard_outputs(&spec, &QueryBudget::none(), outputs, true)
                .unwrap();
            assert!(!gathered.partial, "count={count}");
            assert_eq!(gathered.ranked, single.ranked, "count={count}");
            assert_eq!(gathered.search_stats, single.search_stats);
            assert_eq!(gathered.views.len(), single.views.len());
            for (a, b) in gathered.views.iter().zip(&single.views) {
                assert_eq!(a.id, b.id, "count={count}");
                assert!(a.same_contents(b), "count={count}: {} differs", a.id);
            }
        }

        // A dropped leg (complete = false) degrades the gather to a
        // partial result — never an error.
        let survivor = ver
            .run_shard_leg(&spec, None, &QueryBudget::none(), 0, 2)
            .unwrap();
        let partial = ver
            .gather_shard_outputs(&spec, &QueryBudget::none(), vec![survivor], false)
            .unwrap();
        assert!(partial.partial, "missing leg must flag the merge partial");
        assert!(partial.views.len() <= single.views.len());
    }

    #[test]
    fn sharded_run_under_expired_deadline_degrades_to_partial() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let budget = QueryBudget::none().with_timeout(std::time::Duration::ZERO);
        let out = ver
            .run_sharded(&spec, None, &budget, 2)
            .expect("budget exhaustion degrades, never errors");
        assert!(out.partial);
        assert!(out.views.is_empty());
    }

    #[test]
    fn distilled_views_follow_ranking() {
        let ver = Ver::build(catalog(), VerConfig::fast()).unwrap();
        let spec = qbe(&[vec!["st1", "1001"], vec!["st2", "1002"]]);
        let result = ver.run(&spec).unwrap();
        let distilled = result.distilled_views();
        assert_eq!(distilled.len(), result.ranked.len());
        if distilled.len() >= 2 {
            assert_eq!(distilled[0].id, result.ranked[0].0);
        }
    }
}
