//! End-to-end configuration: one knob bundle per pipeline stage.

use ver_distill::DistillConfig;
use ver_index::IndexConfig;
use ver_present::PresentationConfig;
use ver_search::SearchConfig;
use ver_select::SelectionConfig;

/// Automatic vs interactive operation (Algorithm 1's MODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Return a ranked list (Algorithm 1 line 13: rank by overlap score).
    Automatic,
    /// Engage VIEW-PRESENTATION's question loop (lines 10-11).
    Interactive,
}

/// Configuration of the whole pipeline.
#[derive(Debug, Clone)]
pub struct VerConfig {
    /// Offline index construction.
    pub index: IndexConfig,
    /// COLUMN-SELECTION (θ, fuzziness, clustering threshold).
    pub selection: SelectionConfig,
    /// JOIN-GRAPH-SEARCH (ρ, k, combination cap).
    pub search: SearchConfig,
    /// VIEW-DISTILLATION (key discovery).
    pub distill: DistillConfig,
    /// VIEW-PRESENTATION (bandit, iteration budget).
    pub presentation: PresentationConfig,
    /// Operation mode.
    pub mode: Mode,
    /// Round-trip materialized views through CSV files in a temp directory
    /// before distillation, reproducing the paper's "time to read views
    /// from disk" (the VD-IO bar of Fig. 3/4). Off by default.
    pub simulate_view_io: bool,
}

impl Default for VerConfig {
    fn default() -> Self {
        VerConfig {
            index: IndexConfig::default(),
            selection: SelectionConfig::default(),
            search: SearchConfig::default(),
            distill: DistillConfig::default(),
            presentation: PresentationConfig::default(),
            mode: Mode::Automatic,
            simulate_view_io: false,
        }
    }
}

impl VerConfig {
    /// Configuration tuned for small corpora and unit tests: exact
    /// containment verification (no estimation error), single-threaded
    /// index build. The default configuration instead builds the index
    /// with `threads: 0` — the workspace-wide "auto" convention that uses
    /// one worker per available hardware thread (the built index is
    /// identical either way; see `ver_common::pool`).
    pub fn fast() -> Self {
        VerConfig {
            index: IndexConfig {
                threads: 1,
                verify_exact: true,
                ..IndexConfig::default()
            },
            ..VerConfig::default()
        }
    }

    /// Paper-default evaluation settings: θ = 1, ρ = 2, k = ∞ (materialise
    /// every join graph), clustering threshold = containment threshold.
    pub fn paper() -> Self {
        VerConfig::default()
    }

    /// Pin every parallel stage to `threads` workers at once: the offline
    /// index build, the online search fan-out (join-graph scoring + top-k
    /// materialization), and 4C distillation. `0` = auto (one worker per
    /// available hardware thread). Every stage guarantees bit-identical
    /// output across thread counts, so this is purely a resource knob.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.index.threads = threads;
        self.search.threads = threads;
        self.distill.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_vi() {
        let c = VerConfig::paper();
        assert_eq!(c.search.rho, 2, "ρ = 2");
        assert_eq!(c.selection.theta, 1, "θ = 1");
        assert_eq!(c.search.k, usize::MAX, "materialise all join graphs");
        assert!((c.index.containment_threshold - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fast_config_verifies_exactly() {
        let c = VerConfig::fast();
        assert!(c.index.verify_exact);
        assert_eq!(c.index.threads, 1);
    }

    #[test]
    fn default_build_uses_auto_threads() {
        // `0` is the workspace-wide "one worker per hardware thread"
        // convention; resolution happens inside the pool at build time.
        // Defaults honour VER_THREADS (CI runs the suite under both unset
        // and "1"), so compare against the env-derived default.
        let c = VerConfig::default();
        let expected = ver_common::pool::default_threads();
        assert_eq!(c.index.threads, expected);
        assert_eq!(c.search.threads, expected);
        assert_eq!(c.distill.threads, expected);
        assert!(ver_common::pool::resolve_threads(c.index.threads) >= 1);
    }

    #[test]
    fn with_threads_pins_every_stage() {
        let c = VerConfig::default().with_threads(3);
        assert_eq!(c.index.threads, 3);
        assert_eq!(c.search.threads, 3);
        assert_eq!(c.distill.threads, 3);
        let auto = VerConfig::default().with_threads(0);
        assert_eq!(auto.search.threads, 0);
    }
}
