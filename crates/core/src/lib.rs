//! Ver — view discovery over pathless table collections.
//!
//! This crate is the end-to-end system of the paper (Algorithm 1): it wires
//! the reference architecture's components into a pipeline,
//!
//! ```text
//! VIEW-SPECIFICATION → COLUMN-SELECTION → JOIN-GRAPH-SEARCH + MATERIALIZER
//!                    → VIEW-DISTILLATION → VIEW-PRESENTATION
//! ```
//!
//! with the discovery index built offline. Quickstart:
//!
//! ```
//! use ver_core::{Ver, VerConfig};
//! use ver_qbe::{ExampleQuery, ViewSpec};
//! use ver_store::table::TableBuilder;
//! use ver_store::catalog::TableCatalog;
//!
//! // A tiny pathless collection.
//! let mut catalog = TableCatalog::new();
//! let mut t = TableBuilder::new("airports", &["iata", "state"]);
//! for (i, s) in [("IND", "Indiana"), ("ATL", "Georgia"), ("ORD", "Illinois")] {
//!     t.push_row(vec![i.into(), s.into()]).unwrap();
//! }
//! catalog.add_table(t.build()).unwrap();
//!
//! // Offline: build the discovery index. Online: ask by example.
//! let ver = Ver::build(catalog, VerConfig::fast()).unwrap();
//! let query = ExampleQuery::from_rows(&[vec!["IND", "Indiana"]]).unwrap();
//! let result = ver.run(&ViewSpec::Qbe(query)).unwrap();
//! assert!(!result.views.is_empty());
//! ```
//!
//! Layer 4 of the crate map in the repo-root `ARCHITECTURE.md`: the
//! single-process facade that `ver-serve` wraps for long-lived serving.

pub mod config;
pub mod pipeline;
pub mod spec_select;

pub use config::{Mode, VerConfig};
pub use pipeline::{presentation_query, QueryResult, ShardLeg, Ver};

// Re-export the component crates under one roof for downstream users.
pub use ver_common as common;
pub use ver_distill as distill;
pub use ver_engine as engine;
pub use ver_index as index;
pub use ver_present as present;
pub use ver_qbe as qbe;
pub use ver_search as search;
pub use ver_select as select;
pub use ver_store as store;
