//! Join-score ranking (Algorithm 5, step 2).
//!
//! "The discovery engine ranks views according to how well join graphs
//! approximate PK/FK, and according to the size of the join graph; smaller
//! graphs rank higher." PK/FK-ness of an edge = its containment score ×
//! the key-ness (distinct ratio) of its stronger endpoint; the graph score
//! averages its edges and discounts by size.

use ver_index::{DiscoveryIndex, JoinGraph};

/// Join score of a graph in `[0, 1]`; empty (single-table) graphs score 1.
pub fn join_score(index: &DiscoveryIndex, graph: &JoinGraph) -> f64 {
    if graph.edges.is_empty() {
        return 1.0;
    }
    let mean_edge: f64 = graph
        .edges
        .iter()
        .map(|e| {
            let keyness = index
                .profile(e.left)
                .distinct_ratio()
                .max(index.profile(e.right).distinct_ratio());
            e.score as f64 * keyness
        })
        .sum::<f64>()
        / graph.edges.len() as f64;
    // Smaller graphs rank higher: hop discount.
    mean_edge / (1.0 + 0.25 * graph.edges.len() as f64)
}

/// Sort `(graph, payload)` pairs by score descending, stable by payload
/// order on ties.
pub fn rank_join_graphs<T>(index: &DiscoveryIndex, graphs: &mut [(JoinGraph, T)]) {
    graphs.sort_by(|a, b| {
        join_score(index, &b.0)
            .partial_cmp(&join_score(index, &a.0))
            .expect("scores are finite")
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig, JoinGraphEdge};
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    /// key-to-key join (both unique) vs fk-to-fk join (low distinct ratio).
    fn setup() -> DiscoveryIndex {
        let mut cat = TableCatalog::new();
        // T0: unique key; T1: same unique key; T2/T3: repeated category col.
        let mut b = TableBuilder::new("t0", &["k"]);
        for i in 0..40 {
            b.push_row(vec![Value::text(format!("k{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("t1", &["k"]);
        for i in 0..40 {
            b.push_row(vec![Value::text(format!("k{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        for name in ["t2", "t3"] {
            let mut b = TableBuilder::new(name, &["cat"]);
            for i in 0..40 {
                b.push_row(vec![Value::text(format!("c{}", i % 4))])
                    .unwrap();
            }
            cat.add_table(b.build()).unwrap();
        }
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn key_joins_outscore_category_joins() {
        let idx = setup();
        let key_edge = JoinGraph {
            edges: vec![JoinGraphEdge {
                left: ver_common::ids::ColumnId(0),
                right: ver_common::ids::ColumnId(1),
                score: 1.0,
            }],
        };
        let cat_edge = JoinGraph {
            edges: vec![JoinGraphEdge {
                left: ver_common::ids::ColumnId(2),
                right: ver_common::ids::ColumnId(3),
                score: 1.0,
            }],
        };
        assert!(join_score(&idx, &key_edge) > join_score(&idx, &cat_edge));
    }

    #[test]
    fn single_table_scores_highest() {
        let idx = setup();
        let empty = JoinGraph::default();
        assert_eq!(join_score(&idx, &empty), 1.0);
    }

    #[test]
    fn more_hops_score_lower() {
        let idx = setup();
        let edge = JoinGraphEdge {
            left: ver_common::ids::ColumnId(0),
            right: ver_common::ids::ColumnId(1),
            score: 1.0,
        };
        let one = JoinGraph { edges: vec![edge] };
        let two = JoinGraph {
            edges: vec![edge, edge],
        };
        assert!(join_score(&idx, &one) > join_score(&idx, &two));
    }

    #[test]
    fn ranking_orders_by_score_desc() {
        let idx = setup();
        let key_edge = JoinGraphEdge {
            left: ver_common::ids::ColumnId(0),
            right: ver_common::ids::ColumnId(1),
            score: 1.0,
        };
        let cat_edge = JoinGraphEdge {
            left: ver_common::ids::ColumnId(2),
            right: ver_common::ids::ColumnId(3),
            score: 1.0,
        };
        let mut graphs = vec![
            (
                JoinGraph {
                    edges: vec![cat_edge],
                },
                "cat",
            ),
            (
                JoinGraph {
                    edges: vec![key_edge],
                },
                "key",
            ),
        ];
        rank_join_graphs(&idx, &mut graphs);
        assert_eq!(graphs[0].1, "key");
    }
}
