//! Join-score ranking (Algorithm 5, step 2).
//!
//! "The discovery engine ranks views according to how well join graphs
//! approximate PK/FK, and according to the size of the join graph; smaller
//! graphs rank higher." PK/FK-ness of an edge = its containment score ×
//! the key-ness (distinct ratio) of its stronger endpoint; the graph score
//! averages its edges and discounts by size.
//!
//! Ranking is a **total order on graph content**: score descending, ties
//! broken by the graph's canonical edge form ([`graph_canon`]) ascending.
//! That makes the ranked order independent of candidate *input* order —
//! the property the parallel online path relies on for bit-identical
//! results across thread counts, and the one
//! `crates/search/tests/rank_properties.rs` pins down.

use ver_index::{DiscoveryIndex, JoinGraph};

/// Join score of a graph in `[0, 1]`; empty (single-table) graphs score 1.
pub fn join_score(index: &DiscoveryIndex, graph: &JoinGraph) -> f64 {
    if graph.edges.is_empty() {
        return 1.0;
    }
    let mean_edge: f64 = graph
        .edges
        .iter()
        .map(|e| {
            let keyness = index
                .profile(e.left)
                .distinct_ratio()
                .max(index.profile(e.right).distinct_ratio());
            e.score as f64 * keyness
        })
        .sum::<f64>()
        / graph.edges.len() as f64;
    // Smaller graphs rank higher: hop discount.
    mean_edge / (1.0 + 0.25 * graph.edges.len() as f64)
}

/// Canonical form of a graph's edge set: endpoint-sorted column-id pairs in
/// ascending order. Two graphs over the same columns canonicalise equally
/// regardless of edge order or edge orientation, so this doubles as the
/// dedup key during candidate generation and the deterministic tie-breaker
/// during ranking.
pub fn graph_canon(graph: &JoinGraph) -> Vec<(u32, u32)> {
    let mut canon: Vec<(u32, u32)> = graph
        .edges
        .iter()
        .map(|e| (e.left.0.min(e.right.0), e.left.0.max(e.right.0)))
        .collect();
    canon.sort_unstable();
    canon
}

/// Total-order comparator for ranked candidates: score descending, then
/// canonical edge form ascending. Scores must be finite (`join_score`
/// guarantees it); `total_cmp` keeps the comparator total regardless.
pub fn rank_order(
    a_score: f64,
    a_canon: &[(u32, u32)],
    b_score: f64,
    b_canon: &[(u32, u32)],
) -> std::cmp::Ordering {
    b_score
        .total_cmp(&a_score)
        .then_with(|| a_canon.cmp(b_canon))
}

/// Sort `(graph, payload)` pairs by score descending, ties broken by the
/// graphs' canonical edge form — a permutation-invariant total order on
/// graph content (shuffling the input never changes the ranked order of
/// distinct graphs; identical graphs keep their relative input order, the
/// sort being stable).
pub fn rank_join_graphs<T>(index: &DiscoveryIndex, graphs: &mut [(JoinGraph, T)]) {
    // f64 is not Ord, so decorate with a bit-ordered key for
    // sort_by_cached_key (one score/canon computation per graph). The
    // sign-flip trick makes u64 order agree with `f64::total_cmp` for
    // every value (negatives and -0.0 included), so this sorts exactly as
    // [`rank_order`] compares.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct DescScore(std::cmp::Reverse<u64>);
    impl DescScore {
        fn of(score: f64) -> Self {
            let bits = score.to_bits();
            let total = if bits >> 63 == 1 {
                !bits
            } else {
                bits | (1 << 63)
            };
            DescScore(std::cmp::Reverse(total))
        }
    }
    graphs.sort_by_cached_key(|(g, _)| (DescScore::of(join_score(index, g)), graph_canon(g)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig, JoinGraphEdge};
    use ver_store::catalog::TableCatalog;
    use ver_store::table::TableBuilder;

    /// key-to-key join (both unique) vs fk-to-fk join (low distinct ratio).
    fn setup() -> DiscoveryIndex {
        let mut cat = TableCatalog::new();
        // T0: unique key; T1: same unique key; T2/T3: repeated category col.
        let mut b = TableBuilder::new("t0", &["k"]);
        for i in 0..40 {
            b.push_row(vec![Value::text(format!("k{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        let mut b = TableBuilder::new("t1", &["k"]);
        for i in 0..40 {
            b.push_row(vec![Value::text(format!("k{i}"))]).unwrap();
        }
        cat.add_table(b.build()).unwrap();
        for name in ["t2", "t3"] {
            let mut b = TableBuilder::new(name, &["cat"]);
            for i in 0..40 {
                b.push_row(vec![Value::text(format!("c{}", i % 4))])
                    .unwrap();
            }
            cat.add_table(b.build()).unwrap();
        }
        build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn edge(l: u32, r: u32, score: f32) -> JoinGraphEdge {
        JoinGraphEdge {
            left: ver_common::ids::ColumnId(l),
            right: ver_common::ids::ColumnId(r),
            score,
        }
    }

    #[test]
    fn key_joins_outscore_category_joins() {
        let idx = setup();
        let key_edge = JoinGraph {
            edges: vec![edge(0, 1, 1.0)],
        };
        let cat_edge = JoinGraph {
            edges: vec![edge(2, 3, 1.0)],
        };
        assert!(join_score(&idx, &key_edge) > join_score(&idx, &cat_edge));
    }

    #[test]
    fn single_table_scores_highest() {
        let idx = setup();
        let empty = JoinGraph::default();
        assert_eq!(join_score(&idx, &empty), 1.0);
    }

    #[test]
    fn more_hops_score_lower() {
        let idx = setup();
        let e = edge(0, 1, 1.0);
        let one = JoinGraph { edges: vec![e] };
        let two = JoinGraph { edges: vec![e, e] };
        assert!(join_score(&idx, &one) > join_score(&idx, &two));
    }

    #[test]
    fn ranking_orders_by_score_desc() {
        let idx = setup();
        let mut graphs = vec![
            (
                JoinGraph {
                    edges: vec![edge(2, 3, 1.0)],
                },
                "cat",
            ),
            (
                JoinGraph {
                    edges: vec![edge(0, 1, 1.0)],
                },
                "key",
            ),
        ];
        rank_join_graphs(&idx, &mut graphs);
        assert_eq!(graphs[0].1, "key");
    }

    #[test]
    fn canon_ignores_edge_order_and_orientation() {
        let fwd = JoinGraph {
            edges: vec![edge(0, 1, 1.0), edge(2, 3, 0.9)],
        };
        let rev = JoinGraph {
            edges: vec![edge(3, 2, 0.5), edge(1, 0, 0.5)],
        };
        assert_eq!(graph_canon(&fwd), graph_canon(&rev));
        assert_eq!(graph_canon(&fwd), vec![(0, 1), (2, 3)]);
        assert!(graph_canon(&JoinGraph::default()).is_empty());
    }

    #[test]
    fn ties_break_by_canonical_form() {
        let idx = setup();
        // t0.k—t1.k both ways round: same score, same canon → one order.
        let a = JoinGraph {
            edges: vec![edge(2, 3, 1.0)],
        };
        let b = JoinGraph {
            edges: vec![edge(0, 1, 1.0)],
        };
        let sa = join_score(&idx, &a);
        let sb = join_score(&idx, &b);
        // Comparator is total and antisymmetric.
        let ab = rank_order(sa, &graph_canon(&a), sb, &graph_canon(&b));
        let ba = rank_order(sb, &graph_canon(&b), sa, &graph_canon(&a));
        assert_eq!(ab, ba.reverse());
        // Equal scores fall back to canon order.
        assert_eq!(
            rank_order(0.5, &[(0, 1)], 0.5, &[(2, 3)]),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn negative_scores_sort_consistently_with_rank_order() {
        // JoinGraphEdge.score is pub and unconstrained; a hostile caller
        // can produce negative join scores. The sort must still agree with
        // rank_order (score descending under total_cmp).
        let idx = setup();
        let mut graphs = vec![
            (
                JoinGraph {
                    edges: vec![edge(0, 1, -1.0)],
                },
                "neg",
            ),
            (
                JoinGraph {
                    edges: vec![edge(2, 3, 1.0)],
                },
                "pos",
            ),
        ];
        rank_join_graphs(&idx, &mut graphs);
        assert_eq!(graphs[0].1, "pos", "negative scores must rank last");
        let (sa, sb) = (
            join_score(&idx, &graphs[0].0),
            join_score(&idx, &graphs[1].0),
        );
        assert_eq!(
            rank_order(
                sa,
                &graph_canon(&graphs[0].0),
                sb,
                &graph_canon(&graphs[1].0)
            ),
            std::cmp::Ordering::Less
        );
    }
}
