//! The end-to-end JOIN-GRAPH-SEARCH component (Algorithm 5).

use crate::enumerate::enumerate_combinations;
use crate::materialize::materialize_join_graph;
use crate::rank::join_score;
use ver_common::error::Result;
use ver_common::fxhash::FxHashSet;
use ver_common::ids::{ColumnRef, ViewId};
use ver_engine::view::View;
use ver_index::DiscoveryIndex;
use ver_select::SelectionResult;
use ver_store::catalog::TableCatalog;

/// Tunables for join-graph search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Hop bound ρ (paper default 2).
    pub rho: usize,
    /// Materialise the top-k ranked join candidates. The paper's evaluation
    /// sets k = total join graphs (materialise everything).
    pub k: usize,
    /// Cap on enumerated column combinations.
    pub max_combinations: usize,
    /// Drop materialized views with zero rows (joins that match nothing
    /// carry no information for the user).
    pub drop_empty_views: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rho: 2,
            k: usize::MAX,
            max_combinations: 100_000,
            drop_empty_views: true,
        }
    }
}

/// Search-space statistics matching the paper's reporting
/// (Figs. 5, 6, 8b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Column combinations enumerated.
    pub combinations: usize,
    /// Combinations skipped by the non-joinable cache.
    pub skipped_by_cache: usize,
    /// Joinable table groups ("No. of Joinable Groups").
    pub joinable_groups: usize,
    /// Join graphs across groups ("No. of Join Graphs").
    pub join_graphs: usize,
    /// Materialised candidate PJ-views ("No. of Generated Views").
    pub views: usize,
}

/// Result of join-graph search: materialized views plus statistics.
#[derive(Debug)]
pub struct SearchOutput {
    /// Candidate PJ-views with assigned [`ViewId`]s, ranked by join score.
    pub views: Vec<View>,
    /// Search-space statistics.
    pub stats: SearchStats,
    /// Stage wall times: `jgs` (enumeration + ranking) and `materialize`
    /// (plan execution) — the JGS/M split of Fig. 4b.
    pub timer: ver_common::timer::PhaseTimer,
}

/// Run Algorithm 5: enumerate combinations, resolve join graphs, rank, and
/// materialise the top-k candidate PJ-views.
pub fn join_graph_search(
    catalog: &TableCatalog,
    index: &DiscoveryIndex,
    selection: &SelectionResult,
    config: &SearchConfig,
) -> Result<SearchOutput> {
    let mut timer = ver_common::timer::PhaseTimer::new();
    let jgs_start = std::time::Instant::now();
    let enumeration = enumerate_combinations(index, selection, config.rho, config.max_combinations);

    let mut stats = SearchStats {
        combinations: enumeration.total_combinations,
        skipped_by_cache: enumeration.skipped_by_cache,
        joinable_groups: enumeration.joinable_group_count(),
        join_graphs: enumeration.join_graph_count(),
        views: 0,
    };

    // Pair each combination with each of its group's join graphs; dedupe
    // identical (graph, projection) pairs arising from different orders.
    type CandidateKey = (Vec<(u32, u32)>, Vec<ColumnRef>);
    let mut candidates: Vec<(ver_index::JoinGraph, Vec<ColumnRef>)> = Vec::new();
    let mut seen: FxHashSet<CandidateKey> = FxHashSet::default();
    for (combo, gi) in &enumeration.combinations {
        let projection: Vec<ColumnRef> = combo
            .columns
            .iter()
            .map(|&c| catalog.column_ref(c))
            .collect::<Result<_>>()?;
        for graph in &enumeration.groups[*gi].1 {
            let mut canon: Vec<(u32, u32)> = graph
                .edges
                .iter()
                .map(|e| (e.left.0.min(e.right.0), e.left.0.max(e.right.0)))
                .collect();
            canon.sort_unstable();
            if seen.insert((canon, projection.clone())) {
                candidates.push((graph.clone(), projection.clone()));
            }
        }
    }

    // Rank by join score (desc); stable for determinism.
    let mut scored: Vec<(f64, ver_index::JoinGraph, Vec<ColumnRef>)> = candidates
        .into_iter()
        .map(|(g, p)| (join_score(index, &g), g, p))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    scored.truncate(config.k);
    timer.add("jgs", jgs_start.elapsed());

    let mat_start = std::time::Instant::now();
    let mut views = Vec::with_capacity(scored.len());
    for (score, graph, projection) in &scored {
        let mut view = materialize_join_graph(catalog, index, graph, projection, *score)?;
        if config.drop_empty_views && view.row_count() == 0 {
            continue;
        }
        view.id = ViewId(views.len() as u32);
        views.push(view);
    }
    timer.add("materialize", mat_start.elapsed());
    stats.views = views.len();
    Ok(SearchOutput {
        views,
        stats,
        timer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ver_common::value::Value;
    use ver_index::{build_index, IndexConfig};
    use ver_qbe::query::{ExampleQuery, QueryColumn};
    use ver_select::{column_selection, SelectionConfig};
    use ver_store::table::TableBuilder;

    /// Two "state fact" tables joinable with a states dimension — a shape
    /// that yields multiple candidate views for the same query.
    fn setup() -> (TableCatalog, DiscoveryIndex) {
        let mut cat = TableCatalog::new();
        let states: Vec<String> = (0..30).map(|i| format!("st{i}")).collect();

        let mut b = TableBuilder::new("airports", &["iata", "state"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(format!("A{i}")), Value::text(s.clone())])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("pop1", &["state", "pop"]);
        for (i, s) in states.iter().enumerate() {
            b.push_row(vec![Value::text(s.clone()), Value::Int(1000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let mut b = TableBuilder::new("pop2", &["state", "pop"]);
        for (i, s) in states.iter().enumerate().take(25) {
            b.push_row(vec![Value::text(s.clone()), Value::Int(2000 + i as i64)])
                .unwrap();
        }
        cat.add_table(b.build()).unwrap();

        let idx = build_index(
            &cat,
            IndexConfig {
                threads: 1,
                verify_exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        (cat, idx)
    }

    fn run(
        cat: &TableCatalog,
        idx: &DiscoveryIndex,
        q: &ExampleQuery,
        config: &SearchConfig,
    ) -> SearchOutput {
        let sel = column_selection(
            idx,
            q,
            &SelectionConfig {
                theta: usize::MAX,
                ..Default::default()
            },
        );
        join_graph_search(cat, idx, &sel, config).unwrap()
    }

    #[test]
    fn produces_ranked_views_with_stats() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["A1", "A2"]),
            QueryColumn::of_strs(&["1001", "1002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(out.stats.joinable_groups >= 1);
        assert!(out.stats.views >= 1);
        assert_eq!(out.views.len(), out.stats.views);
        // Ranked: scores non-increasing.
        let scores: Vec<f64> = out.views.iter().map(|v| v.provenance.join_score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        // Ids assigned sequentially.
        assert!(out
            .views
            .iter()
            .enumerate()
            .all(|(i, v)| v.id == ViewId(i as u32)));
    }

    #[test]
    fn ambiguous_state_query_generates_multiple_views() {
        let (cat, idx) = setup();
        // "state" examples match 3 columns; pop examples match pop1 and pop2.
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(
            out.stats.views >= 2,
            "ambiguity should produce multiple candidate views, got {}",
            out.stats.views
        );
    }

    #[test]
    fn top_k_truncates_materialisation() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "2002"]),
        ])
        .unwrap();
        let all = run(&cat, &idx, &q, &SearchConfig::default());
        let one = run(
            &cat,
            &idx,
            &q,
            &SearchConfig {
                k: 1,
                ..Default::default()
            },
        );
        assert!(all.stats.views > 1);
        assert_eq!(one.stats.views, 1);
        // The kept view is the top-ranked one.
        assert_eq!(
            one.views[0].provenance.join_score,
            all.views[0].provenance.join_score
        );
    }

    #[test]
    fn empty_selection_gives_empty_output() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![QueryColumn::of_strs(&["missing-value"])]).unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert_eq!(out.stats.views, 0);
        assert!(out.views.is_empty());
    }

    #[test]
    fn single_table_query_materialises_projection_only_view() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["A1"]),
            QueryColumn::of_strs(&["st1"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        assert!(out
            .views
            .iter()
            .any(|v| v.provenance.hops() == 0 && v.attribute_names() == vec!["iata", "state"]));
    }

    #[test]
    fn provenance_links_views_to_join_graphs() {
        let (cat, idx) = setup();
        let q = ExampleQuery::new(vec![
            QueryColumn::of_strs(&["st1", "st2"]),
            QueryColumn::of_strs(&["1001", "1002"]),
        ])
        .unwrap();
        let out = run(&cat, &idx, &q, &SearchConfig::default());
        for v in &out.views {
            assert_eq!(v.provenance.projection.len(), 2);
            assert_eq!(
                v.provenance.source_tables.len(),
                v.provenance.hops() + 1,
                "tree: tables = edges + 1"
            );
        }
    }
}
